"""Quickstart: enroll a user and verify genuine vs replayed attempts.

Run with::

    python examples/quickstart.py

Builds a small simulated world (one phone, one user, a trained defense
system), then runs three verification attempts: the genuine user, a
replay attack through a PC loudspeaker, and a replay through an earphone.
Prints the per-component verdicts so you can see *which* defense layer
catches each attack.
"""

import numpy as np

from repro.attacks import ReplayAttack
from repro.devices import Loudspeaker, get_loudspeaker
from repro.experiments import attack_capture, build_world, genuine_capture


def describe(tag: str, report) -> None:
    verdict = "ACCEPT" if report.accepted else "REJECT"
    print(f"\n{tag}: {verdict}")
    for name, result in report.components.items():
        status = "pass" if result.passed else "FAIL"
        print(f"  {name:10s} [{status}] score={result.score:+8.2f}  {result.detail}")


def main() -> None:
    print("Building the simulated world (phone + user + trained defense)...")
    world = build_world(seed=42, n_users=1, enrol_repetitions=8, background_speakers=6)
    user_id = sorted(world.users)[0]
    account = world.user(user_id)
    print(
        f"Enrolled {user_id!r}: pass-phrase {account.passphrase!r}, "
        f"voice F0 {account.profile.f0_hz:.0f} Hz"
    )

    # 1. The genuine user speaks their pass-phrase while moving the phone.
    capture = genuine_capture(world, user_id, distance=0.05)
    describe("Genuine attempt", world.system.verify(capture, user_id))

    # 2. An attacker replays a stolen recording through a PC loudspeaker.
    pc = Loudspeaker(get_loudspeaker("Logitech LS21"), np.zeros(3))
    stolen = account.enrolment_waveforms[-1]
    attempt = ReplayAttack(pc).prepare(stolen, 16000, user_id)
    capture = attack_capture(world, attempt, distance=0.05)
    describe("Replay via PC loudspeaker", world.system.verify(capture, user_id))

    # 3. Same replay through an earphone: too weakly magnetic for the
    #    magnetometer, but the sound-field component catches the tiny
    #    aperture.
    ear = Loudspeaker(get_loudspeaker("Apple EarPods MD827LL/A"), np.zeros(3))
    attempt = ReplayAttack(ear).prepare(stolen, 16000, user_id)
    capture = attack_capture(world, attempt, distance=0.05)
    describe("Replay via earphone", world.system.verify(capture, user_id))


if __name__ == "__main__":
    main()
