"""Attack matrix: every adversary-model attack vs the full defense.

Run with::

    python examples/attack_matrix.py

Exercises all five attack implementations — replay, voice morphing,
TTS-style synthesis, human mimicry and the §VII sound-tube — against one
enrolled user, and prints which component rejects each.  Mirrors the
paper's adversary model (§III-A) end to end.
"""

import numpy as np

from repro.attacks import (
    HumanMimicAttack,
    MorphingAttack,
    ReplayAttack,
    SoundTubeAttack,
    SynthesisAttack,
)
from repro.devices import Loudspeaker, get_loudspeaker
from repro.experiments import attack_capture, build_world, genuine_capture
from repro.voice import random_profile


def main() -> None:
    world = build_world(seed=13, n_users=1, enrol_repetitions=8, background_speakers=6)
    user_id = sorted(world.users)[0]
    account = world.user(user_id)
    stolen = account.enrolment_waveforms[-3:]
    sr = world.synthesizer.sample_rate
    rng = np.random.default_rng(99)
    attacker = random_profile("attacker", rng)
    pc = Loudspeaker(get_loudspeaker("Logitech LS21"), np.zeros(3))

    attempts = {
        "genuine": None,
        "replay (Type 1)": ReplayAttack(pc).prepare(stolen[-1], sr, user_id),
        "morphing (Type 2)": MorphingAttack(pc, attacker).prepare(
            stolen, account.passphrase, user_id, rng
        ),
        "synthesis (Type 3)": SynthesisAttack(pc).prepare(
            stolen, account.passphrase, user_id, rng
        ),
        "human mimic": HumanMimicAttack(attacker).prepare(
            stolen, account.passphrase, user_id, rng
        ),
        "sound tube (§VII)": SoundTubeAttack(pc).prepare(stolen[-1], sr, user_id),
    }

    header = f"{'attack':22s} {'verdict':8s} {'rejected by':30s}"
    print(header)
    print("-" * len(header))
    for name, attempt in attempts.items():
        if attempt is None:
            capture = genuine_capture(world, user_id, 0.05)
        else:
            capture = attack_capture(world, attempt, 0.05)
        report = world.system.verify(capture, user_id)
        verdict = "ACCEPT" if report.accepted else "REJECT"
        rejected_by = ", ".join(report.failed_components()) or "-"
        print(f"{name:22s} {verdict:8s} {rejected_by:30s}")


if __name__ == "__main__":
    main()
