"""Observability walkthrough: trace and explain a rejected replay.

Run with::

    python examples/trace_replay_rejection.py [--out DIR]

Builds a small simulated world, then serves two requests through the
concurrent gateway with tracing, decision provenance, and JSONL export
switched on: a genuine attempt and a replay attack through a PC
loudspeaker.  For the rejected replay it prints the decision rationale
(``DecisionRecord.explain()`` — every stage's evidence against the paper
thresholds, plus why skipped stages never ran) and the span tree of the
request (queue wait → decode → cascade stages → DSP kernels).

Everything printed is reconstructed from the exported JSONL files, the
same way an offline audit would do it.
"""

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.attacks import ReplayAttack
from repro.devices import Loudspeaker, get_loudspeaker
from repro.experiments import attack_capture, build_world, genuine_capture
from repro.obs import (
    AuditJsonlExporter,
    DecisionRecord,
    Tracer,
    TraceJsonlExporter,
    read_jsonl,
    render_trace,
    spans_from_dicts,
)
from repro.server import (
    Gateway,
    GatewayConfig,
    MobileClient,
    decode_decision,
    encode_request,
)


def serve(world, user_id: str, out: Path) -> None:
    tracer = Tracer()
    trace_exporter = TraceJsonlExporter(tracer, out / "traces.jsonl")
    audit = AuditJsonlExporter(out / "audit.jsonl")
    account = world.user(user_id)
    stolen = account.enrolment_waveforms[-1]
    pc = Loudspeaker(get_loudspeaker("Logitech LS21"), np.zeros(3))
    replay = ReplayAttack(pc).prepare(stolen, 16000, user_id)

    gateway = Gateway(
        world.system,
        GatewayConfig(request_workers=2, cascade=True),
        tracer=tracer,
        audit=audit,
    )
    try:
        for request_id, capture in (
            ("genuine-1", genuine_capture(world, user_id, distance=0.05)),
            ("replay-1", attack_capture(world, replay, distance=0.05)),
        ):
            frame = gateway.handle(
                encode_request(capture, user_id, request_id=request_id)
            )
            decision = decode_decision(frame)
            verdict = "ACCEPT" if decision["accepted"] else "REJECT"
            print(f"served {request_id}: {verdict}")

        # A monitoring client scrapes telemetry over the same socket
        # protocol the phone uses for verification requests.
        telemetry = MobileClient(gateway).scrape_metrics(("summary",))
        summary = telemetry["summary"]
        print(
            f"gateway telemetry: {summary['counters']['requests_completed']:.0f} "
            f"requests, {summary['windowed_throughput_rps']:.1f} req/s (60s window)"
        )
    finally:
        gateway.close()
        trace_exporter.close()
        audit.close()


def audit_offline(out: Path) -> None:
    """Reconstruct the replay rejection from the JSONL exports alone."""
    record = DecisionRecord.from_dict(
        next(
            row
            for row in read_jsonl(out / "audit.jsonl")
            if row["request_id"] == "replay-1"
        )
    )
    print("\n--- decision rationale (audit.jsonl) " + "-" * 30)
    print(record.explain())

    trace_row = next(
        row
        for row in read_jsonl(out / "traces.jsonl")
        if row["trace_id"] == record.trace_id
    )
    print("\n--- request trace (traces.jsonl) " + "-" * 34)
    print(render_trace(spans_from_dicts(trace_row["spans"])))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for the JSONL exports (default: a temp dir)",
    )
    args = parser.parse_args()
    out = args.out if args.out is not None else Path(tempfile.mkdtemp(prefix="repro-obs-"))
    out.mkdir(parents=True, exist_ok=True)

    print("Building the simulated world (phone + user + trained defense)...")
    world = build_world(seed=7, n_users=1, enrol_repetitions=10, background_speakers=6)
    user_id = sorted(world.users)[0]

    serve(world, user_id, out)
    audit_offline(out)
    print(f"\nJSONL exports: {out / 'traces.jsonl'}  {out / 'audit.jsonl'}")


if __name__ == "__main__":
    main()
