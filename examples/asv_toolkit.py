"""Using the ASV back-end as a standalone speaker-verification toolkit.

Run with::

    python examples/asv_toolkit.py

Shows the Spear-style API on its own (no smartphone, no sensors): train a
UBM on a background corpus, enroll speakers, score genuine and impostor
trials, and report the DET operating points — the workflow behind the
paper's Table I.
"""

import numpy as np

from repro.asv import (
    SpeakerVerifier,
    VerifierBackend,
    equal_error_rate,
    roc_points,
)
from repro.voice import make_background_corpus, make_passphrase_corpus


def main() -> None:
    print("Synthesising corpora...")
    background = make_background_corpus(n_speakers=8, utterances_per_speaker=3)
    enrolment = make_passphrase_corpus(n_speakers=4, repetitions=5)

    for backend in (VerifierBackend.GMM_UBM, VerifierBackend.ISV):
        print(f"\n=== backend: {backend.value} ===")
        verifier = SpeakerVerifier(backend=backend, n_components=16)
        verifier.train_background(
            {
                sid: [u.utterance.waveform for u in background.by_speaker(sid)]
                for sid in background.speaker_ids
            }
        )
        for sid in enrolment.speaker_ids:
            utts = enrolment.by_speaker(sid)
            verifier.enroll(sid, [u.utterance.waveform for u in utts[:4]])

        genuine, impostor = [], []
        for target in enrolment.speaker_ids:
            held_out = enrolment.by_speaker(target)[4].utterance.waveform
            for claimed in enrolment.speaker_ids:
                score = verifier.verify(claimed, held_out)
                (genuine if claimed == target else impostor).append(score)

        genuine_arr = np.array(genuine)
        impostor_arr = np.array(impostor)
        eer, threshold = equal_error_rate(genuine_arr, impostor_arr)
        curve = roc_points(genuine_arr, impostor_arr, n_thresholds=64)
        print(f"genuine scores : {np.round(genuine_arr, 2)}")
        print(f"impostor scores: {np.round(impostor_arr, 2)}")
        print(f"EER = {eer:.1%} at threshold {threshold:+.2f}")
        idx = int(np.argmin(np.abs(curve.far - 0.01)))
        print(
            f"at FAR≈1%: threshold {curve.thresholds[idx]:+.2f}, "
            f"FRR {curve.frr[idx]:.1%}"
        )


if __name__ == "__main__":
    main()
