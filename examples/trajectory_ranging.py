"""Phase-based ranging and trajectory recovery in isolation.

Run with::

    python examples/trajectory_ranging.py

Demonstrates the sound-source-distance substrate: the >16 kHz pilot is
emitted during the use-case motion, the echo phase is unwrapped into a
radial displacement track, the IMU supplies the absolute scale, and the
least-squares circle fit produces the final distance estimate — compared
against the simulator's ground truth at several end distances.
"""

import numpy as np

from repro.core import recover_trajectory
from repro.devices import Smartphone, get_phone
from repro.experiments import build_world, genuine_capture, make_trajectory
from repro.voice import Synthesizer, random_profile
from repro.world import HumanSpeakerSource, quiet_room_environment, simulate_capture


def main() -> None:
    rng = np.random.default_rng(3)
    phone = Smartphone(get_phone("Nexus 5"))
    env = quiet_room_environment()
    profile = random_profile("demo", rng)
    waveform = Synthesizer(16000).synthesize_digits(profile, "123456", rng).waveform
    source = HumanSpeakerSource(profile)

    print(f"{'true end (cm)':>14s} {'estimate (cm)':>14s} {'sweep Δω (deg)':>15s}")
    for end_distance in (0.04, 0.05, 0.06, 0.08, 0.10, 0.14):
        capture = simulate_capture(
            phone,
            source,
            env,
            make_trajectory(end_distance),
            waveform,
            16000,
            rng,
        )
        recovered = recover_trajectory(capture)
        print(
            f"{capture.true_end_distance * 100:14.1f} "
            f"{recovered.end_distance * 100:14.1f} "
            f"{np.rad2deg(abs(recovered.total_direction_change)):15.1f}"
        )

    print("\n2-D reconstructed positions of the final sweep (cm):")
    capture = simulate_capture(
        phone, source, env, make_trajectory(0.05), waveform, 16000, rng
    )
    recovered = recover_trajectory(capture)
    sweep = recovered.positions_2d[recovered.sweep_slice] * 100.0
    for point in sweep[:: max(1, len(sweep) // 8)]:
        print(f"  ({point[0]:+6.2f}, {point[1]:+6.2f})")
    cx, cy = recovered.circle_center
    print(
        f"circle fit: centre ({cx * 100:+.2f}, {cy * 100:+.2f}) cm, "
        f"radius {recovered.circle_radius * 100:.2f} cm"
    )


if __name__ == "__main__":
    main()
