"""Environmental interference and adaptive thresholding (§VII).

Run with::

    python examples/environment_calibration.py

Verifies a genuine user in three electromagnetic environments — a quiet
room, next to an iMac, and in a car — first with the factory thresholds
and then after the adaptive calibration the paper proposes in §VII.
Also confirms that calibration does not open the door to a loudspeaker
replay.
"""

import numpy as np

from repro.attacks import ReplayAttack
from repro.core import AdaptiveCalibrator
from repro.devices import Loudspeaker, get_loudspeaker
from repro.experiments import attack_capture, build_world, genuine_capture
from repro.world import (
    car_environment,
    near_computer_environment,
    quiet_room_environment,
)


def trial_rates(world, user_id, env, n=5):
    genuine_ok = 0
    for _ in range(n):
        capture = genuine_capture(world, user_id, 0.05, environment=env)
        genuine_ok += int(world.system.verify(capture, user_id).accepted)
    pc = Loudspeaker(get_loudspeaker("Logitech LS21"), np.zeros(3))
    stolen = world.user(user_id).enrolment_waveforms[-1]
    attempt = ReplayAttack(pc).prepare(stolen, 16000, user_id)
    attack_ok = 0
    for _ in range(n):
        capture = attack_capture(world, attempt, 0.05, environment=env)
        attack_ok += int(world.system.verify(capture, user_id).accepted)
    return genuine_ok / n, attack_ok / n


def main() -> None:
    world = build_world(seed=21, n_users=1, enrol_repetitions=8, background_speakers=6)
    user_id = sorted(world.users)[0]
    factory_config = world.config

    environments = {
        "quiet room": quiet_room_environment(5),
        "near iMac": near_computer_environment(6),
        "car seat": car_environment(7),
    }
    print(f"{'environment':12s} {'mode':9s} {'genuine accept':>15s} {'attack accept':>14s}")
    for env_name, env in environments.items():
        for mode in ("factory", "adaptive"):
            if mode == "adaptive":
                calibrator = AdaptiveCalibrator(factory_config)
                world.system.with_config(calibrator.calibrate(env))
            else:
                world.system.with_config(factory_config)
            genuine_rate, attack_rate = trial_rates(world, user_id, env)
            print(
                f"{env_name:12s} {mode:9s} {genuine_rate:15.0%} {attack_rate:14.0%}"
            )
    world.system.with_config(factory_config)


if __name__ == "__main__":
    main()
