"""Scene rendering: from physics to sensor streams.

:func:`simulate_capture` is the single entry point the rest of the library
uses to "record" a verification attempt.  It renders:

- **microphone audio** — the source's voice propagated to the moving phone
  (three-band rendering so aperture-dependent directivity is frequency-
  resolved), mixed with the phone's own >16 kHz ranging pilot: a constant
  direct-leak component plus the head/source echo whose phase encodes the
  phone-source distance;
- **magnetometer** — Earth field + environmental interference + whatever
  magnetic sources the sound source contributes (voice-coil drive follows
  the playback envelope);
- **accelerometer / gyroscope** — the use-case hand motion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol

import numpy as np

from repro.devices.smartphone import Smartphone
from repro.dsp.filters import bandpass, lowpass
from repro.errors import ConfigurationError, SignalError
from repro.physics.acoustics import SPEED_OF_SOUND, spherical_attenuation
from repro.physics.geometry import SampledPath
from repro.sensors.base import SensorSeries
from repro.world.environments import Environment
from repro.world.trajectory import UseCaseTrajectory

#: (low, high, centre) of the rendering bands, Hz.  Six bands give the
#: sound-field component enough spectral resolution to tell a smooth,
#: monotone-with-frequency head shadow from a loudspeaker's steep piston
#: beaming or a sound tube's erratic comb-and-lobe pattern.
RENDER_BANDS = (
    (100.0, 600.0, 350.0),
    (600.0, 1200.0, 900.0),
    (1200.0, 2200.0, 1700.0),
    (2200.0, 3500.0, 2850.0),
    (3500.0, 5200.0, 4350.0),
    (5200.0, 7500.0, 6350.0),
)

#: Pressure amplitude of the pilot's internal speaker→mic leak, Pa.
PILOT_DIRECT_PA = 0.02

#: Pressure amplitude of the pilot echo at the reference distance, Pa.
PILOT_ECHO_PA = 0.012

#: Reference distance for pilot-echo attenuation, m.
PILOT_ECHO_REF_M = 0.05

#: Body-frame separation between the primary and secondary microphones
#: on dual-mic phones (m), along the body's long (y) axis.
MIC_SEPARATION_M = 0.12


class SceneSource(Protocol):
    """What the scene needs from a sound source (human or loudspeaker)."""

    def acoustic_source(self): ...

    def magnetic_sources(self, drive=None): ...

    @property
    def kind(self) -> str: ...


@dataclass(frozen=True)
class SensorCapture:
    """Everything one verification attempt records.

    ``audio_secondary`` is the second microphone's channel on
    dual-microphone phones (§VII: the noise-cancellation mic), rendered
    without the ranging pilot; ``None`` on single-mic devices.

    ``path`` and ``true_end_distance`` are simulator ground truth, kept
    for tests and ablations; the verification pipeline must not read them.
    """

    audio: np.ndarray
    audio_sample_rate: int
    pilot_hz: float
    magnetometer: SensorSeries
    accelerometer: SensorSeries
    gyroscope: SensorSeries
    path: SampledPath
    source_kind: str
    environment_name: str
    metadata: Dict[str, str] = field(default_factory=dict)
    audio_secondary: Optional[np.ndarray] = None

    @property
    def duration_s(self) -> float:
        return len(self.audio) / self.audio_sample_rate

    @property
    def true_end_distance(self) -> float:
        """Ground-truth final phone-source distance (m)."""
        return float(self.path.distances_to(np.zeros(3))[-1])


@dataclass
class AcousticScene:
    """A configured scene, reusable across repeated captures."""

    phone: Smartphone
    source: SceneSource
    environment: Environment
    trajectory: UseCaseTrajectory = field(default_factory=UseCaseTrajectory)

    def capture(
        self,
        voice_waveform: np.ndarray,
        voice_sample_rate: int,
        rng: np.random.Generator,
        pilot: bool = True,
    ) -> SensorCapture:
        """Record one verification attempt."""
        return simulate_capture(
            self.phone,
            self.source,
            self.environment,
            self.trajectory,
            voice_waveform,
            voice_sample_rate,
            rng,
            pilot=pilot,
        )


def _resample_linear(x: np.ndarray, rate_in: int, rate_out: int) -> np.ndarray:
    """Linear-interpolation resampling (speech-band content only)."""
    if rate_in == rate_out:
        return np.asarray(x, dtype=float).copy()
    n_out = int(round(len(x) * rate_out / rate_in))
    t_out = np.arange(n_out) / rate_out
    t_in = np.arange(len(x)) / rate_in
    return np.interp(t_out, t_in, np.asarray(x, dtype=float))


def _playback_envelope(
    waveform: np.ndarray, sample_rate: int, cutoff_hz: float = 30.0
) -> tuple[np.ndarray, np.ndarray]:
    """(times, envelope) of a waveform, normalised to peak 1."""
    env = lowpass(np.abs(np.asarray(waveform, dtype=float)), cutoff_hz, sample_rate)
    env = np.maximum(env, 0.0)
    peak = env.max()
    if peak > 0:
        env = env / peak
    times = np.arange(env.size) / sample_rate
    return times, env


def simulate_capture(
    phone: Smartphone,
    source: SceneSource,
    environment: Environment,
    trajectory: UseCaseTrajectory,
    voice_waveform: np.ndarray,
    voice_sample_rate: int,
    rng: np.random.Generator,
    pilot: bool = True,
    use_field_grids: bool = False,
) -> SensorCapture:
    """Render one verification attempt into sensor streams.

    ``use_field_grids=True`` swaps time-invariant magnetic sources for
    precomputed trilinear-interpolated grids (see
    :mod:`repro.physics.fieldgrid`).  That path is an approximation — it
    is for large simulation sweeps only and must never feed captures whose
    decisions are pinned bitwise.
    """
    voice_waveform = np.asarray(voice_waveform, dtype=float)
    if voice_waveform.ndim != 1 or voice_waveform.size == 0:
        raise SignalError("voice_waveform must be a non-empty 1-D array")
    if voice_sample_rate <= 0:
        raise ConfigurationError("voice_sample_rate must be positive")

    path = trajectory.generate(rng)
    audio_sr = phone.spec.audio_sample_rate
    n_audio = int(round(trajectory.duration_s * audio_sr))
    audio_times = np.arange(n_audio) / audio_sr

    # --- Voice rendering -------------------------------------------------
    voice = _resample_linear(voice_waveform, voice_sample_rate, audio_sr)
    if voice.size < n_audio:
        voice = np.pad(voice, (0, n_audio - voice.size))
    else:
        voice = voice[:n_audio]
    v_rms = float(np.sqrt(np.mean(voice**2)))
    if v_rms > 0:
        voice = voice / v_rms

    acoustic = source.acoustic_source()

    def render_voice_at(positions: np.ndarray) -> np.ndarray:
        rendered = np.zeros(n_audio)
        for low, high, centre in RENDER_BANDS:
            high = min(high, audio_sr / 2.0 * 0.95)
            band_voice = bandpass(voice, low, high, audio_sr, order=2)
            if hasattr(acoustic, "pressure_at_many"):
                gains = np.asarray(
                    acoustic.pressure_at_many(positions, centre), dtype=float
                )
            else:
                gains = np.array(
                    [acoustic.pressure_at(p, centre) for p in positions]
                )
            gain_track = np.interp(audio_times, path.times, gains)
            rendered += band_voice * gain_track
        return rendered

    pressure = render_voice_at(path.positions)

    # --- Ranging pilot ----------------------------------------------------
    # The echo bounces off the dominant reflector near the source — the
    # user's head for a mouth, the cabinet for a loudspeaker.  Sources may
    # expose a different ``reflector_position`` (a sound tube's reflector
    # is the attacker's body a tube-length behind the opening, which is
    # what betrays it to the distance component).
    pilot_hz = phone.select_pilot_frequency() if pilot else 0.0
    if pilot:
        reflector = np.asarray(
            getattr(acoustic, "reflector_position", acoustic.position), dtype=float
        )
        distances = path.distances_to(reflector)
        d_track = np.interp(audio_times, path.times, distances)
        direct = PILOT_DIRECT_PA * np.sin(2.0 * np.pi * pilot_hz * audio_times)
        echo_amp = PILOT_ECHO_PA * spherical_attenuation(
            2.0 * d_track, PILOT_ECHO_REF_M
        )
        echo_phase = 2.0 * np.pi * pilot_hz * (audio_times - 2.0 * d_track / SPEED_OF_SOUND)
        pressure += direct + echo_amp * np.sin(echo_phase)

    audio = phone.microphone.record(pressure, rng)

    # --- Secondary microphone (dual-mic phones, §VII) --------------------
    # The noise-cancellation mic sits near the opposite end of the body
    # (~12 cm along body y).  Its channel carries the voice only — the
    # ranging pilot is demodulated on the primary channel.
    audio_secondary = None
    if phone.spec.dual_microphone:
        offset_body = np.array([0.0, MIC_SEPARATION_M, 0.0])
        secondary_positions = np.stack(
            [
                pose.position + pose.to_world(offset_body)
                for pose in path.poses
            ]
        )
        pressure_secondary = render_voice_at(secondary_positions)
        audio_secondary = phone.microphone.record(pressure_secondary, rng)

    # --- Magnetometer -----------------------------------------------------
    env_times, envelope = _playback_envelope(voice_waveform, voice_sample_rate)
    # np.interp is array-capable, so the drive vectorises through
    # VoiceCoilDipole.field_at_many while staying a valid scalar callback.
    drive = lambda t, _t=env_times, _e=envelope: np.interp(t, _t, _e)
    field_sources = list(environment.field_sources())
    field_sources.extend(source.magnetic_sources(drive))
    if use_field_grids:
        from repro.physics.fieldgrid import grid_wrap_sources

        field_sources = grid_wrap_sources(field_sources, path.positions)
    magnetometer = phone.magnetometer.sample(path, field_sources, rng)

    # --- Inertial sensors ---------------------------------------------------
    accelerometer = phone.accelerometer.sample(path, rng)
    gyroscope = phone.gyroscope.sample(path, rng)

    return SensorCapture(
        audio=audio,
        audio_sample_rate=audio_sr,
        pilot_hz=pilot_hz,
        magnetometer=magnetometer,
        accelerometer=accelerometer,
        gyroscope=gyroscope,
        path=path,
        source_kind=source.kind,
        environment_name=environment.name,
        metadata={"phone": phone.spec.name},
        audio_secondary=audio_secondary,
    )
