"""Human speakers as acoustic scene sources.

The mouth is modelled as a small baffled piston *in a head*: the head adds
an angle-dependent shadow (approximately cardioid at speech frequencies,
per the 3-D radiation measurements of Katz & D'Alessandro [19] the paper
cites).  This head shadow is precisely what an earphone or bare
loudspeaker lacks, and is a large part of what makes the sound-field
classifier separable (Fig. 8).

A human source contributes **no magnetic field** — the paper's key insight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.physics.acoustics import CircularPistonSource
from repro.physics.geometry import unit
from repro.physics.magnetics import FieldSource
from repro.voice.profiles import SpeakerProfile

#: Typical effective mouth aperture radius while speaking, metres.
MOUTH_RADIUS_M = 0.012


@dataclass
class MouthSource:
    """Acoustic source for a speaking mouth (piston × head cardioid)."""

    position: np.ndarray = field(default_factory=lambda: np.zeros(3))
    axis: np.ndarray = field(default_factory=lambda: np.array([1.0, 0.0, 0.0]))
    aperture_radius: float = MOUTH_RADIUS_M
    level_db_spl: float = 74.0
    #: Head-shadow cardioid exponent at 500 Hz and 5 kHz.  The pattern is
    #: ``((1+cosθ)/2)^p`` with ``p`` interpolated log-linearly in
    #: frequency: the shadow is diffraction-limited and strengthens with
    #: frequency (Katz & D'Alessandro [19] report increasingly directional
    #: phoneme radiation toward high frequencies; ~5 dB at 70° off-axis in
    #: the sibilant band).
    shadow_exponent_at_500: float = 0.8
    shadow_exponent_at_5k: float = 3.2

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=float)
        self.axis = unit(np.asarray(self.axis, dtype=float))
        if self.shadow_exponent_at_500 < 0 or self.shadow_exponent_at_5k < 0:
            raise ConfigurationError("shadow exponents must be non-negative")
        self._piston = CircularPistonSource(
            position=self.position,
            axis=self.axis,
            aperture_radius=self.aperture_radius,
            level_db_spl=self.level_db_spl,
        )

    def shadow_exponent(self, frequency_hz: float) -> float:
        """Cardioid exponent at ``frequency_hz`` (log-linear in f)."""
        octaves = np.log2(max(float(frequency_hz), 50.0) / 500.0)
        span = np.log2(5000.0 / 500.0)
        p = self.shadow_exponent_at_500 + (
            self.shadow_exponent_at_5k - self.shadow_exponent_at_500
        ) * (octaves / span)
        return float(np.clip(p, 0.0, 4.0))

    def pressure_at(self, position: np.ndarray, frequency_hz: float) -> float:
        """RMS pressure including the frequency-dependent head shadow."""
        p = self._piston.pressure_at(position, frequency_hz)
        r_vec = np.asarray(position, dtype=float) - self.position
        r = np.linalg.norm(r_vec)
        if r < 1e-9:
            return p
        cos_theta = float(np.clip(np.dot(r_vec / r, self.axis), -1.0, 1.0))
        cardioid = max(0.5 * (1.0 + cos_theta), 1e-3)
        gain = cardioid ** self.shadow_exponent(frequency_hz)
        return p * gain

    def pressure_at_many(
        self, positions: np.ndarray, frequency_hz: float
    ) -> np.ndarray:
        """Batched :meth:`pressure_at` over ``(n, 3)`` positions."""
        pos = np.atleast_2d(np.asarray(positions, dtype=float))
        p = self._piston.pressure_at_many(pos, frequency_hz)
        r_vec = pos - self.position
        r = np.linalg.norm(r_vec, axis=1)
        safe = r >= 1e-9
        denom = np.where(safe, r, 1.0)
        cos_theta = np.clip((r_vec / denom[:, None]) @ self.axis, -1.0, 1.0)
        cardioid = np.maximum(0.5 * (1.0 + cos_theta), 1e-3)
        gain = cardioid ** self.shadow_exponent(frequency_hz)
        return np.where(safe, p * gain, p)


@dataclass
class HumanSpeakerSource:
    """A human in the scene: a voice profile plus a mouth source."""

    profile: SpeakerProfile
    mouth: MouthSource = field(default_factory=MouthSource)

    def magnetic_sources(self, drive=None) -> List[FieldSource]:
        """Humans emit no magnetic field."""
        return []

    def acoustic_source(self) -> MouthSource:
        return self.mouth

    @property
    def kind(self) -> str:
        return "human"
