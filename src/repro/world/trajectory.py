"""The use-case phone motion (paper Fig. 3/5).

The user holds the phone near their head, then moves it toward the mouth
while speaking; the final stretch naturally sweeps sideways in front of the
mouth (that sweep is what the sound-field component measures).  We model
the motion in the mouth-centred frame as two blended phases:

1. **approach** — radial distance shrinks from ``start_distance`` to
   ``end_distance`` at roughly constant bearing;
2. **sweep** — radius holds near ``end_distance`` while the bearing swings
   from ``sweep_start_deg`` to ``sweep_end_deg``.

The phone's yaw tracks the bearing (the screen keeps facing the user), so
the orientation fusion's Δω recovers the sweep angle.  Hand tremor adds
smooth millimetre-scale position noise and ~1° of orientation wobble.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.physics.geometry import Pose, SampledPath


@dataclass
class UseCaseTrajectory:
    """Generator for the enrol/verify hand motion.

    All distances in metres, angles in degrees, times in seconds.  The
    mouth (or loudspeaker opening) sits at the origin radiating along +x;
    the trajectory stays in the horizontal plane ``z = height``.
    """

    start_distance: float = 0.15
    end_distance: float = 0.05
    duration_s: float = 2.4
    approach_fraction: float = 0.38
    #: The motion starts near the ear — roughly 70° off the mouth's
    #: radiation axis — and ends directly in front of the mouth.  The wide
    #: angular sweep is what exposes the source's radiation pattern to the
    #: sound-field component (head shadow and piston directivity are
    #: several dB across 70°, but fractions of a dB across a narrow arc).
    sweep_start_deg: float = 70.0
    sweep_end_deg: float = 0.0
    height: float = 0.0
    tremor_m: float = 0.0015
    tremor_yaw_deg: float = 1.2
    n_samples: int = 400

    def __post_init__(self) -> None:
        if self.start_distance <= 0 or self.end_distance <= 0:
            raise ConfigurationError("distances must be positive")
        if self.start_distance < self.end_distance:
            raise ConfigurationError("trajectory must approach the source")
        if self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if not 0.1 <= self.approach_fraction <= 0.9:
            raise ConfigurationError("approach_fraction must be in [0.1, 0.9]")
        if self.n_samples < 16:
            raise ConfigurationError("need at least 16 trajectory samples")

    def generate(self, rng: np.random.Generator) -> SampledPath:
        """One randomised realisation of the motion."""
        times = np.linspace(0.0, self.duration_s, self.n_samples)
        u = times / self.duration_s
        split = self.approach_fraction

        # Radial profile: smooth-step approach, then hold.
        radius = np.empty_like(u)
        approach = u < split
        s = u[approach] / split
        smooth = 3.0 * s**2 - 2.0 * s**3
        radius[approach] = self.start_distance + (self.end_distance - self.start_distance) * smooth
        radius[~approach] = self.end_distance

        # Bearing: hold during approach, then sweep smooth-step.
        theta0 = np.deg2rad(self.sweep_start_deg)
        theta1 = np.deg2rad(self.sweep_end_deg)
        theta = np.full_like(u, theta0)
        sweep = ~approach
        s2 = (u[sweep] - split) / (1.0 - split)
        smooth2 = 3.0 * s2**2 - 2.0 * s2**3
        theta[sweep] = theta0 + (theta1 - theta0) * smooth2

        # Tremor: band-limited random walks on radius, bearing and height.
        radius = radius + self._tremor(rng, self.tremor_m)
        theta = theta + self._tremor(rng, np.deg2rad(self.tremor_yaw_deg))
        z = self.height + self._tremor(rng, self.tremor_m)

        xs = radius * np.cos(theta)
        ys = radius * np.sin(theta)
        poses = [
            Pose(np.array([xs[i], ys[i], z[i]]), self._orientation(theta[i]))
            for i in range(self.n_samples)
        ]
        return SampledPath(times, poses)

    def _tremor(self, rng: np.random.Generator, scale: float) -> np.ndarray:
        """Smooth zero-mean noise: a random walk low-passed by smoothing."""
        if scale <= 0:
            return np.zeros(self.n_samples)
        walk = np.cumsum(rng.normal(0.0, 1.0, self.n_samples))
        kernel = np.ones(15) / 15.0
        smooth = np.convolve(walk, kernel, mode="same")
        smooth -= smooth.mean()
        peak = np.max(np.abs(smooth))
        return smooth * (scale / peak) if peak > 0 else smooth

    @staticmethod
    def _orientation(theta: float) -> np.ndarray:
        """Body→world rotation with the screen facing the mouth.

        Body axes (Android convention): x right of screen, y up the
        screen, z out of the screen.  The screen normal (+z body) points
        back along the bearing toward the source, body y stays vertical.
        """
        # The user is on the source side, so the screen normal (+z body,
        # out of the screen) points from the phone back toward the origin.
        body_z = -np.array([np.cos(theta), np.sin(theta), 0.0])
        body_y = np.array([0.0, 0.0, 1.0])
        body_x = np.cross(body_y, body_z)
        return np.column_stack([body_x, body_y, body_z])

    @property
    def total_sweep_rad(self) -> float:
        """Ground-truth sweep magnitude (rad)."""
        return abs(np.deg2rad(self.sweep_end_deg - self.sweep_start_deg))
