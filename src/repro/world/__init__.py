"""Scene simulation: the physical world the phone's sensors observe.

This subpackage replaces the paper's physical testbed.  A *scene* is a
sound source (human mouth or loudspeaker) at the origin, an electromagnetic
environment, and the phone moving along the use-case trajectory (approach,
then sweep — Fig. 3).  :func:`repro.world.scene.simulate_capture` renders
everything the real prototype would record: microphone audio (voice +
ranging-pilot echo), magnetometer, accelerometer and gyroscope streams.
"""

from repro.world.trajectory import UseCaseTrajectory
from repro.world.humans import HumanSpeakerSource, MouthSource
from repro.world.environments import (
    Environment,
    car_environment,
    near_computer_environment,
    quiet_room_environment,
)
from repro.world.scene import (
    AcousticScene,
    SensorCapture,
    simulate_capture,
)

__all__ = [
    "UseCaseTrajectory",
    "HumanSpeakerSource",
    "MouthSource",
    "Environment",
    "car_environment",
    "near_computer_environment",
    "quiet_room_environment",
    "AcousticScene",
    "SensorCapture",
    "simulate_capture",
]
