"""Electromagnetic environments for the Fig. 14 experiments."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.physics.magnetics import (
    ConstantField,
    EnvironmentalInterference,
    car_interference,
    earth_field,
    near_computer_interference,
    quiet_room_interference,
)


@dataclass
class Environment:
    """A named EM environment: Earth's field plus local interference."""

    name: str
    interference: EnvironmentalInterference
    include_earth_field: bool = True

    def field_sources(self):
        """Batched field sources for the magnetometer model."""
        sources = []
        if self.include_earth_field:
            sources.append(ConstantField(earth_field()))
        sources.append(self.interference)
        return sources

    def field_functions(self):
        """Scalar field callbacks (legacy interface; prefer field_sources)."""
        funcs = []
        if self.include_earth_field:
            constant = earth_field()
            funcs.append(lambda position, t, _c=constant: _c)
        funcs.append(
            lambda position, t, _i=self.interference: _i.field_at(position, t)
        )
        return funcs

    def ambient_sample(self, duration_s: float, rate_hz: float = 100.0) -> np.ndarray:
        """Ambient |B| samples at a fixed point — used for calibration."""
        times = np.arange(int(duration_s * rate_hz)) / rate_hz
        origin = np.zeros((times.size, 3))
        total = np.zeros((times.size, 3))
        for source in self.field_sources():
            total = total + source.field_at_many(origin, times)
        return np.linalg.norm(total, axis=1)


def quiet_room_environment(seed: int = 0) -> Environment:
    """Baseline indoor environment (the paper's default test setting)."""
    return Environment("quiet_room", quiet_room_interference(seed))


def near_computer_environment(seed: int = 0) -> Environment:
    """Desk 30 cm from an iMac 27" (Fig. 14a)."""
    return Environment("near_computer", near_computer_interference(seed))


def car_environment(seed: int = 0) -> Environment:
    """Front seat of a running car (Fig. 14b)."""
    return Environment("car", car_interference(seed))
