"""Shared physical constants with exactly one definition site.

Paper-derived *thresholds* (``Dt``, ``Mt``, ``βt``, …) live on
:class:`repro.core.config.DefenseConfig`, where they are tunable.  The
values here are *invariants of the modelled hardware and protocol* — not
knobs — and sit at the bottom of the import DAG so every layer (``dsp``,
``voice``, ``asv``, ``core``, …) can share them without creating a
cycle.  The ``paper-constant`` lint rule treats this module and
``core/config.py`` as the only files allowed to spell these numbers.
"""

from __future__ import annotations

#: Narrowband ASV/speech processing rate (Hz).  The paper's Spear ASV
#: system and every speech kernel in this repo operate at 16 kHz; audio
#: is downsampled to this rate before feature extraction.
DEFAULT_SAMPLE_RATE_HZ: int = 16000

#: Lower edge of the inaudible ranging-pilot band (Hz).  The pilot must
#: sit at or above 16 kHz so adults cannot hear it (§V of the paper);
#: device calibration picks the highest clean tone above this floor.
PILOT_BAND_MIN_HZ: float = 16000.0
