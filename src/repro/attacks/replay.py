"""Type 1: voice replay attack.

The attacker recorded the victim speaking the pass-phrase and replays the
recording through a loudspeaker held where the mouth would be.  The replay
inherits the loudspeaker's passband colouration; against a bare ASV this
is the paper's motivating threat ("widely known for their inability to
detect voice replay attacks").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.base import AttackAttempt
from repro.devices.loudspeaker import Loudspeaker
from repro.errors import SignalError


@dataclass
class ReplayAttack:
    """Replays a stolen recording through ``loudspeaker``."""

    loudspeaker: Loudspeaker

    def prepare(
        self,
        stolen_waveform: np.ndarray,
        sample_rate: int,
        target_speaker: str,
    ) -> AttackAttempt:
        """Build the attempt from a stolen recording."""
        stolen_waveform = np.asarray(stolen_waveform, dtype=float)
        if stolen_waveform.ndim != 1 or stolen_waveform.size == 0:
            raise SignalError("stolen recording must be a non-empty 1-D waveform")
        played = self.loudspeaker.apply_band(stolen_waveform, sample_rate)
        return AttackAttempt(
            source=self.loudspeaker,
            waveform=played,
            sample_rate=sample_rate,
            attack_type="replay",
            target_speaker=target_speaker,
            metadata={"loudspeaker": self.loudspeaker.spec.name},
        )
