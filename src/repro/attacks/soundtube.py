"""Sound-tube attack (paper §VII, Fig. 16).

The attacker pipes loudspeaker output through a plastic CAB tube whose
opening sits where the mouth would be.  The tube defeats the magnetometer
(the magnet stays a tube-length away) and presents a mouth-sized opening —
but it cannot replicate a human sound field: the tube resonates (quarter-
wave comb for an open-closed pipe), imprinting strong frequency-dependent
colouration on the radiated intensity profile, and the opening radiates as
a bare unbaffled piston with none of the head's shadow.  The paper reports
every tube attempt failed on sound-field verification; this model
reproduces that failure mode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.base import AttackAttempt
from repro.devices.loudspeaker import Loudspeaker
from repro.errors import ConfigurationError
from repro.physics.acoustics import SPEED_OF_SOUND, CircularPistonSource
from repro.physics.geometry import unit


@dataclass
class TubeSource:
    """Scene source: tube opening at the origin, loudspeaker behind it."""

    loudspeaker: Loudspeaker
    tube_length_m: float = 0.30
    tube_radius_m: float = 0.012
    #: Resonance peak-to-notch depth (linear amplitude ratio).  Rigid
    #: plastic tubes are nearly undamped; notch depths beyond 10 dB are
    #: typical.
    resonance_depth: float = 0.8
    #: Damping of higher resonance modes.
    mode_damping: float = 0.15

    def __post_init__(self) -> None:
        if self.tube_length_m <= 0 or self.tube_radius_m <= 0:
            raise ConfigurationError("tube dimensions must be positive")
        if not 0.0 <= self.resonance_depth < 1.0:
            raise ConfigurationError("resonance_depth must be in [0, 1)")
        # The opening radiates like a piston of the tube's bore.
        self._opening = CircularPistonSource(
            position=np.zeros(3),
            axis=np.array([1.0, 0.0, 0.0]),
            aperture_radius=self.tube_radius_m,
            level_db_spl=self.loudspeaker.spec.level_db_spl - 4.0,
        )

    @property
    def kind(self) -> str:
        return "soundtube"

    def resonance_gain(self, frequency_hz: float) -> float:
        """Quarter-wave comb response of the open-closed tube."""
        f0 = SPEED_OF_SOUND / (4.0 * self.tube_length_m)
        phase = np.pi * frequency_hz / (2.0 * f0)
        comb = abs(np.sin(phase))
        gain = (1.0 - self.resonance_depth) + self.resonance_depth * comb
        # Higher modes lose energy to wall damping.
        mode = frequency_hz / f0
        return float(gain * np.exp(-self.mode_damping * mode / 10.0))

    def acoustic_source(self) -> "TubeSource":
        return self

    @property
    def position(self) -> np.ndarray:
        return self._opening.position

    @property
    def reflector_position(self) -> np.ndarray:
        """The ranging pilot's dominant reflector: the attacker's body.

        A thin tube rim reflects almost nothing; the first substantial
        surface behind the opening is the attacker holding the rig, a
        tube-length away.  The phase-ranging geometry therefore no longer
        matches the sweep geometry — the distance component notices.
        """
        return self.position - self.tube_length_m * unit(self._opening.axis)

    def pressure_at(self, position: np.ndarray, frequency_hz: float) -> float:
        """Opening-piston radiation shaped by the tube comb.

        The opening is a bare piston: unlike a mouth it carries no head
        shadow, which — together with the comb colouration — is the
        signature the sound-field classifier rejects.
        """
        return self._opening.pressure_at(position, frequency_hz) * self.resonance_gain(
            frequency_hz
        )

    def pressure_at_many(
        self, positions: np.ndarray, frequency_hz: float
    ) -> np.ndarray:
        """Batched :meth:`pressure_at` over ``(n, 3)`` positions."""
        return self._opening.pressure_at_many(
            positions, frequency_hz
        ) * self.resonance_gain(frequency_hz)

    def magnetic_sources(self, drive=None):
        """The loudspeaker's magnet, displaced a tube-length behind."""
        displaced = self.loudspeaker.with_position(
            self.position - self.tube_length_m * unit(self._opening.axis)
        )
        return displaced.magnetic_sources(drive)


@dataclass
class SoundTubeAttack:
    """Stage a replay through a sound tube."""

    loudspeaker: Loudspeaker
    tube_length_m: float = 0.30
    tube_radius_m: float = 0.012

    def prepare(
        self,
        stolen_waveform: np.ndarray,
        sample_rate: int,
        target_speaker: str,
    ) -> AttackAttempt:
        """Build the attempt: tube source + band-limited replay audio."""
        source = TubeSource(
            self.loudspeaker,
            tube_length_m=self.tube_length_m,
            tube_radius_m=self.tube_radius_m,
        )
        played = self.loudspeaker.apply_band(
            np.asarray(stolen_waveform, dtype=float), sample_rate
        )
        return AttackAttempt(
            source=source,
            waveform=played,
            sample_rate=sample_rate,
            attack_type="soundtube",
            target_speaker=target_speaker,
            metadata={
                "loudspeaker": self.loudspeaker.spec.name,
                "tube_length_cm": f"{self.tube_length_m * 100:.0f}",
            },
        )
