"""Type 3: voice synthesis (TTS) attack.

The attacker builds a text-to-speech voice from the victim's analysed
recordings and synthesises *any* prompt — the strongest machine attack in
the paper's taxonomy ("generate the natural-sounding synthetic speech of
the targeted user from any input texts").  Synthetic speech is
characteristically over-regular: the attack renders with unnaturally low
jitter/shimmer, which is the cue vocoder-artifact countermeasures (e.g.
[56]) key on — our ASV sees only a mild penalty, leaving detection to the
magnetometer, as the paper intends.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.attacks.base import AttackAttempt
from repro.constants import DEFAULT_SAMPLE_RATE_HZ
from repro.devices.loudspeaker import Loudspeaker
from repro.voice.analysis import estimate_profile
from repro.voice.profiles import SpeakerProfile
from repro.voice.synthesis import Synthesizer


@dataclass
class SynthesisAttack:
    """TTS in the victim's estimated voice, played through a loudspeaker."""

    loudspeaker: Loudspeaker
    sample_rate: int = DEFAULT_SAMPLE_RATE_HZ
    #: Synthetic speech is over-stable: micro-variability far below human.
    synthetic_jitter: float = 0.002
    synthetic_shimmer: float = 0.008

    def voice_model(
        self, stolen_waveforms: Sequence[np.ndarray], target_speaker: str
    ) -> SpeakerProfile:
        """The TTS voice: the analysed profile with robotic stability."""
        estimated = estimate_profile(
            list(stolen_waveforms), self.sample_rate, speaker_id=target_speaker
        )
        return replace(
            estimated,
            jitter=self.synthetic_jitter,
            shimmer=self.synthetic_shimmer,
        )

    def prepare(
        self,
        stolen_waveforms: Sequence[np.ndarray],
        text_digits: str,
        target_speaker: str,
        rng: np.random.Generator,
    ) -> AttackAttempt:
        """Synthesise ``text_digits`` in the victim's voice and stage it."""
        voice = self.voice_model(stolen_waveforms, target_speaker)
        utterance = Synthesizer(self.sample_rate).synthesize_digits(
            voice, text_digits, rng
        )
        played = self.loudspeaker.apply_band(utterance.waveform, self.sample_rate)
        return AttackAttempt(
            source=self.loudspeaker,
            waveform=played,
            sample_rate=self.sample_rate,
            attack_type="synthesis",
            target_speaker=target_speaker,
            metadata={"loudspeaker": self.loudspeaker.spec.name},
        )
