"""Gradient-free score-descent attacks on the ASV back-end.

*Breaking Security-Critical Voice Authentication* (S&P 2023) shows that
GMM/ISV speaker-verification scores are smooth enough in the input that
a black-box attacker with nothing but query access to the score can walk
an impostor utterance over the acceptance threshold.  This module
reproduces that attacker torch-free: an NES/SPSA-style finite-difference
estimator of the score gradient, projected onto an L∞ (and optionally
L2) perturbation budget, with strict query-count accounting.

The attacker is deliberately decoupled from the ASV implementation: it
optimises against an injected **score oracle** — any callable mapping a
candidate input to a float score — so the same optimiser attacks
MFCC-domain feature matrices (``perturb_features``, the S&P 2023
setting) and raw waveforms staged through a loudspeaker
(:meth:`ScoreDescentAttack.prepare`, which feeds the golden-decision
matrix's ``adversarial`` scenario).  Passing the oracle in also keeps
the import DAG clean: ``attacks`` never imports ``asv``.

What the experiments pin (EXPERIMENTS.md "Adversarial score descent"):
the attack reliably flips a *stock GMM-only* decision — the paper's §II
premise that ASV alone is not enough, now demonstrated against a 2023
attacker — while the full cascade still rejects the replayed adversarial
audio, because no feature-space perturbation removes the loudspeaker's
magnetic field or restores a human sound field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.attacks.base import AttackAttempt
from repro.devices.loudspeaker import Loudspeaker
from repro.errors import ConfigurationError, SignalError

#: A score oracle: candidate input -> verification score (higher =
#: more accepted).  The attacker treats it as a black box and pays one
#: query per call.
ScoreOracle = Callable[[np.ndarray], float]


@dataclass
class AttackTrace:
    """Query-accounted record of one score-descent run."""

    queries: int
    iterations: int
    initial_score: float
    best_score: float
    threshold: float
    #: Best-so-far score after each iteration (length ``iterations``).
    score_path: List[float] = field(default_factory=list)

    @property
    def success(self) -> bool:
        """Did the walk cross the acceptance threshold?"""
        return self.best_score >= self.threshold

    @property
    def flipped(self) -> bool:
        """Started rejected, ended accepted."""
        return self.initial_score < self.threshold and self.success


@dataclass
class ScoreDescentAttack:
    """NES/SPSA finite-difference ascent against a score oracle.

    Each iteration draws ``population`` antithetic Gaussian probe pairs
    ``±σu``, estimates the gradient as the probe-score-weighted average
    direction, folds it into a momentum buffer, takes an L2-normalised
    ascent step of length ``step_size`` along the buffer, and projects
    back onto the L∞ ball of radius ``epsilon`` (and the L2 ball of
    radius ``l2_budget`` when set) around the original input.  Every
    oracle call is counted; the run stops at ``max_queries``, at
    ``iterations``, or as soon as the oracle clears
    ``threshold + margin``.

    ``loudspeaker`` is only needed for :meth:`prepare` (the staged
    waveform-replay variant); feature-domain use may leave it ``None``.
    """

    loudspeaker: Optional[Loudspeaker] = None
    #: L∞ budget, in units of the attacked representation (CMVN features
    #: are ~unit-variance, so 1.5 keeps every cell sub-outlier).
    epsilon: float = 1.5
    #: Optional L2 budget over the whole input; ``None`` disables it.
    l2_budget: Optional[float] = None
    #: Probe standard deviation of the finite-difference estimator.
    sigma: float = 0.2
    #: L2 length of each ascent step along the momentum direction.
    step_size: float = 1.0
    #: Antithetic probe pairs per iteration (2 queries each).
    population: int = 6
    iterations: int = 40
    max_queries: int = 800
    #: Stop once the oracle clears ``threshold + margin``.
    margin: float = 0.05
    #: Gradient-momentum decay (NI-FGSM style); 0 disables momentum.
    momentum: float = 0.9

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ConfigurationError("epsilon must be positive")
        if self.l2_budget is not None and self.l2_budget <= 0:
            raise ConfigurationError("l2_budget must be positive")
        if self.sigma <= 0 or self.step_size <= 0:
            raise ConfigurationError("sigma and step_size must be positive")
        if self.population < 1 or self.iterations < 1:
            raise ConfigurationError("population and iterations must be >= 1")
        if self.max_queries < 2:
            raise ConfigurationError("max_queries must allow at least one probe")
        if not 0.0 <= self.momentum < 1.0:
            raise ConfigurationError("momentum must be in [0, 1)")

    # ------------------------------------------------------------------
    # Core optimiser
    # ------------------------------------------------------------------
    def _project(self, candidate: np.ndarray, origin: np.ndarray) -> np.ndarray:
        """Clip the perturbation onto the configured budget balls."""
        delta = np.clip(candidate - origin, -self.epsilon, self.epsilon)
        if self.l2_budget is not None:
            norm = float(np.linalg.norm(delta))
            if norm > self.l2_budget:
                delta = delta * (self.l2_budget / norm)
        return origin + delta

    def descend(
        self,
        oracle: ScoreOracle,
        x0: np.ndarray,
        threshold: float,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, AttackTrace]:
        """Walk ``x0`` up the oracle's score surface.

        Returns the best input found and the query-accounted trace.  The
        input is never mutated; all candidates stay inside the budget
        balls around it.
        """
        origin = np.asarray(x0, dtype=float)
        if origin.size == 0:
            raise SignalError("cannot attack an empty input")
        queries = 0

        def pay(x: np.ndarray) -> float:
            nonlocal queries
            queries += 1
            return float(oracle(x))

        current = origin.copy()
        best = current
        initial = pay(current)
        best_score = initial
        path: List[float] = []
        iterations_run = 0
        velocity = np.zeros_like(current)
        for _ in range(self.iterations):
            if best_score >= threshold + self.margin:
                break
            if queries + 2 > self.max_queries:
                break
            iterations_run += 1
            grad = np.zeros_like(current)
            for _ in range(self.population):
                if queries + 2 > self.max_queries:
                    break
                probe = rng.standard_normal(current.shape)
                cand_up = self._project(current + self.sigma * probe, origin)
                cand_down = self._project(current - self.sigma * probe, origin)
                up, down = pay(cand_up), pay(cand_down)
                grad += (up - down) * probe
                for cand_score, cand in ((up, cand_up), (down, cand_down)):
                    if cand_score > best_score:
                        best_score, best = cand_score, cand
            # NES ascent with momentum (NI-FGSM style): normalising the
            # per-iteration estimate before folding it into the buffer
            # keeps iterations equally weighted, and an L2-normalised
            # step bounds the per-iteration move regardless of input
            # dimensionality (a per-coordinate sign step would jump
            # ~sqrt(d)·step_size and overshoot the narrow LLR ridge).
            grad_norm = float(np.linalg.norm(grad))
            if grad_norm > 1e-12:
                velocity = self.momentum * velocity + grad / grad_norm
                vel_norm = float(np.linalg.norm(velocity))
                current = self._project(
                    current + self.step_size * velocity / vel_norm, origin
                )
                if queries < self.max_queries:
                    score = pay(current)
                    if score > best_score:
                        best_score, best = score, current
            path.append(best_score)
        trace = AttackTrace(
            queries=queries,
            iterations=iterations_run,
            initial_score=initial,
            best_score=best_score,
            threshold=threshold,
            score_path=path,
        )
        return best, trace

    # ------------------------------------------------------------------
    # Attack surfaces
    # ------------------------------------------------------------------
    def perturb_features(
        self,
        oracle: ScoreOracle,
        features: np.ndarray,
        threshold: float,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, AttackTrace]:
        """Attack an MFCC feature matrix directly (the S&P 2023 setting).

        ``oracle`` scores a candidate ``(frames, dims)`` matrix — e.g.
        ``lambda f: verifier.verify_features(claimed, f)``.
        """
        feats = np.asarray(features, dtype=float)
        if feats.ndim != 2:
            raise SignalError("perturb_features expects a (frames, dims) matrix")
        return self.descend(oracle, feats, threshold, rng)

    def prepare(
        self,
        stolen_waveform: np.ndarray,
        sample_rate: int,
        target_speaker: str,
        oracle: ScoreOracle,
        threshold: float,
        rng: np.random.Generator,
    ) -> AttackAttempt:
        """Waveform-domain variant, staged through the loudspeaker.

        The oracle scores a candidate *waveform* (front-end included), so
        the optimised audio survives feature re-extraction.  The result
        is a normal :class:`AttackAttempt`: the adversarial audio still
        has to leave a physical loudspeaker, which is exactly what the
        cascade's other stages punish.
        """
        if self.loudspeaker is None:
            raise ConfigurationError(
                "prepare needs a loudspeaker; feature-domain attacks do not"
            )
        stolen = np.asarray(stolen_waveform, dtype=float)
        if stolen.ndim != 1 or stolen.size == 0:
            raise SignalError("stolen recording must be a non-empty 1-D waveform")
        peak = float(np.max(np.abs(stolen)))
        scale = peak if peak > 0 else 1.0
        # Budgets are configured in unit-peak terms; rescale to signal.
        adversarial, trace = ScoreDescentAttack(
            epsilon=self.epsilon * scale,
            l2_budget=None if self.l2_budget is None else self.l2_budget * scale,
            sigma=self.sigma * scale,
            step_size=self.step_size * scale,
            population=self.population,
            iterations=self.iterations,
            max_queries=self.max_queries,
            margin=self.margin,
            momentum=self.momentum,
        ).descend(oracle, stolen, threshold, rng)
        played = self.loudspeaker.apply_band(adversarial, sample_rate)
        return AttackAttempt(
            source=self.loudspeaker,
            waveform=played,
            sample_rate=sample_rate,
            attack_type="adversarial",
            target_speaker=target_speaker,
            metadata={
                "loudspeaker": self.loudspeaker.spec.name,
                "queries": str(trace.queries),
                "initial_score": f"{trace.initial_score:.4f}",
                "best_score": f"{trace.best_score:.4f}",
                "asv_flipped": str(trace.flipped),
            },
        )
