"""Human-based voice impersonation.

A live imitator studies the victim's recordings and mimics them with their
own vocal tract — no loudspeaker, so the magnetometer and sound-field
components see a perfectly ordinary human.  Detection falls entirely to
the ASV stage, which exploits two physical limits of imitation the
literature documents ([26], [5], [9]): the imitator cannot reshape their
vocal-tract length (bounded ``fidelity``), and unpractised speech carries
elevated micro-variability (``effort_variability``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.attacks.base import AttackAttempt
from repro.constants import DEFAULT_SAMPLE_RATE_HZ
from repro.errors import ConfigurationError
from repro.voice.analysis import estimate_profile
from repro.voice.profiles import SpeakerProfile
from repro.voice.synthesis import Synthesizer
from repro.world.humans import HumanSpeakerSource, MouthSource


@dataclass
class HumanMimicAttack:
    """A human imitator targeting an enrolled victim.

    ``fidelity`` — how far toward the (perceived) target the imitator can
    shift the *controllable* parameters (pitch, speaking rate, voice
    quality); professional imitators reach ~0.6–0.7, untrained ones much
    less [26].

    ``formant_limit`` — the anatomical ceiling on spectral-envelope
    imitation.  Vocal-tract length is fixed; lip rounding and larynx
    raising move the effective formant scale by only a few percent, which
    is precisely why GMM ASV systems resist even professional imitators.
    """

    #: Untrained imitators (the paper's Test 1 recruits ordinary
    #: volunteers) manage far less than the professional ~0.6-0.7.
    attacker_profile: SpeakerProfile
    fidelity: float = 0.45
    formant_limit: float = 0.025
    effort_variability: float = 1.0
    sample_rate: int = DEFAULT_SAMPLE_RATE_HZ

    def __post_init__(self) -> None:
        if not 0.0 <= self.fidelity <= 1.0:
            raise ConfigurationError("fidelity must be in [0, 1]")
        if self.effort_variability < 0:
            raise ConfigurationError("effort_variability must be >= 0")
        if self.formant_limit < 0:
            raise ConfigurationError("formant_limit must be >= 0")

    def mimic_profile(self, stolen_waveforms: Sequence[np.ndarray], target: str) -> SpeakerProfile:
        """What the imitator's voice becomes while imitating."""
        from dataclasses import replace

        perceived = estimate_profile(
            list(stolen_waveforms), self.sample_rate, speaker_id=target
        )
        morphed = self.attacker_profile.morph_toward(
            perceived, self.fidelity, extra_variability=self.effort_variability
        )
        own_scale = self.attacker_profile.formant_scale
        shift = float(
            np.clip(
                morphed.formant_scale - own_scale,
                -self.formant_limit,
                self.formant_limit,
            )
        )
        # The per-formant idiosyncrasies are pure anatomy — the imitator
        # keeps their own regardless of effort.
        return replace(
            morphed,
            formant_scale=own_scale + shift,
            formant_offsets=self.attacker_profile.formant_offsets,
        )

    def prepare(
        self,
        stolen_waveforms: Sequence[np.ndarray],
        passphrase_digits: str,
        target_speaker: str,
        rng: np.random.Generator,
    ) -> AttackAttempt:
        """One live imitation attempt (source is the imitator's own mouth)."""
        profile = self.mimic_profile(stolen_waveforms, target_speaker)
        utterance = Synthesizer(self.sample_rate).synthesize_digits(
            profile, passphrase_digits, rng
        )
        source = HumanSpeakerSource(profile, MouthSource())
        return AttackAttempt(
            source=source,
            waveform=utterance.waveform,
            sample_rate=self.sample_rate,
            attack_type="human_mimic",
            target_speaker=target_speaker,
            metadata={"attacker": self.attacker_profile.speaker_id},
        )
