"""Type 2: voice morphing (conversion) attack.

The attacker analyses stolen recordings (honestly — F0 tracking and LPC
formant estimation, no access to the victim's generative parameters),
morphs their own voice toward the estimate, and plays the converted speech
through a loudspeaker.  Per the adversary model the conversion is assumed
high quality (``fidelity`` defaults near 1), so the ASV component alone
would frequently be fooled — the loudspeaker is what gives the attack
away.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.attacks.base import AttackAttempt
from repro.constants import DEFAULT_SAMPLE_RATE_HZ
from repro.devices.loudspeaker import Loudspeaker
from repro.errors import ConfigurationError
from repro.voice.analysis import estimate_profile
from repro.voice.profiles import SpeakerProfile
from repro.voice.synthesis import Synthesizer


@dataclass
class MorphingAttack:
    """Voice conversion toward an analysed victim profile.

    ``fidelity`` — how completely the conversion matches the estimated
    target (1.0 = perfect match *to the estimate*; residual error against
    the true victim remains from the analysis step).
    ``artifact_bandwidth`` — conversion vocoders smooth spectral detail;
    modelled as widened formant bandwidths.
    """

    loudspeaker: Loudspeaker
    attacker_profile: SpeakerProfile
    fidelity: float = 0.95
    artifact_bandwidth: float = 1.25
    sample_rate: int = DEFAULT_SAMPLE_RATE_HZ

    def __post_init__(self) -> None:
        if not 0.0 <= self.fidelity <= 1.0:
            raise ConfigurationError("fidelity must be in [0, 1]")
        if self.artifact_bandwidth < 1.0:
            raise ConfigurationError("artifact_bandwidth must be >= 1")

    def analyse_target(
        self, stolen_waveforms: Sequence[np.ndarray], target_speaker: str
    ) -> SpeakerProfile:
        """The attacker's estimate of the victim's voice."""
        return estimate_profile(
            list(stolen_waveforms), self.sample_rate, speaker_id=target_speaker
        )

    def morphed_profile(self, estimated_target: SpeakerProfile) -> SpeakerProfile:
        """Attacker's voice morphed toward the estimate, with artifacts."""
        morphed = self.attacker_profile.morph_toward(estimated_target, self.fidelity)
        return replace(
            morphed,
            bandwidth_scale=min(3.0, morphed.bandwidth_scale * self.artifact_bandwidth),
        )

    def prepare(
        self,
        stolen_waveforms: Sequence[np.ndarray],
        passphrase_digits: str,
        target_speaker: str,
        rng: np.random.Generator,
    ) -> AttackAttempt:
        """Analyse, convert, and stage playback of the pass-phrase."""
        estimated = self.analyse_target(stolen_waveforms, target_speaker)
        morphed = self.morphed_profile(estimated)
        synth = Synthesizer(self.sample_rate)
        utterance = synth.synthesize_digits(morphed, passphrase_digits, rng)
        played = self.loudspeaker.apply_band(utterance.waveform, self.sample_rate)
        return AttackAttempt(
            source=self.loudspeaker,
            waveform=played,
            sample_rate=self.sample_rate,
            attack_type="morphing",
            target_speaker=target_speaker,
            metadata={
                "loudspeaker": self.loudspeaker.spec.name,
                "estimated_f0": f"{estimated.f0_hz:.1f}",
                "estimated_scale": f"{estimated.formant_scale:.3f}",
            },
        )
