"""Common attack interface.

Every attack prepares an :class:`AttackAttempt`: a scene source (what the
phone's sensors physically face) plus the waveform that source plays.
Feeding the attempt into :func:`repro.world.scene.simulate_capture`
produces the capture the defense pipeline judges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np


@dataclass(frozen=True)
class AttackAttempt:
    """One prepared impersonation attempt."""

    source: object
    waveform: np.ndarray
    sample_rate: int
    attack_type: str
    target_speaker: str
    metadata: Dict[str, str] = field(default_factory=dict)
