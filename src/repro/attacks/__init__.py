"""Attack implementations from the paper's adversary model (§III-A).

Machine-based voice impersonation (all require a loudspeaker — the
defended weakness):

- :mod:`repro.attacks.replay` — Type 1, replaying a stolen recording;
- :mod:`repro.attacks.morphing` — Type 2, voice conversion toward the
  victim's analysed profile;
- :mod:`repro.attacks.synthesis` — Type 3, TTS-style synthesis of
  arbitrary text in the victim's estimated voice.

Human-based impersonation:

- :mod:`repro.attacks.human_mimic` — a live imitator (no loudspeaker; the
  ASV component is the defense).

Discussion-section attacks (§VII):

- :mod:`repro.attacks.soundtube` — a plastic tube that distances the
  loudspeaker from the phone while piping sound to it.

Cross-paper expansion (beyond the 2017 adversary model):

- :mod:`repro.attacks.adversarial` — gradient-free score-descent
  perturbation of the ASV back-end (*Breaking Security-Critical Voice
  Authentication*, S&P 2023), feature- and waveform-domain.
"""

from repro.attacks.adversarial import AttackTrace, ScoreDescentAttack
from repro.attacks.base import AttackAttempt
from repro.attacks.replay import ReplayAttack
from repro.attacks.morphing import MorphingAttack
from repro.attacks.synthesis import SynthesisAttack
from repro.attacks.human_mimic import HumanMimicAttack
from repro.attacks.soundtube import SoundTubeAttack, TubeSource

__all__ = [
    "AttackAttempt",
    "AttackTrace",
    "ScoreDescentAttack",
    "ReplayAttack",
    "MorphingAttack",
    "SynthesisAttack",
    "HumanMimicAttack",
    "SoundTubeAttack",
    "TubeSource",
]
