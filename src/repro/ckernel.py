"""Build-and-cache helper for optional compiled C kernels.

Hot inner loops that numpy cannot express efficiently (sequential
recurrences, scattered gathers) live as small C sources compiled on
first use with the system compiler.  Each kernel module owns its source
string and ctypes bindings; this helper owns the shared mechanics:

- the shared object is cached under ``$REPRO_KERNEL_CACHE`` (or the
  system temp dir) keyed by a content hash of source + flags, so a
  rebuild only happens when the kernel actually changes;
- compilation failures (no compiler, sandboxed temp dir) degrade to
  ``None`` and callers fall back to their pure-numpy path — the kernels
  are replicas of the numpy semantics, never the only implementation.

``-ffp-contract=off`` is load-bearing in the default flags: FMA
contraction would reassociate roundings and break the bitwise equality
the kernel tests pin against the numpy/scipy reference paths.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from typing import Sequence

DEFAULT_CFLAGS = ("-O2", "-ffp-contract=off", "-shared", "-fPIC")


def load_library(
    stem: str, source: str, cflags: Sequence[str] = DEFAULT_CFLAGS
) -> ctypes.CDLL | None:
    """Compile (or reuse a cached build of) a kernel; ``None`` on failure."""
    tag = hashlib.blake2b(
        (source + " ".join(cflags)).encode(), digest_size=12
    ).hexdigest()
    cache_dir = os.environ.get("REPRO_KERNEL_CACHE", tempfile.gettempdir())
    so_path = os.path.join(cache_dir, f"repro_{stem}_{tag}.so")
    if not os.path.exists(so_path):
        src_path = os.path.join(cache_dir, f"repro_{stem}_{tag}.c")
        try:
            with open(src_path, "w") as fh:
                fh.write(source)
        except OSError:
            return None
        tmp_so = so_path + f".tmp{os.getpid()}"
        for compiler in ("cc", "gcc", "clang"):
            try:
                subprocess.run(
                    [compiler, *cflags, "-o", tmp_so, src_path],
                    check=True,
                    capture_output=True,
                    timeout=60,
                )
                os.replace(tmp_so, so_path)
                break
            except (OSError, subprocess.SubprocessError):
                continue
        else:
            return None
    try:
        return ctypes.CDLL(so_path)
    except OSError:
        return None
