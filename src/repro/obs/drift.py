"""Online score-drift monitors for the verification stages.

An EER shift in the serving corpus should be visible from the gateway's
telemetry, without rerunning the Table 1 sweep.  Each stage's continuous
score stream feeds a :class:`DriftMonitor`:

- **rolling statistics** — mean/std over a bounded ring of the most
  recent scores (what the distribution looks like *now*);
- a **P² quantile sketch** (Jain & Chlamtac 1985) — streaming p50/p95
  estimates over the *whole* stream in O(1) memory, no sample buffer;
- a **frozen reference** — the first ``baseline`` scores fix the
  expected mean/std, and a :class:`DriftAlert` fires whenever the
  rolling mean wanders more than ``z_threshold`` reference standard
  deviations from the reference mean (threshold-crossing semantics: the
  alert state holds while the distribution stays shifted).

:class:`DriftRegistry` keys monitors by stage name and is thread-safe —
gateway request workers record concurrently.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis import lockset
from repro.errors import ConfigurationError

__all__ = ["P2Quantile", "DriftAlert", "DriftMonitor", "DriftRegistry"]


class P2Quantile:
    """Streaming quantile estimate via the P² algorithm (no buffer).

    Keeps five markers whose heights converge on the ``p``-quantile of
    the stream; memory and update cost are O(1) regardless of how many
    scores a long-lived gateway sees.
    """

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ConfigurationError("p must be in (0, 1)")
        self.p = p
        self._initial: List[float] = []
        self._q: List[float] = []  # marker heights
        self._n: List[int] = []  # marker positions (1-based)
        self._np: List[float] = []  # desired positions
        self._dn = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        self.count = 0

    def update(self, x: float) -> None:
        x = float(x)
        self.count += 1
        if len(self._initial) < 5:
            self._initial.append(x)
            if len(self._initial) == 5:
                self._initial.sort()
                self._q = list(self._initial)
                self._n = [1, 2, 3, 4, 5]
                self._np = [
                    1.0,
                    1.0 + 2.0 * self.p,
                    1.0 + 4.0 * self.p,
                    3.0 + 2.0 * self.p,
                    5.0,
                ]
            return
        # Locate the cell containing x, clamping the extremes.
        if x < self._q[0]:
            self._q[0] = x
            k = 0
        elif x >= self._q[4]:
            self._q[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= self._q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            self._n[i] += 1
        for i in range(5):
            self._np[i] += self._dn[i]
        # Adjust the three interior markers.
        for i in range(1, 4):
            d = self._np[i] - self._n[i]
            if (d >= 1 and self._n[i + 1] - self._n[i] > 1) or (
                d <= -1 and self._n[i - 1] - self._n[i] < -1
            ):
                step = 1 if d >= 1 else -1
                candidate = self._parabolic(i, step)
                if self._q[i - 1] < candidate < self._q[i + 1]:
                    self._q[i] = candidate
                else:
                    self._q[i] = self._linear(i, step)
                self._n[i] += step

    def _parabolic(self, i: int, d: int) -> float:
        n, q = self._n, self._q
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: int) -> float:
        n, q = self._n, self._q
        return q[i] + d * (q[i + d] - q[i]) / (n[i + d] - n[i])

    @property
    def value(self) -> float:
        """The current quantile estimate (exact below 5 samples)."""
        if self.count == 0:
            return 0.0
        if len(self._initial) < 5:
            return float(np.percentile(self._initial, self.p * 100.0))
        return self._q[2]


@dataclass(frozen=True)
class DriftAlert:
    """One stage's score distribution has left its reference band."""

    stage: str
    kind: str
    rolling_mean: float
    reference_mean: float
    reference_std: float
    zscore: float

    def __str__(self) -> str:
        return (
            f"drift[{self.stage}] {self.kind}: rolling mean "
            f"{self.rolling_mean:.4g} is {self.zscore:.2f} ref-sigma from "
            f"reference {self.reference_mean:.4g} (ref std "
            f"{self.reference_std:.4g})"
        )


class DriftMonitor:
    """Rolling + sketched statistics of one score stream, with alerting."""

    def __init__(
        self,
        name: str,
        window: int = 256,
        baseline: int = 64,
        z_threshold: float = 3.0,
        min_std: float = 1e-6,
    ):
        if window <= 1:
            raise ConfigurationError("window must be > 1")
        if baseline <= 1:
            raise ConfigurationError("baseline must be > 1")
        if z_threshold <= 0:
            raise ConfigurationError("z_threshold must be positive")
        self.name = name
        self.window = window
        self.baseline = baseline
        self.z_threshold = z_threshold
        self.min_std = min_std
        self._ring = np.empty(window, dtype=float)
        self.count = 0
        self.reference_mean: Optional[float] = None
        self.reference_std: Optional[float] = None
        self._p50 = P2Quantile(0.5)
        self._p95 = P2Quantile(0.95)

    def record(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            return  # -inf error scores would poison every statistic
        self._ring[self.count % self.window] = value
        self.count += 1
        self._p50.update(value)
        self._p95.update(value)
        if self.count == self.baseline and self.reference_mean is None:
            recent = self._ring[: self.count]
            self.reference_mean = float(recent.mean())
            self.reference_std = max(float(recent.std()), self.min_std)

    def set_reference(self, mean: float, std: float) -> None:
        """Pin the reference externally (e.g. from offline calibration)."""
        self.reference_mean = float(mean)
        self.reference_std = max(float(std), self.min_std)

    def _recent(self) -> np.ndarray:
        return self._ring[: min(self.count, self.window)]

    @property
    def rolling_mean(self) -> float:
        return float(self._recent().mean()) if self.count else 0.0

    @property
    def rolling_std(self) -> float:
        return float(self._recent().std()) if self.count else 0.0

    def zscore(self) -> float:
        """Rolling-mean displacement in reference standard deviations."""
        if self.reference_mean is None or self.reference_std is None:
            return 0.0
        return abs(self.rolling_mean - self.reference_mean) / self.reference_std

    def alert(self) -> Optional[DriftAlert]:
        """A :class:`DriftAlert` while the threshold is crossed."""
        if self.reference_mean is None or self.count <= self.baseline:
            return None
        z = self.zscore()
        if z <= self.z_threshold:
            return None
        assert self.reference_std is not None
        return DriftAlert(
            stage=self.name,
            kind="mean_shift",
            rolling_mean=self.rolling_mean,
            reference_mean=self.reference_mean,
            reference_std=self.reference_std,
            zscore=z,
        )

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "rolling_mean": self.rolling_mean,
            "rolling_std": self.rolling_std,
            "p50": self._p50.value,
            "p95": self._p95.value,
            "reference_mean": (
                self.reference_mean if self.reference_mean is not None else 0.0
            ),
            "reference_std": (
                self.reference_std if self.reference_std is not None else 0.0
            ),
            "zscore": self.zscore(),
        }


class DriftRegistry:
    """Per-stage drift monitors, created on first record (thread-safe)."""

    def __init__(
        self,
        window: int = 256,
        baseline: int = 64,
        z_threshold: float = 3.0,
    ):
        self._window = window
        self._baseline = baseline
        self._z_threshold = z_threshold
        self._lock = threading.Lock()
        self._monitors: Dict[str, DriftMonitor] = {}  # guarded-by: _lock
        lockset.register(self)

    def monitor(self, stage: str) -> DriftMonitor:
        with self._lock:
            mon = self._monitors.get(stage)
            if mon is None:
                mon = self._monitors[stage] = DriftMonitor(
                    stage, self._window, self._baseline, self._z_threshold
                )
            return mon

    def record(self, stage: str, value: float) -> None:
        mon = self.monitor(stage)
        with self._lock:
            mon.record(value)

    def alerts(self) -> List[DriftAlert]:
        with self._lock:
            monitors = list(self._monitors.values())
            return [a for a in (m.alert() for m in monitors) if a is not None]

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            monitors = dict(self._monitors)
            return {name: mon.snapshot() for name, mon in monitors.items()}
