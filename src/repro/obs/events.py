"""One structured *wide event* per request, with tail sampling.

A wide event is the single canonical-log-line record observability
vendors converge on: everything known about one request in one flat
row — decision, stage scores, latency, queue wait, shard, trace id —
so an incident responder greps one file instead of joining traces,
audit rows, and histograms.

Emitting every event at full traffic would drown the disk with healthy
accepts, so the recorder applies **tail sampling** (decide after the
outcome is known, not before):

- every **rejection** is kept (they are the paper's whole point);
- every **slow** request is kept (duration >= ``slow_threshold_s``);
- every request completing while an **alert probe** fires (SLO burn or
  an abuse detector) is kept — the traffic surrounding an incident is
  exactly what post-mortems need;
- accepted, fast, quiet requests are head-sampled 1-in-``head_rate``.

Events optionally stream to a :class:`~repro.obs.exporters.JsonlRotatingWriter`
(the CI artifact) and always land in a bounded in-memory ring for the
ops console.  The recorder is also where histogram **exemplars** come
from: the serving path passes the kept event's trace id into
``metrics.observe(..., exemplar=...)`` so a latency bucket in the
Prometheus exposition links to a real request.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.analysis import lockset
from repro.errors import ConfigurationError
from repro.obs.exporters import JsonlRotatingWriter

__all__ = ["WideEvent", "WideEventRecorder"]


@dataclass
class WideEvent:
    """Everything known about one served request, flat."""

    request_id: str
    trace_id: str
    claimed_speaker: Optional[str]
    mode: str
    decision: str  # "accept" | "reject"
    duration_s: float
    queue_wait_s: float = 0.0
    early_exit_stage: Optional[str] = None
    shard_id: Optional[int] = None
    stage_scores: Dict[str, float] = field(default_factory=dict)
    stage_statuses: Dict[str, str] = field(default_factory=dict)
    wall_ts: float = field(default_factory=time.time)
    keep_reason: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "request_id": self.request_id,
            "trace_id": self.trace_id,
            "claimed_speaker": self.claimed_speaker,
            "mode": self.mode,
            "decision": self.decision,
            "duration_s": self.duration_s,
            "queue_wait_s": self.queue_wait_s,
            "early_exit_stage": self.early_exit_stage,
            "shard_id": self.shard_id,
            "stage_scores": dict(self.stage_scores),
            "stage_statuses": dict(self.stage_statuses),
            "wall_ts": self.wall_ts,
            "keep_reason": self.keep_reason,
        }

    @classmethod
    def from_record_row(
        cls,
        row: Dict[str, object],
        duration_s: float,
        queue_wait_s: float = 0.0,
        shard_id: Optional[int] = None,
    ) -> "WideEvent":
        """Build from a :meth:`DecisionRecord.to_dict` row (the shard →
        parent provenance payload, so sharded serving gets wide events
        without a second cross-process message)."""
        stages = row.get("stages", []) or []
        return cls(
            request_id=str(row.get("request_id", "")),
            trace_id=str(row.get("trace_id", "")),
            claimed_speaker=(
                str(row["claimed_speaker"])
                if row.get("claimed_speaker") is not None
                else None
            ),
            mode=str(row.get("mode", "")),
            decision=str(row.get("decision", "")),
            duration_s=duration_s,
            queue_wait_s=queue_wait_s,
            early_exit_stage=(
                str(row["early_exit_stage"])
                if row.get("early_exit_stage") is not None
                else None
            ),
            shard_id=shard_id,
            stage_scores={
                str(s["name"]): float(s["score"])
                for s in stages  # type: ignore[union-attr]
                if s.get("score") is not None
            },
            stage_statuses={
                str(s["name"]): str(s["status"])
                for s in stages  # type: ignore[union-attr]
            },
        )


class WideEventRecorder:
    """Tail-sampling sink for :class:`WideEvent` rows."""

    def __init__(
        self,
        path: Optional[object] = None,
        slow_threshold_s: float = 0.25,
        head_rate: int = 10,
        alert_probe: Optional[Callable[[], bool]] = None,
        ring_size: int = 256,
        max_bytes: int = 16 * 1024 * 1024,
        backups: int = 3,
    ):
        if slow_threshold_s <= 0:
            raise ConfigurationError("slow_threshold_s must be positive")
        if head_rate < 1:
            raise ConfigurationError("head_rate must be >= 1")
        if ring_size < 1:
            raise ConfigurationError("ring_size must be >= 1")
        self.slow_threshold_s = slow_threshold_s
        self.head_rate = head_rate
        self._alert_probe = alert_probe
        self._writer = (
            JsonlRotatingWriter(path, max_bytes, backups)  # type: ignore[arg-type]
            if path is not None
            else None
        )
        self._lock = threading.Lock()
        self._seen = 0  # guarded-by: _lock
        self._kept = 0  # guarded-by: _lock
        self._reasons: Dict[str, int] = {}  # guarded-by: _lock
        self._recent: Deque[WideEvent] = deque(maxlen=ring_size)  # guarded-by: _lock
        lockset.register(self)

    def record(self, event: WideEvent) -> Optional[str]:
        """Apply the sampling policy; returns the keep reason (``None``
        = dropped).  The decision order is precedence: a slow rejection
        reports ``"reject"``."""
        reason = self._decide(event)
        with self._lock:
            self._seen += 1
            if reason is None:
                return None
            self._kept += 1
            self._reasons[reason] = self._reasons.get(reason, 0) + 1
            event.keep_reason = reason
            self._recent.append(event)
            writer = self._writer
        if writer is not None:
            writer.write(event.to_dict())
        return reason

    def _decide(self, event: WideEvent) -> Optional[str]:
        if event.decision != "accept":
            return "reject"
        if event.duration_s >= self.slow_threshold_s:
            return "slow"
        if self._alert_probe is not None and self._alert_probe():
            return "alert"
        with self._lock:
            # 1-in-N head sampling of healthy accepts, counted over
            # *seen* traffic so the kept share is predictable.
            if self._seen % self.head_rate == 0:
                return "head"
        return None

    # -- reporting -----------------------------------------------------
    def recent(self, n: int = 20) -> List[WideEvent]:
        with self._lock:
            rows = list(self._recent)
        return rows[-n:]

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "seen": self._seen,
                "kept": self._kept,
                "kept_ratio": self._kept / self._seen if self._seen else 0.0,
                "reasons": dict(self._reasons),
                "slow_threshold_s": self.slow_threshold_s,
                "head_rate": self.head_rate,
            }

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()

    def __enter__(self) -> "WideEventRecorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
