"""Telemetry exporters: rotating JSONL sinks and Prometheus text format.

- :class:`JsonlRotatingWriter` — append-only JSON-lines file with
  size-based rotation (``file``, ``file.1`` … ``file.N``), thread-safe.
- :class:`TraceJsonlExporter` — subscribes to a
  :class:`~repro.obs.trace.Tracer` and writes one line per completed
  trace (``{"trace_id": ..., "spans": [...]}``); together with the audit
  log this makes a rejected request fully reconstructable offline.
- :class:`AuditJsonlExporter` — one line per
  :class:`~repro.obs.provenance.DecisionRecord`.
- :func:`prometheus_exposition` — renders a
  :class:`~repro.server.metrics.MetricsRegistry` in the Prometheus text
  exposition format (counters, histogram summaries with quantiles,
  uptime and throughput gauges); :func:`parse_prometheus` is the inverse
  used by scrape clients and the round-trip tests.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.provenance import DecisionRecord
from repro.obs.trace import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.metrics import MetricsRegistry

__all__ = [
    "JsonlRotatingWriter",
    "TraceJsonlExporter",
    "AuditJsonlExporter",
    "read_jsonl",
    "prometheus_exposition",
    "parse_prometheus",
]


class JsonlRotatingWriter:
    """Append JSON objects as lines; rotate when the file grows too big.

    Rotation renames ``path`` to ``path.1`` (shifting older backups up to
    ``path.<backups>``, dropping the oldest) and starts a fresh file, so
    a long-lived gateway's disk use stays bounded at roughly
    ``max_bytes * (backups + 1)``.
    """

    def __init__(
        self, path: os.PathLike, max_bytes: int = 16 * 1024 * 1024, backups: int = 3
    ):
        if max_bytes <= 0:
            raise ConfigurationError("max_bytes must be positive")
        if backups < 0:
            raise ConfigurationError("backups must be >= 0")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.backups = backups
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._size = self.path.stat().st_size if self.path.exists() else 0
        self._fh = open(self.path, "a", encoding="utf-8")

    def write(self, obj: object) -> None:
        line = json.dumps(obj, sort_keys=True) + "\n"
        with self._lock:
            if self._size + len(line) > self.max_bytes and self._size > 0:
                self._rotate_locked()
            self._fh.write(line)
            self._fh.flush()
            self._size += len(line)

    def _rotate_locked(self) -> None:
        self._fh.close()
        if self.backups == 0:
            self.path.unlink(missing_ok=True)
        else:
            oldest = self.path.with_name(f"{self.path.name}.{self.backups}")
            oldest.unlink(missing_ok=True)
            for i in range(self.backups - 1, 0, -1):
                src = self.path.with_name(f"{self.path.name}.{i}")
                if src.exists():
                    os.replace(src, self.path.with_name(f"{self.path.name}.{i + 1}"))
            if self.path.exists():
                os.replace(self.path, self.path.with_name(f"{self.path.name}.1"))
        self._fh = open(self.path, "a", encoding="utf-8")
        self._size = 0

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "JsonlRotatingWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_jsonl(path: os.PathLike) -> List[dict]:
    """Load every row of a JSONL file (rotation backups not included)."""
    rows: List[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


class TraceJsonlExporter:
    """Write each completed trace of a tracer as one JSONL row."""

    def __init__(
        self,
        tracer: Tracer,
        path: os.PathLike,
        max_bytes: int = 16 * 1024 * 1024,
        backups: int = 3,
    ):
        self._tracer = tracer
        self._writer = JsonlRotatingWriter(path, max_bytes, backups)
        tracer.add_listener(self._on_trace)

    @property
    def path(self) -> Path:
        return self._writer.path

    def _on_trace(self, spans: List[Span]) -> None:
        if not spans:
            return
        self._writer.write(
            {
                "trace_id": spans[0].trace_id,
                "spans": [s.to_dict() for s in spans],
            }
        )

    def close(self) -> None:
        self._tracer.remove_listener(self._on_trace)
        self._writer.close()

    def __enter__(self) -> "TraceJsonlExporter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AuditJsonlExporter:
    """Write decision audit records (one JSONL row per decision)."""

    def __init__(
        self,
        path: os.PathLike,
        max_bytes: int = 16 * 1024 * 1024,
        backups: int = 3,
    ):
        self._writer = JsonlRotatingWriter(path, max_bytes, backups)

    @property
    def path(self) -> Path:
        return self._writer.path

    def write(self, record: DecisionRecord) -> None:
        self._writer.write(record.to_dict())

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "AuditJsonlExporter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_QUANTILES: Tuple[Tuple[str, float], ...] = (("0.5", 50.0), ("0.95", 95.0))


def _sanitize(name: str) -> str:
    return "".join(c if (c.isalnum() or c == "_") else "_" for c in name)


def prometheus_exposition(
    registry: "MetricsRegistry", prefix: str = "repro"
) -> str:
    """Render a metrics registry in the Prometheus text format (0.0.4).

    Counters become ``<prefix>_<name>_total`` counters; histograms become
    summaries (``{quantile=...}``, ``_sum``, ``_count``) named
    ``<prefix>_<name>``.  Uptime and both throughput readings (lifetime
    and windowed — see
    :meth:`~repro.server.metrics.MetricsRegistry.windowed_throughput`)
    are exported as gauges.
    """
    lines: List[str] = []
    summary = registry.summary()
    counters: Dict[str, int] = summary["counters"]  # type: ignore[assignment]
    for name in sorted(counters):
        metric = f"{prefix}_{_sanitize(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {counters[name]}")
    histograms: Dict[str, Dict[str, float]] = summary["histograms"]  # type: ignore[assignment]
    for name in sorted(histograms):
        stats = histograms[name]
        metric = f"{prefix}_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} summary")
        for label, pct in _QUANTILES:
            value = stats.get(f"p{int(pct)}", 0.0)
            lines.append(f'{metric}{{quantile="{label}"}} {_fmt(value)}')
        lines.append(f"{metric}_sum {_fmt(stats['mean'] * stats['count'])}")
        lines.append(f"{metric}_count {int(stats['count'])}")
        lines.append(f"# TYPE {metric}_min gauge")
        lines.append(f"{metric}_min {_fmt(stats['min'])}")
        lines.append(f"# TYPE {metric}_max gauge")
        lines.append(f"{metric}_max {_fmt(stats['max'])}")
    lines.append(f"# TYPE {prefix}_uptime_seconds gauge")
    lines.append(f"{prefix}_uptime_seconds {_fmt(registry.uptime_s)}")
    lines.append(f"# TYPE {prefix}_throughput_rps gauge")
    lines.append(f"{prefix}_throughput_rps {_fmt(registry.throughput())}")
    lines.append(f"# TYPE {prefix}_windowed_throughput_rps gauge")
    lines.append(
        f"{prefix}_windowed_throughput_rps {_fmt(registry.windowed_throughput())}"
    )
    return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    return repr(float(value))


def parse_prometheus(text: str) -> Dict[str, Dict[str, float]]:
    """Parse text-format exposition into ``{metric: {labelset: value}}``.

    The label set key is the raw ``{...}`` string (empty string for
    unlabelled samples).  Raises :class:`~repro.errors.ConfigurationError`
    on malformed lines, so exporter regressions fail loudly.
    """
    metrics: Dict[str, Dict[str, float]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            name_part, value_part = line.rsplit(" ", 1)
            value = float(value_part)
        except ValueError as exc:
            raise ConfigurationError(f"bad exposition line: {raw!r}") from exc
        if "{" in name_part:
            if not name_part.endswith("}"):
                raise ConfigurationError(f"bad exposition line: {raw!r}")
            name, labels = name_part.split("{", 1)
            labels = "{" + labels
        else:
            name, labels = name_part, ""
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise ConfigurationError(f"bad metric name in line: {raw!r}")
        metrics.setdefault(name, {})[labels] = value
    return metrics
