"""Telemetry exporters: rotating JSONL sinks and Prometheus text format.

- :class:`JsonlRotatingWriter` — append-only JSON-lines file with
  size-based rotation (``file``, ``file.1`` … ``file.N``), thread-safe.
- :class:`TraceJsonlExporter` — subscribes to a
  :class:`~repro.obs.trace.Tracer` and writes one line per completed
  trace (``{"trace_id": ..., "spans": [...]}``); together with the audit
  log this makes a rejected request fully reconstructable offline.
- :class:`AuditJsonlExporter` — one line per
  :class:`~repro.obs.provenance.DecisionRecord`.
- :func:`prometheus_exposition` — renders a
  :class:`~repro.server.metrics.MetricsRegistry` in the Prometheus text
  exposition format (counters, histogram summaries with quantiles,
  uptime and throughput gauges); :func:`parse_prometheus` is the inverse
  used by scrape clients and the round-trip tests.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.provenance import DecisionRecord
from repro.obs.trace import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.metrics import MetricsRegistry

__all__ = [
    "JsonlRotatingWriter",
    "TraceJsonlExporter",
    "AuditJsonlExporter",
    "read_jsonl",
    "prometheus_exposition",
    "parse_prometheus",
    "escape_label_value",
    "unescape_label_value",
]


class JsonlRotatingWriter:
    """Append JSON objects as lines; rotate when the file grows too big.

    Rotation renames ``path`` to ``path.1`` (shifting older backups up to
    ``path.<backups>``, dropping the oldest) and starts a fresh file, so
    a long-lived gateway's disk use stays bounded at roughly
    ``max_bytes * (backups + 1)``.
    """

    def __init__(
        self, path: os.PathLike, max_bytes: int = 16 * 1024 * 1024, backups: int = 3
    ):
        if max_bytes <= 0:
            raise ConfigurationError("max_bytes must be positive")
        if backups < 0:
            raise ConfigurationError("backups must be >= 0")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.backups = backups
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._size = self.path.stat().st_size if self.path.exists() else 0
        if self._size > 0:
            # Crash recovery: a process killed mid-write leaves a
            # truncated trailing line.  The partial row is unrecoverable
            # (it was never durable), so drop it: truncate back to the
            # last complete line and the file stays valid JSONL
            # end-to-end — no reader ever trips over mid-file garbage.
            with open(self.path, "rb") as probe:
                data = probe.read()
            if not data.endswith(b"\n"):
                keep = data.rfind(b"\n") + 1  # 0 when no newline at all
                with open(self.path, "r+b") as fh:
                    fh.truncate(keep)
                self._size = keep
        self._fh = open(self.path, "a", encoding="utf-8")

    def write(self, obj: object) -> None:
        line = json.dumps(obj, sort_keys=True) + "\n"
        with self._lock:
            if self._size + len(line) > self.max_bytes and self._size > 0:
                self._rotate_locked()
            self._fh.write(line)
            self._fh.flush()
            self._size += len(line)

    def _rotate_locked(self) -> None:
        self._fh.close()
        if self.backups == 0:
            self.path.unlink(missing_ok=True)
        else:
            oldest = self.path.with_name(f"{self.path.name}.{self.backups}")
            oldest.unlink(missing_ok=True)
            for i in range(self.backups - 1, 0, -1):
                src = self.path.with_name(f"{self.path.name}.{i}")
                if src.exists():
                    os.replace(src, self.path.with_name(f"{self.path.name}.{i + 1}"))
            if self.path.exists():
                os.replace(self.path, self.path.with_name(f"{self.path.name}.1"))
        self._fh = open(self.path, "a", encoding="utf-8")
        self._size = 0

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "JsonlRotatingWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_jsonl(path: os.PathLike) -> List[dict]:
    """Load every row of a JSONL file (rotation backups not included).

    A truncated **trailing** line — what a crash mid-write (or
    mid-rotate) leaves behind — is silently skipped: every complete row
    before it is still returned.  Corruption anywhere *else* in the file
    still raises, so a genuinely damaged log fails loudly.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    rows: List[dict] = []
    last_index = len(lines) - 1
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError:
            if i == last_index:
                break  # torn tail from a crash mid-write: skip it
            raise
    return rows


class TraceJsonlExporter:
    """Write each completed trace of a tracer as one JSONL row."""

    def __init__(
        self,
        tracer: Tracer,
        path: os.PathLike,
        max_bytes: int = 16 * 1024 * 1024,
        backups: int = 3,
    ):
        self._tracer = tracer
        self._writer = JsonlRotatingWriter(path, max_bytes, backups)
        tracer.add_listener(self._on_trace)

    @property
    def path(self) -> Path:
        return self._writer.path

    def _on_trace(self, spans: List[Span]) -> None:
        if not spans:
            return
        self._writer.write(
            {
                "trace_id": spans[0].trace_id,
                "spans": [s.to_dict() for s in spans],
            }
        )

    def close(self) -> None:
        self._tracer.remove_listener(self._on_trace)
        self._writer.close()

    def __enter__(self) -> "TraceJsonlExporter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AuditJsonlExporter:
    """Write decision audit records (one JSONL row per decision)."""

    def __init__(
        self,
        path: os.PathLike,
        max_bytes: int = 16 * 1024 * 1024,
        backups: int = 3,
    ):
        self._writer = JsonlRotatingWriter(path, max_bytes, backups)

    @property
    def path(self) -> Path:
        return self._writer.path

    def write(self, record: DecisionRecord) -> None:
        self._writer.write(record.to_dict())

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "AuditJsonlExporter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_QUANTILES: Tuple[Tuple[str, float], ...] = (("0.5", 50.0), ("0.95", 95.0))


def _sanitize(name: str) -> str:
    return "".join(c if (c.isalnum() or c == "_") else "_" for c in name)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format: backslash,
    double quote, and newline must be escaped (in that order, so the
    escapes themselves survive)."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def unescape_label_value(value: str) -> str:
    """Inverse of :func:`escape_label_value`."""
    out: List[str] = []
    i = 0
    while i < len(value):
        c = value[i]
        if c == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:
                out.append(c)
                out.append(nxt)
            i += 2
            continue
        out.append(c)
        i += 1
    return "".join(out)


def _escape_help(text: str) -> str:
    """``# HELP`` escaping: only backslash and newline (no quotes)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _help_text(name: str) -> str:
    """A one-line HELP string derived from the series name."""
    if name.endswith("_total"):
        return f"Monotonic count of {name[: -len('_total')]} events."
    if name.endswith("_s") or name.endswith("_seconds"):
        return f"Distribution of {name} (seconds)."
    return f"Distribution of {name}."


def prometheus_exposition(
    registry: "MetricsRegistry", prefix: str = "repro"
) -> str:
    """Render a metrics registry in the Prometheus text format (0.0.4).

    Counters become ``<prefix>_<name>_total`` counters; histograms become
    summaries (``{quantile=...}``, ``_sum``, ``_count``) named
    ``<prefix>_<name>``, plus cumulative ``<prefix>_<name>_bucket``
    series over the fixed bounds in
    :data:`~repro.server.metrics.LATENCY_BUCKET_BOUNDS_S`.  A bucket
    with a recorded **exemplar** gets an OpenMetrics-style suffix
    (``# {trace_id="..."} value timestamp``) linking the bucket to a
    real request's trace.  Every series carries ``# HELP``/``# TYPE``
    lines, and label values are escaped (exemplar labels are
    client-supplied ids, so quotes/backslashes/newlines must survive the
    round trip).  Uptime and both throughput readings (lifetime and
    windowed — see
    :meth:`~repro.server.metrics.MetricsRegistry.windowed_throughput`)
    are exported as gauges.
    """
    lines: List[str] = []

    def declare(metric: str, kind: str) -> None:
        lines.append(f"# HELP {metric} {_escape_help(_help_text(metric))}")
        lines.append(f"# TYPE {metric} {kind}")

    snap = registry.snapshot()
    counters: Dict[str, int] = snap["counters"]  # type: ignore[assignment]
    for name in sorted(counters):
        metric = f"{prefix}_{_sanitize(name)}_total"
        declare(metric, "counter")
        lines.append(f"{metric} {counters[name]}")
    from repro.server.metrics import LATENCY_BUCKET_BOUNDS_S  # lazy: obs < server

    histograms: Dict[str, Dict[str, object]] = snap["histograms"]  # type: ignore[assignment]
    for name in sorted(histograms):
        state = histograms[name]
        count = int(state["count"])  # type: ignore[arg-type]
        total = float(state["sum"])  # type: ignore[arg-type]
        recent = state["recent"]  # type: ignore[assignment]
        metric = f"{prefix}_{_sanitize(name)}"
        declare(metric, "summary")
        for label, pct in _QUANTILES:
            value = _window_percentile(recent, pct)  # type: ignore[arg-type]
            lines.append(f'{metric}{{quantile="{label}"}} {_fmt(value)}')
        lines.append(f"{metric}_sum {_fmt(total)}")
        lines.append(f"{metric}_count {count}")
        declare(f"{metric}_bucket", "histogram")
        exemplars = {
            int(k): v
            for k, v in dict(state.get("exemplars", {})).items()  # type: ignore[arg-type]
        }
        cumulative = 0
        bucket_counts = list(state.get("buckets", ()))  # type: ignore[arg-type]
        for idx, bucket_count in enumerate(bucket_counts):
            cumulative += int(bucket_count)
            le = (
                _fmt(LATENCY_BUCKET_BOUNDS_S[idx])
                if idx < len(LATENCY_BUCKET_BOUNDS_S)
                else "+Inf"
            )
            sample = f'{metric}_bucket{{le="{le}"}} {cumulative}'
            row = exemplars.get(idx)
            if row is not None:
                value, label_text, wall = row
                sample += (
                    f' # {{trace_id="{escape_label_value(str(label_text))}"}}'
                    f" {_fmt(float(value))} {_fmt(float(wall))}"
                )
            lines.append(sample)
        hist_min = state["min"]
        hist_max = state["max"]
        declare(f"{metric}_min", "gauge")
        lines.append(
            f"{metric}_min {_fmt(float(hist_min) if count else 0.0)}"  # type: ignore[arg-type]
        )
        declare(f"{metric}_max", "gauge")
        lines.append(
            f"{metric}_max {_fmt(float(hist_max) if count else 0.0)}"  # type: ignore[arg-type]
        )
    declare(f"{prefix}_uptime_seconds", "gauge")
    lines.append(f"{prefix}_uptime_seconds {_fmt(registry.uptime_s)}")
    declare(f"{prefix}_throughput_rps", "gauge")
    lines.append(f"{prefix}_throughput_rps {_fmt(registry.throughput())}")
    declare(f"{prefix}_windowed_throughput_rps", "gauge")
    lines.append(
        f"{prefix}_windowed_throughput_rps {_fmt(registry.windowed_throughput())}"
    )
    return "\n".join(lines) + "\n"


def _window_percentile(recent: List[float], pct: float) -> float:
    if not recent:
        return 0.0
    import numpy as np

    return float(np.percentile(np.asarray(recent, dtype=float), pct))


def _fmt(value: float) -> str:
    return repr(float(value))


def _split_labels(name_part: str, raw: str) -> Tuple[str, str]:
    """Split ``name{labels}`` label-aware: a quoted label value may
    contain spaces, braces, and escaped quotes."""
    if "{" not in name_part:
        return name_part, ""
    name, rest = name_part.split("{", 1)
    if not rest.endswith("}"):
        raise ConfigurationError(f"bad exposition line: {raw!r}")
    return name, "{" + rest


def parse_prometheus(text: str) -> Dict[str, Dict[str, float]]:
    """Parse text-format exposition into ``{metric: {labelset: value}}``.

    The label set key is the raw ``{...}`` string (empty string for
    unlabelled samples).  ``# HELP``/``# TYPE`` comments and exemplar
    suffixes (``# {...} value ts``) are tolerated — the former skipped,
    the latter stripped — and quoted label values may contain escaped
    quotes, backslashes, newlines, and spaces.  Raises
    :class:`~repro.errors.ConfigurationError` on malformed lines, so
    exporter regressions fail loudly.
    """
    metrics: Dict[str, Dict[str, float]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        sample = _strip_exemplar(line)
        name_part, value_part = _split_sample(sample, raw)
        try:
            value = float(value_part)
        except ValueError as exc:
            raise ConfigurationError(f"bad exposition line: {raw!r}") from exc
        name, labels = _split_labels(name_part, raw)
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise ConfigurationError(f"bad metric name in line: {raw!r}")
        metrics.setdefault(name, {})[labels] = value
    return metrics


def _strip_exemplar(line: str) -> str:
    """Drop an OpenMetrics exemplar suffix (``... # {labels} v ts``).

    The ``#`` of an exemplar sits outside any quoted label value, so a
    quote-aware scan finds it even when the sample's own labels contain
    escaped ``#`` or quote characters."""
    in_quotes = False
    escaped = False
    for i, c in enumerate(line):
        if escaped:
            escaped = False
            continue
        if c == "\\":
            escaped = True
        elif c == '"':
            in_quotes = not in_quotes
        elif c == "#" and not in_quotes:
            return line[:i].rstrip()
    return line


def _split_sample(sample: str, raw: str) -> Tuple[str, str]:
    """Split ``name{labels} value`` at the value — label-value aware
    (the last space *outside quotes* separates the value)."""
    in_quotes = False
    escaped = False
    split_at = -1
    for i, c in enumerate(sample):
        if escaped:
            escaped = False
            continue
        if c == "\\":
            escaped = True
        elif c == '"':
            in_quotes = not in_quotes
        elif c == " " and not in_quotes:
            split_at = i
    if split_at < 0:
        raise ConfigurationError(f"bad exposition line: {raw!r}")
    return sample[:split_at].rstrip(), sample[split_at + 1 :]
