"""Low-overhead statistical profiler with cascade-stage attribution.

``py-spy``-style wall-clock sampling, in process: a daemon thread wakes
every ``interval_s``, grabs every thread's current frame via
``sys._current_frames()`` (one C-level call under the GIL — the profiled
threads are never interrupted), and folds each stack into a counter
keyed by the **collapsed stack** string Brendan Gregg's flamegraph tools
consume (``outer;...;inner``, one line per stack with a sample count).

What a generic sampler cannot see is *which cascade stage* a thread was
serving — the verify call sites are identical across stages.  The
profiler therefore registers a :func:`~repro.core.cascade.stage_scope`
hook: stage entry/exit maintains a ``thread-id → stage-name`` map
(plain dict writes, atomic under the GIL — the sampling thread only
reads), and each sample of a thread inside a stage is prefixed with a
synthetic ``stage:<name>`` frame.  ``stage_report()`` then answers
"where does the time go, by stage?" without any per-sample work on the
serving path: the serving overhead is one dict write on stage entry and
one delete on exit, which is why the gateway bench can gate the armed
profiler at <5% (``benchmarks/test_obs_tier.py``).

The sampler is wall-clock: a thread blocked on a lock or a pipe counts
toward the stack holding it, which is exactly what a latency
investigation wants.
"""

from __future__ import annotations

import sys
import threading
from types import FrameType, TracebackType
from typing import Dict, List, Optional, Tuple, Type

from repro.analysis import lockset
from repro.errors import ConfigurationError

__all__ = ["StackSampler", "collapse_frame"]

#: thread ident -> active cascade stage name.  Written by serving
#: threads (via _StageMark), read by the sampler thread; individual dict
#: get/set/del are atomic under the GIL so no lock is needed — a sample
#: racing a stage transition lands on one side or the other, which is
#: within a statistical profiler's error budget anyway.
_ACTIVE_STAGES: Dict[int, str] = {}


class _StageMark:
    """Context manager marking the current thread as inside a stage."""

    __slots__ = ("_name", "_ident", "_outer")

    def __init__(self, name: str):
        self._name = name
        self._ident = 0
        self._outer: Optional[str] = None

    def __enter__(self) -> "_StageMark":
        self._ident = threading.get_ident()
        self._outer = _ACTIVE_STAGES.get(self._ident)
        _ACTIVE_STAGES[self._ident] = self._name
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if self._outer is None:
            _ACTIVE_STAGES.pop(self._ident, None)
        else:
            # Nested stages (a stage calling into another's helper)
            # restore the outer attribution instead of dropping it.
            _ACTIVE_STAGES[self._ident] = self._outer


def _stage_hook(name: str) -> _StageMark:
    return _StageMark(name)


def collapse_frame(
    frame: Optional[FrameType], max_depth: int
) -> str:
    """Render one thread's stack as a collapsed-stack string
    (``outermost;...;innermost``), bounded at ``max_depth`` frames."""
    parts: List[str] = []
    while frame is not None and len(parts) < max_depth:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        parts.append(f"{module}:{code.co_name}")
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class StackSampler:
    """Periodic whole-process stack sampler.

    Usage::

        with StackSampler(interval_s=0.005) as profiler:
            serve_traffic()
        print(profiler.collapsed())      # flamegraph.pl input
        print(profiler.stage_report())   # samples per cascade stage

    ``start()`` registers the stage-attribution hook with the cascade
    (``stop()`` removes it), so per-stage numbers only exist while a
    sampler runs and an idle process pays nothing.
    """

    def __init__(self, interval_s: float = 0.005, max_depth: int = 48):
        if interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        if max_depth <= 0:
            raise ConfigurationError("max_depth must be positive")
        self.interval_s = interval_s
        self.max_depth = max_depth
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}  # guarded-by: _lock
        self._stage_samples: Dict[str, int] = {}  # guarded-by: _lock
        self._samples = 0  # guarded-by: _lock
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        lockset.register(self)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise ConfigurationError("sampler is already running")
        # Lazy import: obs must not depend on core at module level
        # (import-layering rule); the hook registry lives with the
        # cascade because that is where stages are defined.
        from repro.core.cascade import register_stage_hook

        register_stage_hook(_stage_hook)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="stack-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        from repro.core.cascade import unregister_stage_hook

        self._stop.set()
        self._thread.join(timeout=30.0)
        self._thread = None
        unregister_stage_hook(_stage_hook)

    def __enter__(self) -> "StackSampler":
        self.start()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.stop()

    # -- sampling ------------------------------------------------------
    def _run(self) -> None:
        own_ident = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self._sample_once(own_ident)

    def _sample_once(self, own_ident: int) -> None:
        frames = sys._current_frames()
        rows: List[Tuple[str, Optional[str]]] = []
        for ident, frame in frames.items():
            if ident == own_ident:
                continue
            stack = collapse_frame(frame, self.max_depth)
            if not stack:
                continue
            stage = _ACTIVE_STAGES.get(ident)
            if stage is not None:
                stack = f"stage:{stage};{stack}"
            rows.append((stack, stage))
        # Fold outside the frames loop so the (cheap) lock is held once
        # per tick, not once per thread.
        with self._lock:
            self._samples += 1
            for stack, stage in rows:
                self._counts[stack] = self._counts.get(stack, 0) + 1
                if stage is not None:
                    self._stage_samples[stage] = (
                        self._stage_samples.get(stage, 0) + 1
                    )

    # -- reporting -----------------------------------------------------
    @property
    def samples(self) -> int:
        """Sampling ticks taken so far."""
        with self._lock:
            return self._samples

    def collapsed(self) -> str:
        """Flamegraph-format output: ``stack count`` per line, sorted by
        count descending (ties alphabetical, so output is stable)."""
        with self._lock:
            counts = dict(self._counts)
        rows = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return "\n".join(f"{stack} {count}" for stack, count in rows)

    def stage_report(self) -> Dict[str, Dict[str, float]]:
        """Per-cascade-stage sample counts and share of stage samples."""
        with self._lock:
            stages = dict(self._stage_samples)
        total = sum(stages.values())
        return {
            name: {
                "samples": float(count),
                "share": count / total if total else 0.0,
            }
            for name, count in sorted(stages.items())
        }

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time state (for telemetry frames / artifacts)."""
        with self._lock:
            return {
                "samples": self._samples,
                "interval_s": self.interval_s,
                "stacks": dict(self._counts),
                "stages": dict(self._stage_samples),
            }
