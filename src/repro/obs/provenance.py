"""Decision provenance: structured evidence behind every verdict.

The cascade's ACCEPT/REJECT used to surface as a bare boolean; a
production authentication system has to answer "*why* was this request
rejected" offline, from the audit record alone.  Each
:class:`~repro.core.decision.ComponentResult` now carries a structured
``evidence`` mapping (the measured values next to the paper thresholds
they were compared against — ``Dt``, ``Mt``, ``βt``, the ASV LLR
threshold, the calibrated sound-field threshold), and this module folds
one verification's results into a :class:`DecisionRecord`:

- per-stage :class:`StageProvenance` rows, including **skip rows** for
  stages the cascade never ran (which stage's confident rejection ended
  the run, and how much modelled cost the skip saved);
- :meth:`DecisionRecord.explain` — a human-readable rationale;
- :meth:`DecisionRecord.to_dict`/:meth:`from_dict` — a JSON-stable form
  for the audit log, lossless for offline reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cascade import CascadePlan
    from repro.core.decision import ComponentResult, VerificationReport

__all__ = ["StageProvenance", "DecisionRecord"]


@dataclass(frozen=True)
class StageProvenance:
    """One stage's contribution to a decision.

    ``status`` is ``"pass"``, ``"reject"``, ``"error"`` (the stage ran
    but degraded to a scored rejection) or ``"skipped"`` (cascaded out).
    Skipped rows carry the ``skip_reason`` and the cost-model estimate of
    what the skip saved; ran rows carry the component's evidence mapping.
    """

    name: str
    status: str
    score: Optional[float] = None
    detail: str = ""
    evidence: Mapping[str, float] = field(default_factory=dict)
    skip_reason: str = ""
    cost_saved_ms: float = 0.0

    @property
    def ran(self) -> bool:
        return self.status != "skipped"

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "status": self.status,
            "score": self.score,
            "detail": self.detail,
            "evidence": dict(self.evidence),
            "skip_reason": self.skip_reason,
            "cost_saved_ms": self.cost_saved_ms,
        }

    @classmethod
    def from_dict(cls, row: Mapping[str, object]) -> "StageProvenance":
        score = row.get("score")
        return cls(
            name=str(row["name"]),
            status=str(row["status"]),
            score=None if score is None else float(score),  # type: ignore[arg-type]
            detail=str(row.get("detail", "")),
            evidence={
                str(k): float(v)  # type: ignore[arg-type]
                for k, v in dict(row.get("evidence", {})).items()  # type: ignore[arg-type]
            },
            skip_reason=str(row.get("skip_reason", "")),
            cost_saved_ms=float(row.get("cost_saved_ms", 0.0)),  # type: ignore[arg-type]
        )


def _stage_status(result: "ComponentResult") -> str:
    if result.passed:
        return "pass"
    if result.score == float("-inf"):
        return "error"
    return "reject"


@dataclass(frozen=True)
class DecisionRecord:
    """The audit-grade record of one verification decision."""

    decision: str
    claimed_speaker: Optional[str]
    mode: str
    stages: Tuple[StageProvenance, ...]
    early_exit_stage: Optional[str] = None
    request_id: str = ""
    trace_id: str = ""
    stage_latency_s: Mapping[str, float] = field(default_factory=dict)

    @property
    def accepted(self) -> bool:
        from repro.core.decision import Decision  # lazy: obs sits below core

        return self.decision == Decision.ACCEPT.value

    def stage(self, name: str) -> StageProvenance:
        for row in self.stages:
            if row.name == name:
                return row
        raise KeyError(name)

    # -- construction --------------------------------------------------
    @classmethod
    def build(
        cls,
        accepted: bool,
        components: Mapping[str, ComponentResult],
        claimed_speaker: Optional[str] = None,
        mode: str = "strict",
        skipped: Tuple[str, ...] = (),
        early_exit_stage: Optional[str] = None,
        cascade_plan: Optional["CascadePlan"] = None,
        request_id: str = "",
        trace_id: str = "",
        stage_latency_s: Optional[Mapping[str, float]] = None,
    ) -> "DecisionRecord":
        """Fold raw component results + cascade skip info into a record."""
        from repro.core.decision import Decision  # lazy: obs sits below core

        rows: List[StageProvenance] = []
        for name, result in components.items():
            rows.append(
                StageProvenance(
                    name=name,
                    status=_stage_status(result),
                    score=result.score,
                    detail=result.detail,
                    evidence=dict(result.evidence),
                )
            )
        for name in skipped:
            reason = (
                f"upstream stage {early_exit_stage!r} rejected confidently"
                if early_exit_stage
                else "upstream rejection ended the cascade"
            )
            saved = (
                cascade_plan.estimated_cost_ms((name,))
                if cascade_plan is not None
                else 0.0
            )
            rows.append(
                StageProvenance(
                    name=name,
                    status="skipped",
                    skip_reason=reason,
                    cost_saved_ms=saved,
                )
            )
        return cls(
            decision=(Decision.ACCEPT if accepted else Decision.REJECT).value,
            claimed_speaker=claimed_speaker,
            mode=mode,
            stages=tuple(rows),
            early_exit_stage=early_exit_stage,
            request_id=request_id,
            trace_id=trace_id,
            stage_latency_s=dict(stage_latency_s or {}),
        )

    @classmethod
    def from_report(
        cls,
        report: VerificationReport,
        cascade_plan: Optional["CascadePlan"] = None,
        request_id: str = "",
        trace_id: str = "",
    ) -> "DecisionRecord":
        """Build from a :class:`VerificationReport` (pipeline engines)."""
        return cls.build(
            accepted=report.accepted,
            components=report.components,
            claimed_speaker=report.claimed_speaker,
            mode=report.mode,
            skipped=report.skipped,
            early_exit_stage=report.early_exit_stage,
            cascade_plan=cascade_plan,
            request_id=request_id,
            trace_id=trace_id,
            stage_latency_s=report.stage_latency_s,
        )

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "decision": self.decision,
            "claimed_speaker": self.claimed_speaker,
            "mode": self.mode,
            "stages": [row.to_dict() for row in self.stages],
            "early_exit_stage": self.early_exit_stage,
            "request_id": self.request_id,
            "trace_id": self.trace_id,
            "stage_latency_s": dict(self.stage_latency_s),
        }

    @classmethod
    def from_dict(cls, row: Mapping[str, object]) -> "DecisionRecord":
        return cls(
            decision=str(row["decision"]),
            claimed_speaker=(
                None
                if row.get("claimed_speaker") is None
                else str(row["claimed_speaker"])
            ),
            mode=str(row.get("mode", "strict")),
            stages=tuple(
                StageProvenance.from_dict(r)
                for r in row.get("stages", [])  # type: ignore[union-attr]
            ),
            early_exit_stage=(
                None
                if row.get("early_exit_stage") is None
                else str(row["early_exit_stage"])
            ),
            request_id=str(row.get("request_id", "")),
            trace_id=str(row.get("trace_id", "")),
            stage_latency_s={
                str(k): float(v)  # type: ignore[arg-type]
                for k, v in dict(row.get("stage_latency_s", {})).items()  # type: ignore[arg-type]
            },
        )

    # -- rendering -----------------------------------------------------
    def explain(self) -> str:
        """Human-readable verdict rationale, one stage per line."""
        head = (
            f"{self.decision.upper()}"
            + (f" claim={self.claimed_speaker!r}" if self.claimed_speaker else "")
            + f" mode={self.mode}"
            + (f" request_id={self.request_id}" if self.request_id else "")
            + (f" trace={self.trace_id}" if self.trace_id else "")
        )
        lines = [head]
        for row in self.stages:
            latency = self.stage_latency_s.get(row.name)
            timing = f" [{latency * 1e3:.1f} ms]" if latency is not None else ""
            if row.status == "skipped":
                saved = (
                    f", ~{row.cost_saved_ms:.1f} ms saved"
                    if row.cost_saved_ms
                    else ""
                )
                lines.append(
                    f"  - {row.name}: SKIPPED ({row.skip_reason}{saved})"
                )
                continue
            verdict = {"pass": "PASS", "reject": "REJECT", "error": "ERROR"}[
                row.status
            ]
            evidence = ", ".join(
                f"{k}={v:.4g}" for k, v in row.evidence.items()
            )
            body = row.detail or evidence
            extra = f" ({evidence})" if row.detail and evidence else ""
            lines.append(f"  - {row.name}: {verdict}{timing} — {body}{extra}")
        if self.early_exit_stage:
            lines.append(
                f"  early exit after {self.early_exit_stage!r}: remaining "
                "stages skipped (decision already final — ACCEPT requires "
                "every stage to pass)"
            )
        return "\n".join(lines)
