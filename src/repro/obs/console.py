"""Live ops console: ``python -m repro.obs.console``.

Renders one terminal screen from a gateway telemetry scrape — merged
throughput and latency, per-stage cascade health, SLO burn-rate status,
active abuse flags, and the latest tail-sampled wide events.  The
rendering functions are pure (telemetry dict in, string out) so tests
exercise them without a terminal, and the module entry point drives a
demo gateway when asked (``--demo``), which is also what the README
runbook uses.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

__all__ = ["render_telemetry", "main"]


def _bar(ratio: float, width: int = 20) -> str:
    filled = max(0, min(width, round(ratio * width)))
    return "#" * filled + "-" * (width - filled)


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:8.2f}ms"


def render_telemetry(telemetry: Dict[str, object]) -> str:
    """One screen of ops state from a telemetry-response payload."""
    lines: List[str] = ["== repro gateway =="]
    summary = telemetry.get("summary")
    if isinstance(summary, dict):
        lines.extend(_render_summary(summary))
    slo = telemetry.get("slo")
    if isinstance(slo, dict):
        lines.extend(_render_slo(slo))
    abuse = telemetry.get("abuse")
    if isinstance(abuse, dict):
        lines.extend(_render_abuse(abuse))
    stages = telemetry.get("stages")
    if isinstance(stages, dict) and stages:
        lines.extend(_render_stages(stages))
    events = telemetry.get("events")
    if isinstance(events, dict):
        lines.extend(_render_events(events))
    return "\n".join(lines)


def _render_summary(summary: Dict[str, object]) -> List[str]:
    lines = ["-- traffic --"]
    counters = summary.get("counters", {})
    if isinstance(counters, dict):
        completed = counters.get("requests_completed", 0)
        accepted = counters.get("accepted", 0)
        rejected = counters.get("rejected", 0)
        lines.append(
            f"completed {completed}  accepted {accepted}  rejected {rejected}"
        )
    rps = summary.get("windowed_throughput_rps")
    if isinstance(rps, (int, float)):
        lines.append(f"throughput {rps:7.1f} rps (windowed)")
    hists = summary.get("histograms", {})
    if isinstance(hists, dict) and "total_s" in hists:
        stats = hists["total_s"]
        lines.append(
            "latency    p50 "
            + _fmt_ms(float(stats.get("p50", 0.0)))
            + "   p95 "
            + _fmt_ms(float(stats.get("p95", 0.0)))
        )
    shards = summary.get("shards")
    if isinstance(shards, dict):
        alive = shards.get("alive", [])
        lines.append(
            f"shards     {sum(bool(a) for a in alive)}/{len(alive)} alive, "
            f"generations {shards.get('generations')}"
        )
    return lines


def _render_slo(slo: Dict[str, object]) -> List[str]:
    lines = ["-- slo burn rates --"]
    for name in sorted(slo):
        status = slo[name]
        if not isinstance(status, dict):
            continue
        alerting = status.get("alerting", [])
        marker = "ALERT " + ",".join(alerting) if alerting else "ok"
        lines.append(f"{name:<14} objective {status.get('objective')}  {marker}")
        for row in status.get("windows", []):
            if not isinstance(row, dict):
                continue
            short = float(row.get("short_burn", 0.0))
            threshold = float(row.get("threshold", 1.0))
            lines.append(
                f"  {row.get('severity'):<7} "
                f"{int(float(row.get('short_s', 0)))//60:>4}m/"
                f"{int(float(row.get('long_s', 0)))//3600:>3}h  "
                f"burn {short:6.2f}x / {threshold:4.1f}x  "
                f"[{_bar(min(1.0, short / threshold) if threshold else 0.0)}]"
            )
    return lines


def _render_abuse(abuse: Dict[str, object]) -> List[str]:
    lines = ["-- abuse detection --"]
    flagged = abuse.get("flagged_speakers", [])
    tracked = abuse.get("tracked_speakers", 0)
    if flagged:
        lines.append(f"FLAGGED ({tracked} tracked): {', '.join(map(str, flagged))}")
        for row in abuse.get("alerts", []):
            if isinstance(row, dict):
                lines.append(
                    f"  [{row.get('kind')}] {row.get('speaker')}: "
                    f"{row.get('detail')}"
                )
    else:
        lines.append(f"clean ({tracked} speakers tracked)")
    return lines


def _render_stages(stages: Dict[str, object]) -> List[str]:
    lines = ["-- cascade stages --"]
    for name in sorted(stages):
        row = stages[name]
        if not isinstance(row, dict):
            continue
        lines.append(
            f"{name:<12} runs {int(float(row.get('runs', 0))):>6}  "
            f"skip {float(row.get('skip_rate', 0.0)):5.1%}  "
            f"p95 {_fmt_ms(float(row.get('p95_s', 0.0)))}"
        )
    return lines


def _render_events(events: Dict[str, object]) -> List[str]:
    lines = ["-- wide events (tail-sampled) --"]
    lines.append(
        f"seen {events.get('seen', 0)}  kept {events.get('kept', 0)}  "
        f"reasons {events.get('reasons', {})}"
    )
    for row in events.get("recent", []):
        if not isinstance(row, dict):
            continue
        lines.append(
            f"  {row.get('decision'):<7} {str(row.get('claimed_speaker')):<12} "
            f"{_fmt_ms(float(row.get('duration_s', 0.0)))} "
            f"[{row.get('keep_reason')}] req={row.get('request_id')}"
        )
    return lines


def _demo_telemetry() -> Dict[str, object]:
    """Build a tiny world, serve a burst, and scrape real telemetry."""
    # Lazy imports: the console sits in obs (rank 6) and may not import
    # experiments/server at module level (import-layering rule).
    import numpy as np

    from repro.attacks import ReplayAttack
    from repro.core.config import GatewayConfig
    from repro.devices import Loudspeaker, get_loudspeaker
    from repro.experiments import attack_capture, build_world, genuine_capture
    from repro.server.client import MobileClient
    from repro.server.gateway import create_gateway
    from repro.server.protocol import encode_request

    world = build_world(
        seed=7, n_users=2, enrol_repetitions=4, background_speakers=4
    )
    user = sorted(world.users)[0]
    frames = []
    for i in range(6):
        capture = genuine_capture(world, user, 0.05)
        frames.append(encode_request(capture, user, request_id=f"demo-{i}"))
    stolen = world.user(user).enrolment_waveforms[-1]
    attempt = ReplayAttack(
        Loudspeaker(get_loudspeaker("Logitech LS21"), np.zeros(3))
    ).prepare(stolen, 16000, user)
    frames.append(
        encode_request(
            attack_capture(world, attempt, 0.05), user, request_id="demo-replay"
        )
    )
    with create_gateway(world.system, GatewayConfig(request_workers=2)) as gw:
        gw.handle_many(frames)
        telemetry: Dict[str, object] = MobileClient(gw).scrape_metrics(
            ("summary", "slo", "abuse", "stages", "events")
        )
    return telemetry


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.console",
        description="Render gateway telemetry as a live ops view.",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="serve a small synthetic burst and render its telemetry",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="render a saved telemetry JSON payload instead",
    )
    args = parser.parse_args(argv)
    if args.json is not None:
        import json

        with open(args.json, "r", encoding="utf-8") as fh:
            telemetry = json.load(fh)
    elif args.demo:
        telemetry = _demo_telemetry()
    else:
        parser.error("choose --demo or --json PATH (no live attach yet)")
        return 2
    sys.stdout.write(render_telemetry(telemetry) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
