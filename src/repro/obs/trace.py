"""Request tracing: nested spans with IDs, thread-local propagation.

A :class:`Tracer` produces per-request traces — trees of timed
:class:`Span` records (gateway queue → scheduler job → cascade stage →
DSP kernel).  Spans nest automatically through a thread-local current
stack, so a verification component can open a kernel span without
knowing which request it is serving; cross-thread handoffs (the gateway
fanning a request's components out on scheduler workers) pass the parent
span explicitly.

Tracing must cost nothing when off: the shared :data:`NULL_TRACER`
singleton answers every call with reusable no-op objects and is the
default everywhere, so the serving path pays one attribute lookup and a
no-op context-manager protocol per would-be span.

Completed traces (the root span ended) are buffered on the tracer and
handed to registered listeners — see
:class:`repro.obs.exporters.TraceJsonlExporter` for the JSONL sink.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import uuid
from collections import deque
from typing import Callable, Dict, List, Optional

from repro.analysis import lockset

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "render_trace",
]

#: Random per-process prefix + atomic counter.  uuid4-per-span costs ~4us
#: each, which dominates the sub-millisecond cascade fast path; next() on
#: a shared itertools.count is atomic under the GIL and ~20x cheaper.
_ID_PREFIX = uuid.uuid4().hex[:8]
_ID_COUNTER = itertools.count(1)


def _new_id() -> str:
    return f"{_ID_PREFIX}{next(_ID_COUNTER):08x}"


def _reset_ids_after_fork() -> None:
    """Give a forked child its own id namespace.

    A forked shard inherits the parent's prefix *and* counter position,
    so without this, parent and shard would mint colliding span ids and
    cross-process parent linkage would be ambiguous.
    """
    global _ID_PREFIX, _ID_COUNTER
    _ID_PREFIX = uuid.uuid4().hex[:8]
    _ID_COUNTER = itertools.count(1)


os.register_at_fork(after_in_child=_reset_ids_after_fork)


class Span:
    """One timed operation inside a trace.

    ``start_wall`` is epoch seconds (for log correlation); durations come
    from the monotonic clock.  ``status`` is ``"ok"``, ``"error"`` or
    ``"skipped"`` (a cascade stage that never ran).
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_wall",
        "_t0",
        "duration_s",
        "attrs",
        "status",
    )

    def __init__(
        self,
        trace_id: str,
        name: str,
        parent_id: Optional[str] = None,
        attrs: Optional[Dict[str, object]] = None,
    ):
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.name = name
        self.start_wall = time.time()
        self._t0 = time.perf_counter()
        self.duration_s: Optional[float] = None
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self.status = "ok"

    def set_attr(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def set_attrs(self, mapping: Dict[str, object]) -> None:
        self.attrs.update(mapping)

    @property
    def finished(self) -> bool:
        return self.duration_s is not None

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_wall": self.start_wall,
            "duration_s": self.duration_s,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


class _SpanContext:
    """Context manager binding one span to the thread-local stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._push(self.span)
        return self.span

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: object,
    ) -> None:
        if exc_type is not None:
            self.span.status = "error"
            self.span.set_attr("error", repr(exc))
        self._tracer._finish(self.span)


class Tracer:
    """Collects spans into traces; thread-safe, bounded memory.

    ``max_completed`` bounds the buffer of finished traces awaiting
    listeners/draining, so a long-lived gateway with no exporter attached
    cannot grow without limit.
    """

    enabled = True

    def __init__(self, max_completed: int = 256):
        self._lock = threading.Lock()
        self._local = threading.local()
        #: Open traces: trace_id -> spans in start order.
        self._open: Dict[str, List[Span]] = {}  # guarded-by: _lock
        #: Root span id per open trace (its end completes the trace).
        self._roots: Dict[str, str] = {}  # guarded-by: _lock
        self._completed: "deque[List[Span]]" = deque(maxlen=max_completed)  # guarded-by: _lock
        self._listeners: List[Callable[[List[Span]], None]] = []  # guarded-by: _lock
        lockset.register(self)

    # -- propagation ---------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """The innermost span open on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _finish(self, span: Span) -> None:
        span.duration_s = time.perf_counter() - span._t0
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # cross-thread finish: the span never joined this stack
            try:
                stack.remove(span)
            except ValueError:
                pass
        completed: Optional[List[Span]] = None
        listeners: List[Callable[[List[Span]], None]] = []
        with self._lock:
            if self._roots.get(span.trace_id) == span.span_id:
                completed = self._open.pop(span.trace_id, None)
                del self._roots[span.trace_id]
                if completed is not None:
                    self._completed.append(completed)
                    listeners = list(self._listeners)
        if completed is not None:
            # Listeners run outside the lock: they are user code and may
            # re-enter the tracer (e.g. open an export span).
            for listener in listeners:
                listener(completed)

    # -- span creation -------------------------------------------------
    def span(
        self,
        name: str,
        parent: Optional[Span] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> _SpanContext:
        """Open a span as a context manager.

        Without an explicit ``parent`` the span nests under the thread's
        current span; with neither it becomes the root of a new trace.
        """
        if parent is None:
            parent = self.current()
        if parent is None:
            span = Span(_new_id(), name, None, attrs)
            with self._lock:
                self._open[span.trace_id] = [span]
                self._roots[span.trace_id] = span.span_id
        else:
            span = Span(parent.trace_id, name, parent.span_id, attrs)
            with self._lock:
                trace = self._open.get(parent.trace_id)
                if trace is not None:
                    trace.append(span)
        return _SpanContext(self, span)

    def begin(
        self, name: str, attrs: Optional[Dict[str, object]] = None
    ) -> Span:
        """Open a root span *without* binding it to this thread.

        For requests whose lifecycle crosses threads (gateway submit →
        worker): the caller keeps the span and ends it with :meth:`end`.
        """
        span = Span(_new_id(), name, None, attrs)
        with self._lock:
            self._open[span.trace_id] = [span]
            self._roots[span.trace_id] = span.span_id
        return span

    def child(
        self,
        parent: Span,
        name: str,
        attrs: Optional[Dict[str, object]] = None,
    ) -> Span:
        """Open an explicit-parent span without thread binding."""
        span = Span(parent.trace_id, name, parent.span_id, attrs)
        with self._lock:
            trace = self._open.get(parent.trace_id)
            if trace is not None:
                trace.append(span)
        return span

    def end(self, span: Span, status: Optional[str] = None) -> None:
        """Finish a span opened with :meth:`begin`/:meth:`child`."""
        if status is not None:
            span.status = status
        self._finish(span)

    # -- cross-process linkage -----------------------------------------
    def remote_child(
        self,
        trace_id: str,
        parent_span_id: str,
        name: str,
        attrs: Optional[Dict[str, object]] = None,
    ) -> Span:
        """Open a span whose parent lives in *another process*.

        A shard worker receives ``(trace_id, parent_span_id)`` with each
        request and hangs its local spans under the gateway's request
        span.  The remote root never ends locally, so the trace never
        auto-completes here — the shard pops its fragment with
        :meth:`take_trace` and ships the dicts back for
        :meth:`ingest` on the parent side.
        """
        span = Span(trace_id, name, parent_span_id, attrs)
        with self._lock:
            self._open.setdefault(trace_id, []).append(span)
        return span

    def take_trace(self, trace_id: str) -> List[Span]:
        """Pop the locally-collected spans of a remotely-rooted trace."""
        with self._lock:
            if self._roots.get(trace_id) is not None:
                return []  # locally rooted: completes via _finish
            return self._open.pop(trace_id, [])

    def ingest(self, rows: List[Dict[str, object]]) -> None:
        """Re-home span dicts produced in another process.

        Spans whose trace is still open here join it (and complete with
        it); spans of already-completed/unknown traces are buffered as
        their own completed fragment so they are never silently lost.
        """
        if not rows:
            return
        spans = spans_from_dicts(rows)
        orphans: List[Span] = []
        with self._lock:
            for span in spans:
                trace = self._open.get(span.trace_id)
                if trace is not None:
                    trace.append(span)
                else:
                    orphans.append(span)
            if orphans:
                self._completed.append(orphans)

    def event(
        self,
        name: str,
        parent: Optional[Span] = None,
        attrs: Optional[Dict[str, object]] = None,
        status: str = "ok",
    ) -> Span:
        """Record an instantaneous (zero-duration) span — e.g. a cascade
        stage that was skipped, so the trace tree still shows it."""
        with self.span(name, parent=parent, attrs=attrs) as span:
            span.status = status
        return span

    # -- completed traces ----------------------------------------------
    def add_listener(self, listener: Callable[[List[Span]], None]) -> None:
        with self._lock:
            self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[List[Span]], None]) -> None:
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    def drain_completed(self) -> List[List[Span]]:
        """Pop every buffered completed trace (oldest first)."""
        with self._lock:
            traces = list(self._completed)
            self._completed.clear()
        return traces


class _NullSpan:
    """Shared inert span: accepts attributes, reports empty IDs."""

    __slots__ = ()
    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""
    status = "ok"
    duration_s = 0.0
    attrs: Dict[str, object] = {}
    finished = True

    def set_attr(self, key: str, value: object) -> None:
        pass

    def set_attrs(self, mapping: Dict[str, object]) -> None:
        pass

    def to_dict(self) -> Dict[str, object]:
        return {}


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_CTX = _NullSpanContext()


class NullTracer(Tracer):
    """The disabled tracer: every operation is a reusable no-op.

    This is the default on every traced object, so the serving path pays
    (nearly) nothing until someone attaches a real tracer.
    """

    enabled = False

    def __init__(self) -> None:  # no buffers, no lock
        pass

    def span(  # type: ignore[override]
        self,
        name: str,
        parent: Optional[Span] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> "_NullSpanContext":
        return _NULL_CTX

    def begin(  # type: ignore[override]
        self, name: str, attrs: Optional[Dict[str, object]] = None
    ) -> "_NullSpan":
        return _NULL_SPAN

    def child(  # type: ignore[override]
        self,
        parent: Span,
        name: str,
        attrs: Optional[Dict[str, object]] = None,
    ) -> "_NullSpan":
        return _NULL_SPAN

    def end(self, span: Span, status: Optional[str] = None) -> None:
        pass

    def event(  # type: ignore[override]
        self,
        name: str,
        parent: Optional[Span] = None,
        attrs: Optional[Dict[str, object]] = None,
        status: str = "ok",
    ) -> "_NullSpan":
        return _NULL_SPAN

    def remote_child(  # type: ignore[override]
        self,
        trace_id: str,
        parent_span_id: str,
        name: str,
        attrs: Optional[Dict[str, object]] = None,
    ) -> "_NullSpan":
        return _NULL_SPAN

    def take_trace(self, trace_id: str) -> List[Span]:
        return []

    def ingest(self, rows: List[Dict[str, object]]) -> None:
        pass

    def current(self) -> Optional[Span]:
        return None

    def add_listener(self, listener: Callable[[List[Span]], None]) -> None:
        pass

    def remove_listener(self, listener: Callable[[List[Span]], None]) -> None:
        pass

    def drain_completed(self) -> List[List[Span]]:
        return []


#: The process-wide disabled tracer (safe to share: it holds no state).
NULL_TRACER = NullTracer()


def render_trace(spans: List[Span]) -> str:
    """ASCII tree of one trace: nesting, durations, status, key attrs.

    Accepts the span list of a completed trace (or dictionaries from a
    JSONL trace file via :func:`spans_from_dicts`).
    """
    by_parent: Dict[Optional[str], List[Span]] = {}
    for span in spans:
        by_parent.setdefault(span.parent_id, []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda s: s.start_wall)
    lines: List[str] = []

    def walk(span: Span, depth: int) -> None:
        duration = span.duration_s if span.duration_s is not None else 0.0
        flag = "" if span.status == "ok" else f" [{span.status}]"
        note = ""
        if span.status == "skipped" and "skip_reason" in span.attrs:
            note = f"  ({span.attrs['skip_reason']})"
        lines.append(
            f"{'  ' * depth}{span.name:<28s} {duration * 1e3:9.3f} ms{flag}{note}"
        )
        for child in by_parent.get(span.span_id, []):
            walk(child, depth + 1)

    for root in by_parent.get(None, []):
        walk(root, 0)
    return "\n".join(lines)


def spans_from_dicts(rows: List[Dict[str, object]]) -> List[Span]:
    """Rehydrate spans from their :meth:`Span.to_dict` form (JSONL rows)."""
    spans: List[Span] = []
    for row in rows:
        span = Span.__new__(Span)
        span.trace_id = str(row["trace_id"])
        span.span_id = str(row["span_id"])
        parent = row.get("parent_id")
        span.parent_id = None if parent is None else str(parent)
        span.name = str(row["name"])
        span.start_wall = float(row["start_wall"])  # type: ignore[arg-type]
        span._t0 = 0.0
        duration = row.get("duration_s")
        span.duration_s = None if duration is None else float(duration)  # type: ignore[arg-type]
        span.status = str(row.get("status", "ok"))
        span.attrs = dict(row.get("attrs", {}))  # type: ignore[arg-type]
        spans.append(span)
    return spans
