"""Observability: request tracing, decision provenance, telemetry export.

The serving path's verdicts must be auditable offline — which stage
fired, on what evidence, against which paper threshold (``Dt``, ``Mt``,
``βt``, the ASV LLR threshold) — and its score distributions monitored
online.  This subpackage provides the four pieces the ISSUE-4 tentpole
names:

- :mod:`repro.obs.trace` — :class:`Tracer`/:class:`Span` with
  thread-local nesting and a zero-cost :data:`NULL_TRACER` default;
- :mod:`repro.obs.provenance` — structured per-stage evidence folded
  into :class:`DecisionRecord` with a human-readable ``explain()``;
- :mod:`repro.obs.exporters` — rotating JSONL trace/audit sinks and the
  Prometheus text exposition of a metrics registry;
- :mod:`repro.obs.drift` — rolling + P²-sketched per-stage score
  statistics with threshold-crossing :class:`DriftAlert`\\ s.
"""

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    render_trace,
    spans_from_dicts,
)
from repro.obs.provenance import DecisionRecord, StageProvenance
from repro.obs.exporters import (
    AuditJsonlExporter,
    JsonlRotatingWriter,
    TraceJsonlExporter,
    parse_prometheus,
    prometheus_exposition,
    read_jsonl,
)
from repro.obs.drift import DriftAlert, DriftMonitor, DriftRegistry, P2Quantile

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "render_trace",
    "spans_from_dicts",
    "DecisionRecord",
    "StageProvenance",
    "AuditJsonlExporter",
    "JsonlRotatingWriter",
    "TraceJsonlExporter",
    "parse_prometheus",
    "prometheus_exposition",
    "read_jsonl",
    "DriftAlert",
    "DriftMonitor",
    "DriftRegistry",
    "P2Quantile",
]
