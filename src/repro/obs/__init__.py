"""Observability: request tracing, decision provenance, telemetry export.

The serving path's verdicts must be auditable offline — which stage
fired, on what evidence, against which paper threshold (``Dt``, ``Mt``,
``βt``, the ASV LLR threshold) — and its score distributions monitored
online.  This subpackage provides the four pieces the ISSUE-4 tentpole
names:

- :mod:`repro.obs.trace` — :class:`Tracer`/:class:`Span` with
  thread-local nesting and a zero-cost :data:`NULL_TRACER` default;
- :mod:`repro.obs.provenance` — structured per-stage evidence folded
  into :class:`DecisionRecord` with a human-readable ``explain()``;
- :mod:`repro.obs.exporters` — rotating JSONL trace/audit sinks and the
  Prometheus text exposition of a metrics registry;
- :mod:`repro.obs.drift` — rolling + P²-sketched per-stage score
  statistics with threshold-crossing :class:`DriftAlert`\\ s.

The ISSUE-9 operational tier adds four more:

- :mod:`repro.obs.profiler` — statistical thread-stack sampling with
  per-cascade-stage attribution and collapsed-stack output;
- :mod:`repro.obs.slo` — declarative objectives with multi-window
  burn-rate alerting over the metrics registry;
- :mod:`repro.obs.events` — tail-sampled per-request wide events;
- :mod:`repro.obs.abuse` — per-speaker query-rate and score-trend
  probe detection (red-teamed against :mod:`repro.attacks.adversarial`);
- :mod:`repro.obs.console` — the ``python -m repro.obs.console`` ops
  view over gateway telemetry.
"""

from repro.obs.abuse import AbuseAlert, AbuseDetector
from repro.obs.events import WideEvent, WideEventRecorder
from repro.obs.profiler import StackSampler
from repro.obs.slo import (
    DEFAULT_WINDOWS,
    BurnWindow,
    SLOEngine,
    SLObjective,
    default_objectives,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    render_trace,
    spans_from_dicts,
)
from repro.obs.provenance import DecisionRecord, StageProvenance
from repro.obs.exporters import (
    AuditJsonlExporter,
    JsonlRotatingWriter,
    TraceJsonlExporter,
    escape_label_value,
    parse_prometheus,
    prometheus_exposition,
    read_jsonl,
    unescape_label_value,
)
from repro.obs.drift import DriftAlert, DriftMonitor, DriftRegistry, P2Quantile

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "render_trace",
    "spans_from_dicts",
    "DecisionRecord",
    "StageProvenance",
    "AuditJsonlExporter",
    "JsonlRotatingWriter",
    "TraceJsonlExporter",
    "parse_prometheus",
    "prometheus_exposition",
    "read_jsonl",
    "DriftAlert",
    "DriftMonitor",
    "DriftRegistry",
    "P2Quantile",
    "AbuseAlert",
    "AbuseDetector",
    "WideEvent",
    "WideEventRecorder",
    "StackSampler",
    "BurnWindow",
    "SLOEngine",
    "SLObjective",
    "DEFAULT_WINDOWS",
    "default_objectives",
    "escape_label_value",
    "unescape_label_value",
]
