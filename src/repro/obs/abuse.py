"""Operational detection of verification-oracle abuse.

PR 8's gradient-free score-descent attacker
(:mod:`repro.attacks.adversarial`) needs hundreds of oracle queries per
decision flip: it hammers one claimed speaker and nudges the identity
score monotonically toward the acceptance threshold.  Per-request
defenses cannot see that pattern — each individual probe is just one
more rejection — so this module watches the *stream*:

- **query-rate detector** — one claimed speaker receiving more than
  ``rate_threshold`` verification attempts inside ``rate_window_s`` is
  flagged; legitimate users re-try a handful of times, an NES optimizer
  needs ``population x iterations`` probes.
- **score-trend detector** — over the speaker's recent identity scores
  (a ``trajectory``-deep window; the attacker's probe noise swamps any
  short-window trend, so the window must be long enough for the climb
  to clear the noise), compare the newer half against the older half.
  A genuine user's scores are i.i.d. around their operating point
  (lagged-pair concordance ~0.5, median shift ~0); a hill-climbing
  attacker drifts upward.  Flag when at least ``trend_concordance`` of
  the lagged pairs increased AND the median shift clears an *adaptive*
  threshold: ``max(trend_min_shift, trend_z x SE)`` where ``SE`` is the
  standard error of the half-window median estimated from the stream's
  own spread — so a noisy genuine stream raises its own bar and the
  detector is scale-free in the LLR units.  The check repeats on every
  observation (a sliding window, ~hundreds of looks per stream), which
  is why ``trend_z`` defaults to a paranoid 7: red-teamed against the
  real attacker it still fires by ~query 170, while 400-observation
  genuine streams at the measured LLR noise produce zero flags.

Alerts are **sticky** (an attacker that backs off after tripping the
detector stays flagged) and never change decisions — the serving path
keeps its bitwise cross-mode equivalence; flags surface through
telemetry, the ops console, and the wide-event alert probe.
``tests/test_obs_abuse.py`` red-teams the thresholds against the real
attacker and pins zero false positives on the golden-decision matrix.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.analysis import lockset
from repro.errors import ConfigurationError

__all__ = ["AbuseAlert", "AbuseDetector"]


@dataclass(frozen=True)
class AbuseAlert:
    """One sticky per-speaker flag."""

    speaker: str
    kind: str  # "query_rate" | "score_trend"
    detail: str
    at: float  # monotonic-domain timestamp of the triggering observation

    def __str__(self) -> str:
        return f"[abuse:{self.kind}] speaker {self.speaker!r}: {self.detail}"


class AbuseDetector:
    """Streaming per-speaker probe detection over verification attempts."""

    def __init__(
        self,
        rate_window_s: float = 60.0,  # repro: ignore[paper-constant]: one-minute abuse window, unrelated to the uT/s magnetometer threshold
        rate_threshold: int = 45,
        trajectory: int = 256,
        min_trajectory: int = 128,
        trend_concordance: float = 0.65,
        trend_min_shift: float = 0.05,
        trend_z: float = 7.0,
        max_speakers: int = 4096,
    ):
        if rate_window_s <= 0:
            raise ConfigurationError("rate_window_s must be positive")
        if rate_threshold < 2:
            raise ConfigurationError("rate_threshold must be >= 2")
        if min_trajectory < 4 or min_trajectory > trajectory:
            raise ConfigurationError(
                "need 4 <= min_trajectory <= trajectory"
            )
        if not 0.5 < trend_concordance <= 1.0:
            raise ConfigurationError(
                "trend_concordance must be in (0.5, 1.0]"
            )
        if trend_min_shift < 0:
            raise ConfigurationError("trend_min_shift must be >= 0")
        if trend_z <= 0:
            raise ConfigurationError("trend_z must be positive")
        if max_speakers < 1:
            raise ConfigurationError("max_speakers must be >= 1")
        self.rate_window_s = rate_window_s
        self.rate_threshold = rate_threshold
        self.trajectory = trajectory
        self.min_trajectory = min_trajectory
        self.trend_concordance = trend_concordance
        self.trend_min_shift = trend_min_shift
        self.trend_z = trend_z
        self.max_speakers = max_speakers
        self._lock = threading.Lock()
        self._times: Dict[str, Deque[float]] = {}  # guarded-by: _lock
        self._scores: Dict[str, Deque[float]] = {}  # guarded-by: _lock
        self._alerts: Dict[Tuple[str, str], AbuseAlert] = {}  # guarded-by: _lock
        #: Lock-free fast-path flag for the wide-event alert probe: a
        #: bool read is atomic, and staleness of one request is fine.
        self._flagged = False
        lockset.register(self)

    # -- ingestion -----------------------------------------------------
    def observe(
        self,
        speaker: Optional[str],
        score: Optional[float] = None,
        at: Optional[float] = None,
    ) -> Optional[AbuseAlert]:
        """Record one verification attempt for ``speaker``.

        ``score`` is the identity (ASV) score when that stage ran —
        ``None`` (e.g. an early-exited cascade request) still counts
        toward the query rate.  ``at`` pins the timestamp
        (monotonic-clock domain) for tests/replays.  Returns the alert
        this observation *newly* raised, if any.
        """
        if speaker is None:
            return None
        now = time.monotonic() if at is None else float(at)
        with self._lock:
            self._evict_locked(speaker)
            times = self._times.get(speaker)
            if times is None:
                times = self._times[speaker] = deque(
                    maxlen=max(self.rate_threshold * 2, 64)
                )
            times.append(now)
            if score is not None and math.isfinite(score):
                scores = self._scores.get(speaker)
                if scores is None:
                    scores = self._scores[speaker] = deque(
                        maxlen=self.trajectory
                    )
                scores.append(float(score))
            alert = self._check_rate_locked(speaker, now)
            if alert is None:
                alert = self._check_trend_locked(speaker, now)
            if alert is not None:
                key = (alert.speaker, alert.kind)
                if key in self._alerts:
                    return None  # already sticky; not newly raised
                self._alerts[key] = alert
                self._flagged = True
            return alert

    def _evict_locked(self, incoming: str) -> None:
        """Bound per-speaker state: beyond ``max_speakers`` tracked,
        drop the speaker with the oldest last-seen time (never one that
        is already flagged)."""
        if incoming in self._times or len(self._times) < self.max_speakers:
            return
        flagged = {sp for sp, _ in self._alerts}
        candidates = [
            (times[-1], sp)
            for sp, times in self._times.items()
            if sp not in flagged and times
        ]
        if not candidates:
            return
        _, victim = min(candidates)
        self._times.pop(victim, None)
        self._scores.pop(victim, None)

    # -- detectors -----------------------------------------------------
    def _check_rate_locked(
        self, speaker: str, now: float
    ) -> Optional[AbuseAlert]:
        times = self._times[speaker]
        cutoff = now - self.rate_window_s
        recent = 0
        for ts in reversed(times):
            if ts < cutoff:
                break
            recent += 1
        if recent < self.rate_threshold:
            return None
        return AbuseAlert(
            speaker=speaker,
            kind="query_rate",
            detail=(
                f"{recent} verification attempts in "
                f"{self.rate_window_s:.0f}s "
                f"(threshold {self.rate_threshold})"
            ),
            at=now,
        )

    def _check_trend_locked(
        self, speaker: str, now: float
    ) -> Optional[AbuseAlert]:
        scores = self._scores.get(speaker)
        if scores is None or len(scores) < self.min_trajectory:
            return None
        rows = list(scores)
        half = len(rows) // 2
        older, newer = rows[:half], rows[-half:]
        up = sum(1 for a, b in zip(older, newer) if b > a)
        concordance = up / half
        if concordance < self.trend_concordance:
            return None
        shift = _median(newer) - _median(older)
        # Adaptive bar: the standard error of a median is ~1.25 sigma /
        # sqrt(n), estimated from the older half's own spread, so the
        # required shift scales with how noisy this speaker's genuine
        # scores are (scale-free in LLR units).
        se = 1.25 * _std(older) / math.sqrt(half)
        if shift < max(self.trend_min_shift, self.trend_z * se):
            return None
        return AbuseAlert(
            speaker=speaker,
            kind="score_trend",
            detail=(
                f"identity score climbing: {concordance:.0%} of lagged "
                f"pairs increased, median shift +{shift:.3f} over "
                f"{len(rows)} probes"
            ),
            at=now,
        )

    # -- reporting -----------------------------------------------------
    @property
    def has_alerts(self) -> bool:
        """Lock-free probe for the wide-event tail sampler."""
        return self._flagged

    def alerts(self) -> List[AbuseAlert]:
        with self._lock:
            return sorted(
                self._alerts.values(), key=lambda a: (a.at, a.speaker)
            )

    def flagged_speakers(self) -> List[str]:
        with self._lock:
            return sorted({sp for sp, _ in self._alerts})

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "tracked_speakers": len(self._times),
                "flagged_speakers": sorted({sp for sp, _ in self._alerts}),
                "alerts": [
                    {
                        "speaker": a.speaker,
                        "kind": a.kind,
                        "detail": a.detail,
                        "at": a.at,
                    }
                    for a in sorted(
                        self._alerts.values(),
                        key=lambda a: (a.at, a.speaker),
                    )
                ],
                "config": {
                    "rate_window_s": self.rate_window_s,
                    "rate_threshold": self.rate_threshold,
                    "trajectory": self.trajectory,
                    "min_trajectory": self.min_trajectory,
                    "trend_concordance": self.trend_concordance,
                    "trend_min_shift": self.trend_min_shift,
                    "trend_z": self.trend_z,
                },
            }


def _median(values: List[float]) -> float:
    rows = sorted(values)
    n = len(rows)
    mid = n // 2
    if n % 2:
        return rows[mid]
    return 0.5 * (rows[mid - 1] + rows[mid])


def _std(values: List[float]) -> float:
    n = len(values)
    if n < 2:
        return 0.0
    mean = sum(values) / n
    return math.sqrt(sum((v - mean) ** 2 for v in values) / n)
