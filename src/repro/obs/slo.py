"""Declarative service-level objectives with multi-window burn-rate alerts.

An :class:`SLObjective` names an objective (e.g. "99.9% of requests
avoid fail-closed errors") in terms of **bad-event** and **total-event**
counters that already live in the serving
:class:`~repro.server.metrics.MetricsRegistry`.  The :class:`SLOEngine`
evaluates each objective with the multi-window, multi-burn-rate policy
from the Google SRE workbook: an alert needs a *short* window (catches
the spike now) AND a *long* window (proves it is not a blip) both
burning error budget faster than the window's threshold.

    burn_rate(W) = (bad_W / total_W) / (1 - objective)

i.e. 1.0 means exactly spending the error budget; the fast **page**
pair (5 min + 1 h at 14.4x) would exhaust a 30-day budget in ~2 days,
the slow **ticket** pair (6 h + 3 d at 1.0x) flags steady leaks.

The engine is a *pure function* of a registry's counter event rings
(:meth:`~repro.server.metrics.MetricsRegistry.windowed_count`), so
evaluating the merged N-shard registry gives bit-identical alerts to a
single registry that saw every event — the parity
``tests/test_obs_slo.py`` pins as an extension of the shard-equivalence
harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.metrics import MetricsRegistry

__all__ = [
    "BurnWindow",
    "SLObjective",
    "SLOEngine",
    "DEFAULT_WINDOWS",
    "default_objectives",
]


@dataclass(frozen=True)
class BurnWindow:
    """One (short, long) window pair with its burn-rate threshold."""

    short_s: float
    long_s: float
    threshold: float
    severity: str  # "page" or "ticket"

    def __post_init__(self) -> None:
        if self.short_s <= 0 or self.long_s <= 0:
            raise ConfigurationError("window lengths must be positive")
        if self.short_s > self.long_s:
            raise ConfigurationError("short window must not exceed long")
        if self.threshold <= 0:
            raise ConfigurationError("threshold must be positive")


#: The SRE-workbook recommendation for a 30-day error budget: page on
#: fast burn (5m + 1h both >= 14.4x), ticket on slow burn (6h + 3d both
#: >= 1.0x).
DEFAULT_WINDOWS: Tuple[BurnWindow, ...] = (
    BurnWindow(short_s=300.0, long_s=3600.0, threshold=14.4, severity="page"),
    BurnWindow(
        short_s=21600.0, long_s=259200.0, threshold=1.0, severity="ticket"
    ),
)


@dataclass(frozen=True)
class SLObjective:
    """One objective over existing registry counters.

    ``bad_counters`` and ``total_counters`` are summed: an objective can
    pool several failure modes (e.g. fail-closed + shard errors) against
    several traffic sources without the serving path maintaining a
    dedicated pair of counters per objective.
    """

    name: str
    objective: float  # e.g. 0.999 — target success ratio
    bad_counters: Tuple[str, ...]
    total_counters: Tuple[str, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ConfigurationError("objective must be in (0, 1)")
        if not self.bad_counters or not self.total_counters:
            raise ConfigurationError(
                "objectives need bad and total counter names"
            )


def default_objectives(
    latency_objective: float = 0.95,
    availability_objective: float = 0.999,
    error_objective: float = 0.999,
) -> Tuple[SLObjective, ...]:
    """The gateway's stock objectives, over counters it already keeps.

    - **latency** — share of completed requests under the configured
      threshold (``GatewayConfig.slo_latency_threshold_s``; the serving
      paths bump ``slo_latency_good``/``slo_latency_bad`` as each
      request finishes).
    - **availability** — requests that neither failed closed nor died
      to a shard error.
    - **errors** — submissions that avoided protocol / identity / shard
      errors.
    """
    return (
        SLObjective(
            name="latency",
            objective=latency_objective,
            bad_counters=("slo_latency_bad",),
            total_counters=("slo_latency_good", "slo_latency_bad"),
            description="requests completing under the latency threshold",
        ),
        SLObjective(
            name="availability",
            objective=availability_objective,
            bad_counters=("requests_failed_closed", "shard_errors"),
            total_counters=(
                "requests_completed",
                "requests_failed_closed",
                "shard_errors",
            ),
            description="requests answered without failing closed",
        ),
        SLObjective(
            name="errors",
            objective=error_objective,
            bad_counters=("protocol_errors", "identity_errors", "shard_errors"),
            total_counters=("requests_submitted",),
            description="submissions without protocol/component errors",
        ),
    )


@dataclass
class SLOEngine:
    """Evaluate objectives against a registry's counter event rings."""

    objectives: Tuple[SLObjective, ...] = field(
        default_factory=default_objectives
    )
    windows: Tuple[BurnWindow, ...] = DEFAULT_WINDOWS

    def evaluate(
        self, registry: "MetricsRegistry", now: Optional[float] = None
    ) -> Dict[str, Dict[str, object]]:
        """Burn rates + alert status per objective.

        ``now`` pins the evaluation instant (monotonic-clock domain) so
        single-registry vs merged-shard parity can be asserted exactly;
        live callers leave it ``None``.
        """
        report: Dict[str, Dict[str, object]] = {}
        for obj in self.objectives:
            window_rows: List[Dict[str, object]] = []
            alerting: List[str] = []
            for window in self.windows:
                short = self._burn(registry, obj, window.short_s, now)
                long = self._burn(registry, obj, window.long_s, now)
                fired = short >= window.threshold and long >= window.threshold
                if fired:
                    alerting.append(window.severity)
                window_rows.append(
                    {
                        "severity": window.severity,
                        "short_s": window.short_s,
                        "long_s": window.long_s,
                        "threshold": window.threshold,
                        "short_burn": short,
                        "long_burn": long,
                        "alerting": fired,
                    }
                )
            report[obj.name] = {
                "objective": obj.objective,
                "description": obj.description,
                "windows": window_rows,
                "alerting": alerting,
            }
        return report

    def alerts(
        self, registry: "MetricsRegistry", now: Optional[float] = None
    ) -> List[str]:
        """Flat ``"severity objective burn"`` strings for display."""
        out: List[str] = []
        for name, status in self.evaluate(registry, now=now).items():
            for row in status["windows"]:  # type: ignore[union-attr]
                if row["alerting"]:
                    out.append(
                        f"{row['severity']}: {name} burning "
                        f"{row['short_burn']:.1f}x over "
                        f"{int(row['short_s'])}s "
                        f"(threshold {row['threshold']}x)"
                    )
        return out

    def _burn(
        self,
        registry: "MetricsRegistry",
        obj: SLObjective,
        window_s: float,
        now: Optional[float],
    ) -> float:
        bad = sum(
            registry.windowed_count(name, window_s, now=now)
            for name in obj.bad_counters
        )
        total = sum(
            registry.windowed_count(name, window_s, now=now)
            for name in obj.total_counters
        )
        if total <= 0:
            return 0.0
        error_ratio = bad / total
        budget = 1.0 - obj.objective
        return error_ratio / budget
