"""Smartphone sensor models.

Each sensor model converts ground-truth physical quantities (from
:mod:`repro.world`) into realistic time series: sampled at the sensor's
rate, expressed in the phone's body frame, corrupted by bias/noise, and
quantised to the part's resolution.

The magnetometer model is calibrated to the AK8975 part the paper names
(0.3 µT/LSB sensitivity, ±1200 µT range).
"""

from repro.sensors.base import SensorSeries
from repro.sensors.magnetometer import Magnetometer
from repro.sensors.imu import Accelerometer, Gyroscope, GRAVITY
from repro.sensors.microphone import Microphone
from repro.sensors.fusion import OrientationFilter, heading_from_series

__all__ = [
    "SensorSeries",
    "Magnetometer",
    "Accelerometer",
    "Gyroscope",
    "GRAVITY",
    "Microphone",
    "OrientationFilter",
    "heading_from_series",
]
