"""Common sensor plumbing: sampled series and shared corruption steps."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SensorSeries:
    """A uniformly sampled multi-axis sensor stream.

    ``values`` has shape ``(n, k)`` — one row per sample; ``times`` has
    shape ``(n,)`` in seconds.  The capture pipeline passes these between
    the simulator and the verification components.
    """

    times: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=float)
        values = np.asarray(self.values, dtype=float)
        if times.ndim != 1:
            raise ConfigurationError("times must be 1-D")
        if values.ndim != 2 or values.shape[0] != times.size:
            raise ConfigurationError(
                f"values must be (n, k) with n == len(times); got {values.shape}"
            )
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return self.times.size

    @property
    def sample_rate(self) -> float:
        """Mean sampling rate in Hz."""
        if len(self) < 2:
            raise ConfigurationError("need two samples to infer a rate")
        return float((len(self) - 1) / (self.times[-1] - self.times[0]))

    def magnitudes(self) -> np.ndarray:
        """Per-sample Euclidean norm across axes."""
        return np.linalg.norm(self.values, axis=1)

    def rates(self) -> np.ndarray:
        """Per-sample time derivative of the magnitude (units/s)."""
        return np.gradient(self.magnitudes(), self.times)

    def axis(self, index: int) -> np.ndarray:
        """One axis as a 1-D array."""
        return self.values[:, index]


def sample_times(duration_s: float, sample_rate: float, start: float = 0.0) -> np.ndarray:
    """Uniform timestamps covering ``duration_s`` at ``sample_rate``."""
    if duration_s <= 0 or sample_rate <= 0:
        raise ConfigurationError("duration and sample_rate must be positive")
    n = max(2, int(round(duration_s * sample_rate)))
    return start + np.arange(n) / sample_rate


def quantize(values: np.ndarray, step: float) -> np.ndarray:
    """Round to the sensor's LSB step (no-op when ``step`` is 0)."""
    if step < 0:
        raise ConfigurationError("quantisation step must be non-negative")
    if step == 0:
        return np.asarray(values, dtype=float)
    return np.round(np.asarray(values, dtype=float) / step) * step
