"""Orientation fusion: gyroscope + accelerometer + magnetometer.

The paper jointly uses all three sensors to obtain the phone's direction
change Δω during the sweep (citing Zee [31] and the walking-direction work
[37]), because the magnetometer alone is unreliable indoors.  We implement
a complementary filter over the heading (rotation about the world vertical):
the gyroscope integrates short-term rotation, while the magnetometer pulls
the estimate back toward the absolute magnetic heading at a low gain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sensors.base import SensorSeries


def _wrap_angle(a: np.ndarray) -> np.ndarray:
    """Wrap angles to (−π, π]."""
    return np.mod(np.asarray(a) + np.pi, 2.0 * np.pi) - np.pi


@dataclass
class OrientationFilter:
    """Complementary heading filter.

    ``magnetometer_gain`` controls how strongly the absolute magnetic
    heading corrects gyro integration per second; 0 disables the correction
    (pure gyro), 1 would slave the estimate to the (noisy) compass.
    """

    magnetometer_gain: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.magnetometer_gain <= 1.0:
            raise ConfigurationError("magnetometer_gain must be in [0, 1]")

    def estimate_heading(
        self,
        gyroscope: SensorSeries,
        magnetometer: SensorSeries,
        initial_heading: float = 0.0,
    ) -> np.ndarray:
        """Heading estimate (rad) at each gyroscope timestamp.

        The use-case grip (screen toward the face, phone upright) puts the
        world-vertical axis on the phone's body ``y``, so yaw rate appears
        on the gyro's y channel and the horizontal field on the body
        ``x``/``z`` magnetometer channels.
        """
        mag_heading = heading_from_series(magnetometer)
        mag_times = magnetometer.times
        # The unwrap and the interpolation are loop-invariant per timestamp:
        # hoisting them out of the recurrence is bitwise-identical (np.interp
        # evaluates each query point independently) and turns an accidental
        # O(n_gyro * n_mag) inner recompute into one vectorized pass.
        mag_interp = np.interp(
            gyroscope.times, mag_times, np.unwrap(mag_heading)
        )
        gyro_times = gyroscope.times.tolist()
        yaw_rate = gyroscope.values[:, 1].tolist()
        mag_list = mag_interp.tolist()
        gain = self.magnetometer_gain
        pi = np.pi
        two_pi = 2.0 * np.pi
        headings = np.empty(len(gyro_times))
        heading = float(initial_heading)
        prev_t = gyro_times[0]
        for i, t in enumerate(gyro_times):
            dt = t - prev_t
            heading += yaw_rate[i] * dt
            # Same floor-mod wrap as :func:`_wrap_angle`, on native floats:
            # Python's ``%`` and ``np.mod`` agree bitwise for float64.
            error = (mag_list[i] - heading + pi) % two_pi - pi
            heading += gain * dt * error if dt > 0 else 0.0
            headings[i] = heading
            prev_t = t
        return headings

    def direction_change(
        self, gyroscope: SensorSeries, magnetometer: SensorSeries
    ) -> float:
        """Total direction change Δω (rad) over the capture."""
        headings = self.estimate_heading(gyroscope, magnetometer)
        return float(headings[-1] - headings[0])


def heading_from_series(magnetometer: SensorSeries) -> np.ndarray:
    """Raw magnetic heading (rad) from body-frame horizontal components.

    With the use-case grip the body ``x`` and ``z`` axes span the
    horizontal plane; the heading (up to the fixed declination offset the
    complementary filter doesn't care about) is ``atan2(Bx, −Bz)``.  This
    is what a compass app computes; it is noisy near loudspeakers — which
    is precisely why the fusion filter weighs it lightly.
    """
    if magnetometer.values.shape[1] != 3:
        raise ConfigurationError("magnetometer series must have 3 axes")
    return np.arctan2(magnetometer.values[:, 0], -magnetometer.values[:, 2])
