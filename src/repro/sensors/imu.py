"""Accelerometer and gyroscope models.

The paper fuses magnetometer, gyroscope and accelerometer readings (after
Zee [31] / walking-direction [37]) to track the phone's direction change Δω
and to dead-reckon its motion during the sweep.  Both models sample the
ground-truth path at their own rates and add the usual MEMS imperfections:
additive white noise, a constant turn-on bias, and (for the gyroscope) a
slow bias random walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.physics.geometry import SampledPath
from repro.sensors.base import SensorSeries, sample_times

#: Standard gravity, m/s².
GRAVITY = 9.80665

#: World-frame gravity vector (z is up).
GRAVITY_VECTOR = np.array([0.0, 0.0, -GRAVITY])


@dataclass
class Accelerometer:
    """Three-axis MEMS accelerometer (body frame, includes gravity)."""

    sample_rate: float = 200.0
    noise_ms2: float = 0.03
    bias_ms2: np.ndarray = field(default_factory=lambda: np.zeros(3))
    seed: int = 1

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ConfigurationError("sample_rate must be positive")
        self.bias_ms2 = np.asarray(self.bias_ms2, dtype=float)
        if self.bias_ms2.shape != (3,):
            raise ConfigurationError("bias_ms2 must be a 3-vector")

    def sample(
        self, path: SampledPath, rng: np.random.Generator | None = None
    ) -> SensorSeries:
        """Specific force in the body frame: ``R^T(a − g)`` plus noise."""
        rng = np.random.default_rng(self.seed) if rng is None else rng
        times = sample_times(path.duration, self.sample_rate, start=path.times[0])
        world_acc = path.accelerations()
        readings = np.empty((times.size, 3))
        for i, t in enumerate(times):
            pose = path.pose_at(t)
            idx = int(np.clip(np.searchsorted(path.times, t), 0, len(path) - 1))
            specific_force = world_acc[idx] - GRAVITY_VECTOR
            readings[i] = pose.to_body(specific_force) + self.bias_ms2
        readings += rng.normal(0.0, self.noise_ms2, readings.shape)
        return SensorSeries(times=times, values=readings)


@dataclass
class Gyroscope:
    """Three-axis MEMS gyroscope (body frame, rad/s)."""

    sample_rate: float = 200.0
    noise_rads: float = 0.002
    bias_rads: np.ndarray = field(default_factory=lambda: np.zeros(3))
    bias_walk_rads: float = 0.0005
    seed: int = 2

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ConfigurationError("sample_rate must be positive")
        self.bias_rads = np.asarray(self.bias_rads, dtype=float)
        if self.bias_rads.shape != (3,):
            raise ConfigurationError("bias_rads must be a 3-vector")

    def sample(
        self, path: SampledPath, rng: np.random.Generator | None = None
    ) -> SensorSeries:
        """Body-frame angular rates derived from the pose sequence."""
        rng = np.random.default_rng(self.seed) if rng is None else rng
        times = sample_times(path.duration, self.sample_rate, start=path.times[0])
        readings = np.empty((times.size, 3))
        dt = 1.0 / self.sample_rate
        for i, t in enumerate(times):
            pose_now = path.pose_at(t)
            pose_next = path.pose_at(min(t + dt, path.times[-1]))
            # Relative rotation over dt in the body frame; for the small
            # angles of one sample period the skew part is the rate vector.
            rel = pose_now.orientation.T @ pose_next.orientation
            omega = (
                np.array([rel[2, 1] - rel[1, 2], rel[0, 2] - rel[2, 0], rel[1, 0] - rel[0, 1]])
                / (2.0 * dt)
            )
            readings[i] = omega + self.bias_rads
        walk = np.cumsum(
            rng.normal(0.0, self.bias_walk_rads * np.sqrt(dt), readings.shape), axis=0
        )
        readings += walk + rng.normal(0.0, self.noise_rads, readings.shape)
        return SensorSeries(times=times, values=readings)
