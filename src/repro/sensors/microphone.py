"""Smartphone microphone model.

The microphone converts scene pressure waveforms (rendered by
:mod:`repro.world.scene`) into digital audio: sensitivity scaling, a gentle
high-frequency roll-off near Nyquist (MEMS mics on the Nexus-era phones
still pass 20 kHz, which the ranging pilot needs), additive self-noise, and
full-scale clipping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.filters import lowpass
from repro.errors import ConfigurationError, SignalError


@dataclass
class Microphone:
    """A smartphone MEMS microphone.

    ``sensitivity`` maps pascals to full-scale digital units;
    ``noise_floor_db`` is self-noise relative to full scale.
    """

    sample_rate: int = 48000
    sensitivity: float = 12.0
    noise_floor_db: float = -84.0
    rolloff_hz: float | None = 22000.0
    seed: int = 3

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ConfigurationError("sample_rate must be positive")
        if self.sensitivity <= 0:
            raise ConfigurationError("sensitivity must be positive")

    def record(
        self, pressure: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Digitise a pressure waveform (Pa) into [-1, 1] samples."""
        p = np.asarray(pressure, dtype=float)
        if p.ndim != 1 or p.size == 0:
            raise SignalError("record expects a non-empty 1-D pressure waveform")
        rng = np.random.default_rng(self.seed) if rng is None else rng
        audio = p * self.sensitivity
        if self.rolloff_hz is not None and self.rolloff_hz < self.sample_rate / 2.0:
            audio = lowpass(audio, self.rolloff_hz, self.sample_rate, order=2)
        noise_amp = 10.0 ** (self.noise_floor_db / 20.0)
        audio = audio + rng.normal(0.0, noise_amp, audio.shape)
        return np.clip(audio, -1.0, 1.0)
