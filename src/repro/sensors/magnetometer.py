"""Three-axis magnetometer model (AK8975-class part).

The paper's loudspeaker detector reads the phone's compass; the AK8975 in
the Nexus-era testbed phones has 0.3 µT/LSB resolution and a ±1200 µT
measurement range (paper §VI, "Various Classes of Speakers").  The model
samples the scene's total field along the phone path, rotates it into the
body frame, adds white noise and a small hard-iron bias, quantises, and
clips to range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.physics.geometry import SampledPath
from repro.sensors.base import SensorSeries, quantize, sample_times

#: World-field callback signature: (position_m, time_s) → field µT (3,).
FieldFunction = Callable[[np.ndarray, float], np.ndarray]


@dataclass
class Magnetometer:
    """AK8975-style magnetometer.

    ``noise_ut`` is the per-axis white-noise standard deviation; 0.35 µT is
    typical of the part at 100 Hz.  ``hard_iron_ut`` models the phone's own
    magnetised components, fixed per device instance.
    """

    sample_rate: float = 100.0
    resolution_ut: float = 0.3
    range_ut: float = 1200.0
    noise_ut: float = 0.35
    hard_iron_ut: np.ndarray = field(default_factory=lambda: np.zeros(3))
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ConfigurationError("sample_rate must be positive")
        if self.range_ut <= 0:
            raise ConfigurationError("range_ut must be positive")
        self.hard_iron_ut = np.asarray(self.hard_iron_ut, dtype=float)
        if self.hard_iron_ut.shape != (3,):
            raise ConfigurationError("hard_iron_ut must be a 3-vector")

    def sample(
        self,
        path: SampledPath,
        field_functions: Sequence[FieldFunction],
        rng: np.random.Generator | None = None,
    ) -> SensorSeries:
        """Sample the superposition of ``field_functions`` along ``path``.

        Returns body-frame readings in µT at the sensor's own rate,
        independent of the path's sampling grid.

        Sources may be plain ``(position, t) → field`` callables or
        :class:`~repro.physics.magnetics.FieldSource` objects; the latter
        are evaluated in one batched call per source, which is what makes
        full-capture simulation cheap.
        """
        rng = np.random.default_rng(self.seed) if rng is None else rng
        times = sample_times(path.duration, self.sample_rate, start=path.times[0])
        positions, orientations = path.sample_poses(times)
        total = np.zeros((times.size, 3))
        for f in field_functions:
            if hasattr(f, "field_at_many"):
                contrib = np.asarray(f.field_at_many(positions, times), dtype=float)
            else:
                contrib = np.stack(
                    [
                        np.asarray(f(p, float(t)), dtype=float)
                        for p, t in zip(positions, times)
                    ]
                )
            total = total + contrib
        # Body-frame rotation R.T @ v for every sample at once.
        readings = (
            np.einsum("nji,nj->ni", orientations, total) + self.hard_iron_ut
        )
        readings += rng.normal(0.0, self.noise_ut, readings.shape)
        readings = quantize(readings, self.resolution_ut)
        readings = np.clip(readings, -self.range_ut, self.range_ut)
        return SensorSeries(times=times, values=readings)
