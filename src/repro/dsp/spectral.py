"""Short-time spectral analysis: STFT, spectrograms and power spectra.

Fig. 6 of the paper shows the received spectrograph of the >16 kHz ranging
tone while the phone moves; :func:`spectrogram` regenerates that figure's
underlying data for the F6 benchmark, and :func:`stft` feeds the MFCC
front-end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.signal import frame_signal
from repro.errors import SignalError


def stft(
    x: np.ndarray,
    frame_length: int = 512,
    hop_length: int = 128,
    window: str = "hann",
) -> np.ndarray:
    """Short-time Fourier transform, shape ``(n_frames, frame_length//2 + 1)``.

    Only the one-sided spectrum is returned; the input is real audio.
    """
    frames = frame_signal(x, frame_length, hop_length, pad=True)
    win = _make_window(window, frame_length)
    return np.fft.rfft(frames * win[None, :], axis=1)


def _make_window(name: str, length: int) -> np.ndarray:
    if name == "hann":
        return np.hanning(length)
    if name == "hamming":
        return np.hamming(length)
    if name == "rect":
        return np.ones(length)
    raise SignalError(f"unknown window {name!r}")


def power_spectrum(
    x: np.ndarray, frame_length: int = 512, hop_length: int = 128
) -> np.ndarray:
    """Per-frame power spectrum (|STFT|² normalised by frame length)."""
    spec = stft(x, frame_length, hop_length)
    return (np.abs(spec) ** 2) / frame_length


@dataclass(frozen=True)
class Spectrogram:
    """A computed spectrogram plus its axes.

    ``magnitude_db`` has shape ``(n_frames, n_bins)``; ``times`` (s) and
    ``frequencies`` (Hz) label the rows and columns.
    """

    magnitude_db: np.ndarray
    times: np.ndarray
    frequencies: np.ndarray

    def band(self, low_hz: float, high_hz: float) -> np.ndarray:
        """Sub-spectrogram restricted to a frequency band."""
        mask = (self.frequencies >= low_hz) & (self.frequencies <= high_hz)
        if not np.any(mask):
            raise SignalError(f"no bins inside [{low_hz}, {high_hz}] Hz")
        return self.magnitude_db[:, mask]

    def peak_frequency_track(self, low_hz: float = 0.0, high_hz: float = np.inf) -> np.ndarray:
        """Frequency of the strongest bin per frame within a band (Hz)."""
        mask = (self.frequencies >= low_hz) & (self.frequencies <= high_hz)
        if not np.any(mask):
            raise SignalError(f"no bins inside [{low_hz}, {high_hz}] Hz")
        freqs = self.frequencies[mask]
        idx = np.argmax(self.magnitude_db[:, mask], axis=1)
        return freqs[idx]


def spectrogram(
    x: np.ndarray,
    sample_rate: int,
    frame_length: int = 512,
    hop_length: int = 128,
    floor_db: float = -120.0,
) -> Spectrogram:
    """Magnitude spectrogram in dB with time/frequency axes."""
    if sample_rate <= 0:
        raise SignalError("sample_rate must be positive")
    spec = stft(x, frame_length, hop_length)
    mag = np.abs(spec)
    floor = 10.0 ** (floor_db / 20.0)
    mag_db = 20.0 * np.log10(np.maximum(mag, floor))
    n_frames = spec.shape[0]
    times = (np.arange(n_frames) * hop_length + frame_length / 2.0) / sample_rate
    freqs = np.fft.rfftfreq(frame_length, d=1.0 / sample_rate)
    return Spectrogram(magnitude_db=mag_db, times=times, frequencies=freqs)


def spectral_centroid(x: np.ndarray, sample_rate: int, frame_length: int = 512, hop_length: int = 128) -> np.ndarray:
    """Per-frame spectral centroid in Hz (used by replay-channel tests)."""
    power = power_spectrum(x, frame_length, hop_length)
    freqs = np.fft.rfftfreq(frame_length, d=1.0 / sample_rate)
    total = power.sum(axis=1)
    total = np.where(total > 0, total, 1.0)
    return (power * freqs[None, :]).sum(axis=1) / total
