"""Energy-based voice activity detection.

Enrollment and verification utterances are trimmed to speech before feature
extraction so silence frames don't dilute the GMM statistics.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.signal import frame_signal
from repro.errors import SignalError


def energy_vad(
    x: np.ndarray,
    sample_rate: int,
    frame_ms: float = 25.0,
    hop_ms: float = 10.0,
    threshold_db: float = 30.0,
) -> np.ndarray:
    """Boolean speech mask per frame.

    A frame is speech when its energy is within ``threshold_db`` of the
    loudest frame.  This simple detector is adequate for the synthetic
    corpora, whose noise floor is controlled.
    """
    if sample_rate <= 0:
        raise SignalError("sample_rate must be positive")
    frame_length = int(round(sample_rate * frame_ms / 1000.0))
    hop_length = int(round(sample_rate * hop_ms / 1000.0))
    frames = frame_signal(np.asarray(x, dtype=float), frame_length, hop_length, pad=True)
    energy = (frames**2).sum(axis=1)
    energy_db = 10.0 * np.log10(np.maximum(energy, 1e-12))
    return energy_db >= energy_db.max() - threshold_db


def trim_silence(
    x: np.ndarray,
    sample_rate: int,
    frame_ms: float = 25.0,
    hop_ms: float = 10.0,
    threshold_db: float = 30.0,
) -> np.ndarray:
    """Return ``x`` cropped to the first..last speech frame.

    If no frame passes the threshold the input is returned unchanged —
    raising would turn a quiet capture into a hard failure, whereas the
    downstream ASV scoring will simply reject it.
    """
    mask = energy_vad(x, sample_rate, frame_ms, hop_ms, threshold_db)
    if not mask.any():
        return np.asarray(x, dtype=float).copy()
    hop_length = int(round(sample_rate * hop_ms / 1000.0))
    frame_length = int(round(sample_rate * frame_ms / 1000.0))
    first = int(np.argmax(mask))
    last = int(len(mask) - np.argmax(mask[::-1]) - 1)
    start = first * hop_length
    stop = min(last * hop_length + frame_length, len(x))
    return np.asarray(x, dtype=float)[start:stop].copy()
