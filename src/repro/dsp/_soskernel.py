"""Optional compiled cascade kernel for batched zero-phase filtering.

scipy's ``_sosfilt`` processes one signal at a time; a biquad recurrence
is latency-bound (each output sample depends on the previous state), so a
single pass runs at the FP-add latency wall no matter how it is
vectorised.  *Independent* recurrences, however, can be interleaved in
one loop and fill the idle pipeline slots — six render-band filters over
the same capture run ~2x faster interleaved than back-to-back.

The kernel below replicates scipy's per-sample operation order exactly
(same multiplies, same adds, same sequence), so each interleaved signal's
output is bitwise-identical to what ``scipy.signal.sosfilt`` produces for
that signal alone; interleaving changes scheduling, not per-signal FP
semantics.  It is compiled on first use with the system C compiler using
``-ffp-contract=off`` (no FMA contraction — contraction could reassociate
the rounding scipy's build performs).  When no compiler is available the
module degrades to ``None`` and callers fall back to the scipy path,
keeping results identical either way.
"""

from __future__ import annotations

import ctypes

import numpy as np

from repro.ckernel import DEFAULT_CFLAGS, load_library

_C_SOURCE = r"""
/* Interleaved second-order-section cascades.

   Per-signal operation order matches scipy.signal._sosfilt's Cython
   kernel exactly:

       x_new = sos[s,0]*x + zi[s,0];
       zi[s,0] = sos[s,1]*x - sos[s,4]*x_new + zi[s,1];
       zi[s,1] = sos[s,2]*x - sos[s,5]*x_new;

   sos: (k, n_sections, 6) C-contiguous, one cascade per signal.
   x:   (k, n) C-contiguous, filtered in place.
   zi:  (k, n_sections, 2) C-contiguous, updated in place.
*/
void sosfilt_many(const double *sos, long n_sections, long k,
                  double *x, long n, double *zi) {
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < k; j++) {
            double xn = x[j * n + i];
            const double *sj = sos + j * 6 * n_sections;
            double *zj = zi + j * 2 * n_sections;
            for (long s = 0; s < n_sections; s++) {
                const double *c = sj + 6 * s;
                double *z = zj + 2 * s;
                double x_new = c[0] * xn + z[0];
                z[0] = c[1] * xn - c[4] * x_new + z[1];
                z[1] = c[2] * xn - c[5] * x_new;
                xn = x_new;
            }
            x[j * n + i] = xn;
        }
    }
}

/* Same cascades, but consuming each row back-to-front: sample order is
   exactly the row reversed, so the result equals filtering rev(x) and
   storing the output reversed — without materialising either reversal. */
void sosfilt_many_rev(const double *sos, long n_sections, long k,
                      double *x, long n, double *zi) {
    for (long i = n - 1; i >= 0; i--) {
        for (long j = 0; j < k; j++) {
            double xn = x[j * n + i];
            const double *sj = sos + j * 6 * n_sections;
            double *zj = zi + j * 2 * n_sections;
            for (long s = 0; s < n_sections; s++) {
                const double *c = sj + 6 * s;
                double *z = zj + 2 * s;
                double x_new = c[0] * xn + z[0];
                z[0] = c[1] * xn - c[4] * x_new + z[1];
                z[1] = c[2] * xn - c[5] * x_new;
                xn = x_new;
            }
            x[j * n + i] = xn;
        }
    }
}
"""

_CFLAGS = DEFAULT_CFLAGS

_lib: ctypes.CDLL | None = None
_load_attempted = False


def _build_library() -> ctypes.CDLL | None:
    """Compile (or reuse a cached build of) the kernel; None on failure."""
    lib = load_library("sosk", _C_SOURCE, _CFLAGS)
    if lib is None:
        return None
    argtypes = [
        ctypes.c_void_p,
        ctypes.c_long,
        ctypes.c_long,
        ctypes.c_void_p,
        ctypes.c_long,
        ctypes.c_void_p,
    ]
    lib.sosfilt_many.argtypes = argtypes
    lib.sosfilt_many.restype = None
    lib.sosfilt_many_rev.argtypes = argtypes
    lib.sosfilt_many_rev.restype = None
    return lib


def get_kernel() -> ctypes.CDLL | None:
    """The compiled kernel, building it on first call; None if unavailable."""
    global _lib, _load_attempted
    if not _load_attempted:
        _load_attempted = True
        try:
            _lib = _build_library()
        except Exception:  # pragma: no cover - defensive: never break serving
            _lib = None
    return _lib


def kernel_available() -> bool:
    return get_kernel() is not None


def sosfilt_interleaved(
    sos: np.ndarray, x: np.ndarray, zi: np.ndarray, reverse: bool = False
) -> None:
    """Filter ``k`` independent signals in place with interleaved cascades.

    ``sos`` is ``(k, n_sections, 6)``, ``x`` is ``(k, n)``, ``zi`` is
    ``(k, n_sections, 2)``; all three must be C-contiguous float64.  Each
    row of ``x`` is replaced by its filtered signal, bitwise-identical to
    a per-row ``scipy.signal.sosfilt`` call with the matching cascade.
    With ``reverse=True`` each row is consumed back-to-front and written
    back in place — equivalent to ``sosfilt(row[::-1])[::-1]`` with no
    reversal copies, which is the backward half of zero-phase filtering.
    Raises ``RuntimeError`` if the kernel is unavailable — callers should
    gate on :func:`kernel_available`.
    """
    lib = get_kernel()
    if lib is None:  # pragma: no cover - exercised via fallback tests
        raise RuntimeError("compiled sosfilt kernel unavailable")
    k, n_sections, six = sos.shape
    if six != 6 or x.shape != (k, x.shape[1]) or zi.shape != (k, n_sections, 2):
        raise ValueError("inconsistent batch shapes")
    for arr in (sos, x, zi):
        if arr.dtype != np.float64 or not arr.flags.c_contiguous:
            raise ValueError("batch arrays must be C-contiguous float64")
    fn = lib.sosfilt_many_rev if reverse else lib.sosfilt_many
    fn(
        sos.ctypes.data,
        n_sections,
        k,
        x.ctypes.data,
        x.shape[1],
        zi.ctypes.data,
    )
