"""Waveform generation, framing and level measurement."""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError


def generate_tone(
    frequency_hz: float,
    duration_s: float,
    sample_rate: int,
    amplitude: float = 1.0,
    phase_rad: float = 0.0,
) -> np.ndarray:
    """A pure sinusoid.

    Used for the inaudible ranging pilot (>16 kHz) and for synthetic test
    fixtures.  Raises :class:`SignalError` when the frequency violates
    Nyquist, because an aliased pilot silently breaks phase recovery.
    """
    if sample_rate <= 0:
        raise SignalError("sample_rate must be positive")
    if duration_s <= 0:
        raise SignalError("duration must be positive")
    if not 0.0 < frequency_hz < sample_rate / 2.0:
        raise SignalError(
            f"frequency {frequency_hz} Hz is outside (0, Nyquist={sample_rate / 2})"
        )
    n = int(round(duration_s * sample_rate))
    t = np.arange(n) / sample_rate
    return amplitude * np.sin(2.0 * np.pi * frequency_hz * t + phase_rad)


def generate_chirp(
    f0_hz: float,
    f1_hz: float,
    duration_s: float,
    sample_rate: int,
    amplitude: float = 1.0,
) -> np.ndarray:
    """A linear chirp from ``f0_hz`` to ``f1_hz``."""
    if sample_rate <= 0 or duration_s <= 0:
        raise SignalError("sample_rate and duration must be positive")
    nyq = sample_rate / 2.0
    if not (0.0 < f0_hz < nyq and 0.0 < f1_hz < nyq):
        raise SignalError("chirp endpoints must lie inside (0, Nyquist)")
    n = int(round(duration_s * sample_rate))
    t = np.arange(n) / sample_rate
    k = (f1_hz - f0_hz) / duration_s
    phase = 2.0 * np.pi * (f0_hz * t + 0.5 * k * t**2)
    return amplitude * np.sin(phase)


def frame_signal(
    x: np.ndarray, frame_length: int, hop_length: int, pad: bool = False
) -> np.ndarray:
    """Slice ``x`` into overlapping frames, shape ``(n_frames, frame_length)``.

    With ``pad=True`` the tail is zero-padded so no samples are dropped;
    otherwise only complete frames are returned.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise SignalError("frame_signal expects a 1-D signal")
    if frame_length <= 0 or hop_length <= 0:
        raise SignalError("frame_length and hop_length must be positive")
    if x.size < frame_length:
        if not pad:
            raise SignalError(
                f"signal ({x.size} samples) shorter than one frame ({frame_length})"
            )
        x = np.pad(x, (0, frame_length - x.size))
    if pad:
        remainder = (x.size - frame_length) % hop_length
        if remainder:
            x = np.pad(x, (0, hop_length - remainder))
    n_frames = 1 + (x.size - frame_length) // hop_length
    windows = np.lib.stride_tricks.sliding_window_view(x, frame_length)
    # Strided view + copy gathers the same samples as the fancy-index
    # version but without materialising the index matrix; returning a
    # fresh contiguous array keeps callers free to mutate frames.
    return np.ascontiguousarray(windows[:: hop_length][:n_frames])


def rms(x: np.ndarray) -> float:
    """Root-mean-square level of a signal."""
    x = np.asarray(x, dtype=float)
    if x.size == 0:
        raise SignalError("cannot compute RMS of an empty signal")
    return float(np.sqrt(np.mean(x**2)))


def amplitude_to_db(amplitude: np.ndarray, floor_db: float = -120.0) -> np.ndarray:
    """Convert linear amplitude to dBFS (relative to 1.0), floored."""
    a = np.abs(np.asarray(amplitude, dtype=float))
    floor_amp = 10.0 ** (floor_db / 20.0)
    return 20.0 * np.log10(np.maximum(a, floor_amp))


def db_to_amplitude(db: np.ndarray) -> np.ndarray:
    """Inverse of :func:`amplitude_to_db`."""
    return 10.0 ** (np.asarray(db, dtype=float) / 20.0)


def rms_db(x: np.ndarray) -> float:
    """RMS level in dBFS."""
    return float(amplitude_to_db(np.array([rms(x)]))[0])


def add_awgn(x: np.ndarray, snr_db: float, rng: np.random.Generator) -> np.ndarray:
    """Add white Gaussian noise at the requested SNR.

    Silent input is returned with noise at an absolute floor so that the SNR
    definition never divides by zero.
    """
    x = np.asarray(x, dtype=float)
    signal_power = float(np.mean(x**2))
    if signal_power <= 0.0:
        signal_power = 1e-12
    noise_power = signal_power / (10.0 ** (snr_db / 10.0))
    return x + rng.normal(0.0, np.sqrt(noise_power), x.shape)


def normalize_peak(x: np.ndarray, peak: float = 0.99) -> np.ndarray:
    """Scale so the maximum absolute sample equals ``peak``.

    A silent signal is returned unchanged rather than amplified to NaNs.
    """
    x = np.asarray(x, dtype=float)
    m = float(np.max(np.abs(x))) if x.size else 0.0
    if m == 0.0:
        return x.copy()
    return x * (peak / m)
