"""Filtering utilities: pre-emphasis and Butterworth band selection."""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple, Union

import numpy as np
from scipy import signal as sp_signal

from repro.errors import SignalError

try:  # scipy-private Cython kernel; fall back to the public wrapper.
    from scipy.signal._signaltools import _sosfilt as _sosfilt_raw
except ImportError:  # pragma: no cover - depends on scipy layout
    _sosfilt_raw = None


def _sosfilt_pass(sos_w: np.ndarray, x: np.ndarray, zi: np.ndarray) -> np.ndarray:
    """One causal cascade pass, bitwise-identical to ``sp_signal.sosfilt``.

    Replicates the public wrapper's exact steps for 1-D float64 input —
    C-ordered copy of the signal, contiguous per-signal state — and hands
    them straight to the Cython kernel, skipping the per-call shape
    validation and axis plumbing the serving path pays thousands of times.
    """
    if _sosfilt_raw is None:  # pragma: no cover - depends on scipy layout
        y, _ = sp_signal.sosfilt(sos_w, x, zi=zi)
        return y
    y = np.array(x.reshape(1, -1), dtype=np.float64, order="C")
    z = np.ascontiguousarray(zi[None, :, :], dtype=np.float64)
    _sosfilt_raw(sos_w, y, z)
    return y[0]


def _sosfilt_inplace(sos_w: np.ndarray, buf: np.ndarray, zi: np.ndarray) -> None:
    """Run the cascade kernel in place over ``buf`` (shape ``(1, n)``)."""
    if _sosfilt_raw is None:  # pragma: no cover - depends on scipy layout
        buf[0], _ = sp_signal.sosfilt(sos_w, buf[0], zi=zi)
        return
    z = np.ascontiguousarray(zi[None, :, :], dtype=np.float64)
    _sosfilt_raw(sos_w, buf, z)


@lru_cache(maxsize=256)
def _design_state(
    order: int,
    cutoff: Union[float, Tuple[float, float]],
    btype: str,
    fs: int,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Cached Butterworth design: ``(sos, sosfilt_zi(sos), pad_edge)``.

    Filter *design* (pole placement plus the steady-state initial
    conditions ``sosfiltfilt`` re-derives on every call) is deterministic
    in its arguments and costs ~1 ms per call in scipy; the serving path
    designs the same handful of filters for every request.  The cache
    holds read-only masters — callers copy before handing arrays to
    scipy's Cython kernels, which demand writable buffers.
    """
    wn = list(cutoff) if isinstance(cutoff, tuple) else cutoff
    sos = sp_signal.butter(order, wn, btype=btype, fs=fs, output="sos")
    n_sections = sos.shape[0]
    ntaps = 2 * n_sections + 1
    ntaps -= int(min((sos[:, 2] == 0).sum(), (sos[:, 5] == 0).sum()))
    zi = sp_signal.sosfilt_zi(sos)
    sos.setflags(write=False)
    zi.setflags(write=False)
    return sos, zi, 3 * ntaps


def _zero_phase(
    x: np.ndarray,
    order: int,
    cutoff: Union[float, Tuple[float, float]],
    btype: str,
    fs: int,
) -> np.ndarray:
    """``sosfiltfilt`` with the per-design state cached.

    Replicates scipy's 1-D ``sosfiltfilt(sos, x)`` step for step (odd
    extension of ``3*ntaps``, steady-state ``zi`` scaled by the first
    sample, forward pass, reversed backward pass, edge trim) so the output
    is bitwise-identical, while the design and ``sosfilt_zi`` solve come
    from :func:`_design_state` instead of being recomputed per call.
    """
    sos, zi, edge = _design_state(order, cutoff, btype, fs)
    x = np.asarray(x, dtype=float)
    if x.ndim != 1 or x.shape[0] <= edge:
        # Rare shapes take scipy's own path (same errors, same output).
        return sp_signal.sosfiltfilt(sos.copy(), x)
    # Build the odd extension straight into the (1, n) buffer the Cython
    # kernel mutates, instead of concatenating and then copying: the three
    # segments hold exactly the values ``np.concatenate`` would produce.
    n_ext = x.shape[0] + 2 * edge
    fwd = np.empty((1, n_ext), dtype=np.float64)
    fwd[0, :edge] = 2.0 * x[0] - x[edge:0:-1]
    fwd[0, edge:-edge] = x
    fwd[0, -edge:] = 2.0 * x[-1] - x[-2 : -(edge + 2) : -1]
    sos_w = sos.copy()
    _sosfilt_inplace(sos_w, fwd, zi * fwd[0, :1])
    from repro.dsp._soskernel import kernel_available, sosfilt_interleaved

    if kernel_available():
        # Backward pass consumed in place back-to-front: no reversal copies.
        zb = np.ascontiguousarray(zi * fwd[0, -1])[None, :, :]
        sosfilt_interleaved(sos_w[None, :, :].copy(), fwd, zb, reverse=True)
        return fwd[0, edge:-edge]
    bwd = np.empty_like(fwd)
    bwd[0] = fwd[0, ::-1]
    _sosfilt_inplace(sos_w, bwd, zi * bwd[0, :1])
    y = bwd[0, ::-1]
    return y[edge:-edge]


def zero_phase_batch(
    items: "list[tuple[np.ndarray, int, Union[float, Tuple[float, float]], str, int]]",
) -> "list[np.ndarray]":
    """Zero-phase filter several independent ``(x, order, cutoff, btype, fs)``
    jobs at once.

    When the compiled interleaved kernel is available and the jobs are
    shape-compatible (same signal length, same section count, same pad
    edge — true for e.g. the render-band stack over one capture), all
    forward passes run in one interleaved loop and then all backward
    passes do, exploiting instruction-level parallelism a single biquad
    recurrence cannot.  Every job's output is bitwise-identical to
    :func:`_zero_phase` on that job alone; incompatible or kernel-less
    environments fall back to exactly that per-job path.
    """
    from repro.dsp._soskernel import kernel_available, sosfilt_interleaved

    for _, _, cutoff, btype, fs in items:
        freqs = cutoff if isinstance(cutoff, tuple) else (cutoff,)
        _validate_band(fs, *freqs)
        if btype == "band" and freqs[0] >= freqs[1]:
            raise SignalError("bandpass requires low_hz < high_hz")
    states = [_design_state(order, cutoff, btype, fs) for _, order, cutoff, btype, fs in items]
    xs = [np.asarray(x, dtype=float) for x, *_ in items]
    edge = states[0][2]
    n_sections = states[0][0].shape[0]
    batchable = (
        len(items) > 1
        and kernel_available()
        and all(x.ndim == 1 and x.shape == xs[0].shape for x in xs)
        and xs[0].shape[0] > edge
        and all(s[2] == edge and s[0].shape[0] == n_sections for s in states)
    )
    if not batchable:
        return [
            _zero_phase(x, order, cutoff, btype, fs)
            for x, (_, order, cutoff, btype, fs) in zip(xs, items)
        ]
    k = len(items)
    n = xs[0].shape[0]
    fwd = np.empty((k, n + 2 * edge), dtype=np.float64)
    for j, x in enumerate(xs):
        fwd[j, :edge] = 2.0 * x[0] - x[edge:0:-1]
        fwd[j, edge:-edge] = x
        fwd[j, -edge:] = 2.0 * x[-1] - x[-2 : -(edge + 2) : -1]
    sos_stack = np.stack([s[0] for s in states])
    zi = np.empty((k, n_sections, 2), dtype=np.float64)
    for j, s in enumerate(states):
        zi[j] = s[1] * fwd[j, 0]
    sosfilt_interleaved(sos_stack, fwd, zi)
    for j, s in enumerate(states):
        zi[j] = s[1] * fwd[j, -1]
    sosfilt_interleaved(sos_stack, fwd, zi, reverse=True)
    return [fwd[j, edge:-edge] for j in range(k)]


def preemphasis(x: np.ndarray, coefficient: float = 0.97) -> np.ndarray:
    """First-order pre-emphasis ``y[n] = x[n] − a·x[n−1]``.

    Standard ASV front-end step: flattens the −6 dB/octave glottal tilt so
    the mel filterbank sees balanced energy across formants.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1 or x.size == 0:
        raise SignalError("preemphasis expects a non-empty 1-D signal")
    if not 0.0 <= coefficient < 1.0:
        raise SignalError("pre-emphasis coefficient must be in [0, 1)")
    return np.append(x[0], x[1:] - coefficient * x[:-1])


def _validate_band(sample_rate: int, *freqs: float) -> None:
    if sample_rate <= 0:
        raise SignalError("sample_rate must be positive")
    nyq = sample_rate / 2.0
    for f in freqs:
        if not 0.0 < f < nyq:
            raise SignalError(f"cutoff {f} Hz outside (0, Nyquist={nyq})")


def lowpass(
    x: np.ndarray, cutoff_hz: float, sample_rate: int, order: int = 4
) -> np.ndarray:
    """Zero-phase Butterworth low-pass."""
    _validate_band(sample_rate, cutoff_hz)
    return _zero_phase(x, order, float(cutoff_hz), "low", int(sample_rate))


def highpass(
    x: np.ndarray, cutoff_hz: float, sample_rate: int, order: int = 4
) -> np.ndarray:
    """Zero-phase Butterworth high-pass."""
    _validate_band(sample_rate, cutoff_hz)
    return _zero_phase(x, order, float(cutoff_hz), "high", int(sample_rate))


def bandpass(
    x: np.ndarray,
    low_hz: float,
    high_hz: float,
    sample_rate: int,
    order: int = 4,
) -> np.ndarray:
    """Zero-phase Butterworth band-pass.

    Used to isolate the >16 kHz ranging pilot from speech before IQ
    demodulation.
    """
    _validate_band(sample_rate, low_hz, high_hz)
    if low_hz >= high_hz:
        raise SignalError("bandpass requires low_hz < high_hz")
    return _zero_phase(
        x, order, (float(low_hz), float(high_hz)), "band", int(sample_rate)
    )


def moving_average(x: np.ndarray, window: int) -> np.ndarray:
    """Centred moving average with edge replication.

    Edges are padded with the boundary values before convolving, so a
    constant signal stays constant — zero padding would fabricate ramps at
    the ends, which downstream rate-of-change detectors would see as huge
    spurious transients.
    """
    x = np.asarray(x, dtype=float)
    if window <= 0:
        raise SignalError("window must be positive")
    if window == 1 or x.size == 0:
        return x.copy()
    w = min(window, x.size)
    pad = w // 2
    padded = np.pad(x, pad, mode="edge")
    kernel = np.ones(w) / w
    smoothed = np.convolve(padded, kernel, mode="same")
    return smoothed[pad : pad + x.size]
