"""Filtering utilities: pre-emphasis and Butterworth band selection."""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from repro.errors import SignalError


def preemphasis(x: np.ndarray, coefficient: float = 0.97) -> np.ndarray:
    """First-order pre-emphasis ``y[n] = x[n] − a·x[n−1]``.

    Standard ASV front-end step: flattens the −6 dB/octave glottal tilt so
    the mel filterbank sees balanced energy across formants.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1 or x.size == 0:
        raise SignalError("preemphasis expects a non-empty 1-D signal")
    if not 0.0 <= coefficient < 1.0:
        raise SignalError("pre-emphasis coefficient must be in [0, 1)")
    return np.append(x[0], x[1:] - coefficient * x[:-1])


def _validate_band(sample_rate: int, *freqs: float) -> None:
    if sample_rate <= 0:
        raise SignalError("sample_rate must be positive")
    nyq = sample_rate / 2.0
    for f in freqs:
        if not 0.0 < f < nyq:
            raise SignalError(f"cutoff {f} Hz outside (0, Nyquist={nyq})")


def lowpass(
    x: np.ndarray, cutoff_hz: float, sample_rate: int, order: int = 4
) -> np.ndarray:
    """Zero-phase Butterworth low-pass."""
    _validate_band(sample_rate, cutoff_hz)
    sos = sp_signal.butter(order, cutoff_hz, btype="low", fs=sample_rate, output="sos")
    return sp_signal.sosfiltfilt(sos, np.asarray(x, dtype=float))


def highpass(
    x: np.ndarray, cutoff_hz: float, sample_rate: int, order: int = 4
) -> np.ndarray:
    """Zero-phase Butterworth high-pass."""
    _validate_band(sample_rate, cutoff_hz)
    sos = sp_signal.butter(order, cutoff_hz, btype="high", fs=sample_rate, output="sos")
    return sp_signal.sosfiltfilt(sos, np.asarray(x, dtype=float))


def bandpass(
    x: np.ndarray,
    low_hz: float,
    high_hz: float,
    sample_rate: int,
    order: int = 4,
) -> np.ndarray:
    """Zero-phase Butterworth band-pass.

    Used to isolate the >16 kHz ranging pilot from speech before IQ
    demodulation.
    """
    _validate_band(sample_rate, low_hz, high_hz)
    if low_hz >= high_hz:
        raise SignalError("bandpass requires low_hz < high_hz")
    sos = sp_signal.butter(
        order, [low_hz, high_hz], btype="band", fs=sample_rate, output="sos"
    )
    return sp_signal.sosfiltfilt(sos, np.asarray(x, dtype=float))


def moving_average(x: np.ndarray, window: int) -> np.ndarray:
    """Centred moving average with edge replication.

    Edges are padded with the boundary values before convolving, so a
    constant signal stays constant — zero padding would fabricate ramps at
    the ends, which downstream rate-of-change detectors would see as huge
    spurious transients.
    """
    x = np.asarray(x, dtype=float)
    if window <= 0:
        raise SignalError("window must be positive")
    if window == 1 or x.size == 0:
        return x.copy()
    w = min(window, x.size)
    pad = w // 2
    padded = np.pad(x, pad, mode="edge")
    kernel = np.ones(w) / w
    smoothed = np.convolve(padded, kernel, mode="same")
    return smoothed[pad : pad + x.size]
