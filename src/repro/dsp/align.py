"""Dynamic time warping for content alignment.

The sound-field verifier compares a verification sweep against an
enrolment sweep of the *same pass-phrase*.  Speaking-rate jitter shifts
phonemes by tens of milliseconds between repetitions, so the two traces
are aligned with classic DTW on their level envelopes before differencing
— after alignment, the speech content cancels and only the radiation
pattern difference remains.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError


def dtw_path(
    reference: np.ndarray,
    query: np.ndarray,
    band_fraction: float = 0.2,
) -> tuple[np.ndarray, np.ndarray]:
    """Monotonic DTW path between two 1-D sequences.

    Uses squared distance on z-normalised values and a Sakoe–Chiba band of
    ``band_fraction`` of the longer length.  Returns ``(ref_idx, query_idx)``
    arrays describing the optimal path from (0, 0) to (n-1, m-1).
    """
    ref = np.asarray(reference, dtype=float)
    qry = np.asarray(query, dtype=float)
    if ref.ndim != 1 or qry.ndim != 1 or ref.size < 2 or qry.size < 2:
        raise SignalError("DTW needs two 1-D sequences of length >= 2")

    def znorm(x: np.ndarray) -> np.ndarray:
        s = x.std()
        return (x - x.mean()) / (s if s > 1e-12 else 1.0)

    r, q = znorm(ref), znorm(qry)
    n, m = r.size, q.size
    band = max(int(band_fraction * max(n, m)), abs(n - m) + 2)

    # The DP runs over native Python floats: every cell update is the same
    # IEEE-754 double add/compare the ndarray version performed, so costs
    # (and therefore paths and downstream scores) are bitwise unchanged,
    # but per-cell work drops from numpy scalar boxing to list indexing.
    inf = float("inf")
    dist = ((r[:, None] - q[None, :]) ** 2).tolist()
    cost = [[inf] * m for _ in range(n)]
    cost[0][0] = dist[0][0]
    # First row: only left-neighbour moves are reachable.
    row0, drow0 = cost[0], dist[0]
    for j in range(1, min(m, band + 1)):
        prev = row0[j - 1]
        if prev != inf:
            row0[j] = drow0[j] + prev
    for i in range(1, n):
        j_lo = max(0, int(i * m / n) - band)
        j_hi = min(m, int(i * m / n) + band + 1)
        row = cost[i]
        up = cost[i - 1]
        drow = dist[i]
        for j in range(j_lo, j_hi):
            best = up[j]
            if j > 0:
                v = row[j - 1]
                if v < best:
                    best = v
                v = up[j - 1]
                if v < best:
                    best = v
            if best != inf:
                row[j] = drow[j] + best

    if cost[n - 1][m - 1] == inf:
        raise SignalError("DTW band too narrow for these sequences")

    # Backtrack.
    path_r, path_q = [n - 1], [m - 1]
    i, j = n - 1, m - 1
    while i > 0 or j > 0:
        candidates = []
        if i > 0 and j > 0:
            candidates.append((cost[i - 1][j - 1], i - 1, j - 1))
        if i > 0:
            candidates.append((cost[i - 1][j], i - 1, j))
        if j > 0:
            candidates.append((cost[i][j - 1], i, j - 1))
        _, i, j = min(candidates, key=lambda c: c[0])
        path_r.append(i)
        path_q.append(j)
    return np.array(path_r[::-1]), np.array(path_q[::-1])


def align_to_reference(
    reference: np.ndarray, query: np.ndarray, band_fraction: float = 0.2
) -> np.ndarray:
    """Indices into ``query`` matching each reference sample.

    When several query frames map to one reference frame the first match
    is used; the result has ``len(reference)`` entries.
    """
    ref_idx, qry_idx = dtw_path(reference, query, band_fraction)
    mapping = np.full(len(reference), -1, dtype=int)
    for r_i, q_i in zip(ref_idx, qry_idx):
        if mapping[r_i] < 0:
            mapping[r_i] = q_i
    # Fill any gaps (can't happen with a full path, but be safe).
    for i in range(len(mapping)):
        if mapping[i] < 0:
            mapping[i] = mapping[i - 1] if i else 0
    return mapping
