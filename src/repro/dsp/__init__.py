"""Signal-processing substrate.

Everything the verification pipeline and the ASV front-end need, built on
``numpy``/``scipy`` primitives:

- :mod:`repro.dsp.signal` — tone/chirp generation, framing, windowing, level
  measurement.
- :mod:`repro.dsp.filters` — pre-emphasis and Butterworth band filters.
- :mod:`repro.dsp.spectral` — STFT, spectrograms, power spectra.
- :mod:`repro.dsp.mel` — mel filterbanks, MFCCs and delta features.
- :mod:`repro.dsp.phase` — IQ demodulation and phase-based displacement
  recovery for the >16 kHz ranging pilot.
- :mod:`repro.dsp.vad` — energy-based voice activity detection.
"""

from repro.dsp.signal import (
    amplitude_to_db,
    db_to_amplitude,
    frame_signal,
    generate_chirp,
    generate_tone,
    rms,
    rms_db,
)
from repro.dsp.filters import (
    bandpass,
    highpass,
    lowpass,
    preemphasis,
)
from repro.dsp.spectral import (
    Spectrogram,
    power_spectrum,
    spectrogram,
    stft,
)
from repro.dsp.mel import (
    MFCCExtractor,
    delta,
    hz_to_mel,
    mel_filterbank,
    mel_to_hz,
)
from repro.dsp.phase import (
    iq_demodulate,
    phase_to_displacement,
    remove_static_component,
    unwrap_phase,
)
from repro.dsp.vad import energy_vad, trim_silence

__all__ = [
    "amplitude_to_db",
    "db_to_amplitude",
    "frame_signal",
    "generate_chirp",
    "generate_tone",
    "rms",
    "rms_db",
    "bandpass",
    "highpass",
    "lowpass",
    "preemphasis",
    "Spectrogram",
    "power_spectrum",
    "spectrogram",
    "stft",
    "MFCCExtractor",
    "delta",
    "hz_to_mel",
    "mel_filterbank",
    "mel_to_hz",
    "iq_demodulate",
    "phase_to_displacement",
    "remove_static_component",
    "unwrap_phase",
    "energy_vad",
    "trim_silence",
]
