"""Phase-based displacement recovery for the ranging pilot.

The distance-verification component follows the LLAP-style method of
Wang et al. [49] cited by the paper: the phone plays an inaudible tone at
``fs`` (>16 kHz, wavelength < 2.2 cm), the microphone records the mixture of
the direct path and the echo off the user's head, and the echo's phase
rotates by 2π for every half-wavelength of phone motion (the path is
out-and-back, so path length changes at twice the phone speed relative to
the head... here the phone carries both the speaker and the microphone, so
the echo path is ``2·d`` and phase is ``4π·d/λ``).

Pipeline: band-pass around the pilot → IQ demodulation → static (direct
path / LOS leakage) removal → phase unwrap → displacement.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.filters import lowpass, zero_phase_batch
from repro.errors import SignalError
from repro.physics.acoustics import SPEED_OF_SOUND


#: Samples of context carried past each chunk boundary when demodulating
#: in chunks.  The zero-phase Butterworth's impulse response decays below
#: 1e-12 well inside this span for every pilot low-pass the system uses,
#: so chunked output matches whole-signal output to ~1e-12.
CHUNK_OVERLAP = 8192


def iq_demodulate(
    x: np.ndarray,
    carrier_hz: float,
    sample_rate: int,
    lowpass_hz: float = 400.0,
    chunk_size: int | None = None,
) -> np.ndarray:
    """Complex baseband of ``x`` around ``carrier_hz``.

    Multiplies by a complex exponential and low-passes both quadratures;
    the result's angle is the carrier phase, its magnitude the envelope.

    With ``chunk_size`` set, the signal is processed in chunks of that
    many samples (each extended by :data:`CHUNK_OVERLAP` context on both
    sides before filtering), bounding peak memory to the chunk instead of
    the capture.  The mixing grid uses global sample indices, so chunked
    and whole-signal results agree to filter-transient precision (~1e-12).
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1 or x.size == 0:
        raise SignalError("iq_demodulate expects a non-empty 1-D signal")
    if not 0.0 < carrier_hz < sample_rate / 2.0:
        raise SignalError("carrier must lie inside (0, Nyquist)")
    if not 0.0 < lowpass_hz < sample_rate / 2.0:
        raise SignalError("lowpass_hz must lie inside (0, Nyquist)")
    if chunk_size is not None and chunk_size <= 0:
        raise SignalError("chunk_size must be positive")
    # The mixer is evaluated as separate cos/sin rails: ``exp(i·w)`` for a
    # pure-imaginary argument is computed by the C library as
    # ``(cos w, sin w)`` with ``exp(±0)=1``, so mixing with ``cos``/``sin``
    # of the same phase grid is bitwise-identical to the complex
    # exponential while skipping the complex temporaries.
    if chunk_size is None or x.size <= chunk_size:
        t = np.arange(x.size) / sample_rate
        w = (-2.0 * np.pi * carrier_hz) * t
        i, q = zero_phase_batch(
            [
                (x * np.cos(w), 4, float(lowpass_hz), "low", int(sample_rate)),
                (x * np.sin(w), 4, float(lowpass_hz), "low", int(sample_rate)),
            ]
        )
        return _assemble_complex(i, q)
    out = np.empty(x.size, dtype=complex)
    for start in range(0, x.size, chunk_size):
        end = min(start + chunk_size, x.size)
        ctx_start = max(0, start - CHUNK_OVERLAP)
        ctx_end = min(x.size, end + CHUNK_OVERLAP)
        t = np.arange(ctx_start, ctx_end) / sample_rate
        w = (-2.0 * np.pi * carrier_hz) * t
        seg = x[ctx_start:ctx_end]
        i, q = zero_phase_batch(
            [
                (seg * np.cos(w), 4, float(lowpass_hz), "low", int(sample_rate)),
                (seg * np.sin(w), 4, float(lowpass_hz), "low", int(sample_rate)),
            ]
        )
        keep = slice(start - ctx_start, start - ctx_start + (end - start))
        out[start:end] = _assemble_complex(i[keep], q[keep])
    return out


def _assemble_complex(i: np.ndarray, q: np.ndarray) -> np.ndarray:
    """``i + 1.0j * q`` without the complex temporaries.

    Componentwise the original expression computes ``real = i + q*0.0``
    and ``imag = 0.0 + q*1.0``; writing those same operations into the
    output's component views keeps every rounding (including signed-zero
    edge cases) identical while skipping two full-size complex arrays.
    """
    out = np.empty(i.shape, dtype=complex)
    np.add(i, q * 0.0, out=out.real)
    np.add(q * 1.0, 0.0, out=out.imag)
    return out


class StreamingIQDemodulator:
    """Incremental IQ demodulation over a bounded ring buffer.

    ``push`` accepts arbitrary-size chunks and returns baseband samples as
    soon as their :data:`CHUNK_OVERLAP` right-context has arrived;
    ``finalize`` flushes the tail.  Internally the raw buffer is trimmed
    to the context window, so peak memory is ``chunk_size + 2·overlap``
    samples regardless of capture length.

    The mixing grid uses global sample indices and each emitted chunk
    reproduces the exact context/filter calls of
    :func:`iq_demodulate`'s chunked path, so the concatenated output is
    **bitwise-identical** to
    ``iq_demodulate(x, ..., chunk_size=chunk_size)`` on the concatenated
    signal, however the pushes split it (pinned in
    ``tests/test_vectorized_kernels.py``).
    """

    def __init__(
        self,
        carrier_hz: float,
        sample_rate: int,
        lowpass_hz: float = 400.0,
        chunk_size: int = 65536,
    ):
        if not 0.0 < carrier_hz < sample_rate / 2.0:
            raise SignalError("carrier must lie inside (0, Nyquist)")
        if not 0.0 < lowpass_hz < sample_rate / 2.0:
            raise SignalError("lowpass_hz must lie inside (0, Nyquist)")
        if chunk_size <= 0:
            raise SignalError("chunk_size must be positive")
        self.carrier_hz = float(carrier_hz)
        self.sample_rate = int(sample_rate)
        self.lowpass_hz = float(lowpass_hz)
        self.chunk_size = int(chunk_size)
        self._buf = np.empty(0)
        self._buf_start = 0  # global sample index of _buf[0]
        self._emitted = 0  # next output sample (a chunk_size multiple)
        self._finalized = False

    def _demod_span(self, start: int, end: int, total: int) -> np.ndarray:
        """One output span, exactly as iq_demodulate's chunked loop."""
        ctx_start = max(0, start - CHUNK_OVERLAP)
        ctx_end = min(total, end + CHUNK_OVERLAP)
        t = np.arange(ctx_start, ctx_end) / self.sample_rate
        w = (-2.0 * np.pi * self.carrier_hz) * t
        seg = self._buf[ctx_start - self._buf_start : ctx_end - self._buf_start]
        i, q = zero_phase_batch(
            [
                (seg * np.cos(w), 4, self.lowpass_hz, "low", self.sample_rate),
                (seg * np.sin(w), 4, self.lowpass_hz, "low", self.sample_rate),
            ]
        )
        keep = slice(start - ctx_start, start - ctx_start + (end - start))
        return _assemble_complex(i[keep], q[keep])

    def push(self, chunk: np.ndarray) -> np.ndarray:
        """Consume samples; return whatever baseband became final."""
        if self._finalized:
            raise SignalError("push after finalize")
        x = np.asarray(chunk, dtype=float)
        if x.ndim != 1:
            raise SignalError("push expects a 1-D chunk")
        if x.size:
            self._buf = np.concatenate([self._buf, x])
        buffered = self._buf_start + self._buf.size
        spans = []
        # A span is final once its full right-context has arrived; with
        # more signal still to come, ctx_end never clips, matching the
        # one-shot's min(x.size, end + overlap).
        while self._emitted + self.chunk_size + CHUNK_OVERLAP <= buffered:
            start = self._emitted
            end = start + self.chunk_size
            spans.append(self._demod_span(start, end, end + CHUNK_OVERLAP))
            self._emitted = end
            keep_from = end - CHUNK_OVERLAP  # next span's ctx_start
            if keep_from > self._buf_start:
                self._buf = self._buf[keep_from - self._buf_start :]
                self._buf_start = keep_from
        if not spans:
            return np.empty(0, dtype=complex)
        return spans[0] if len(spans) == 1 else np.concatenate(spans)

    def finalize(self) -> np.ndarray:
        """Flush the remaining baseband samples."""
        if self._finalized:
            raise SignalError("finalize called twice")
        self._finalized = True
        total = self._buf_start + self._buf.size
        if total == 0:
            raise SignalError("iq_demodulate expects a non-empty 1-D signal")
        if self._emitted == 0 and total <= self.chunk_size:
            # Short captures take the whole-signal path, like the one-shot.
            t = np.arange(total) / self.sample_rate
            w = (-2.0 * np.pi * self.carrier_hz) * t
            i, q = zero_phase_batch(
                [
                    (self._buf * np.cos(w), 4, self.lowpass_hz, "low", self.sample_rate),
                    (self._buf * np.sin(w), 4, self.lowpass_hz, "low", self.sample_rate),
                ]
            )
            return _assemble_complex(i, q)
        spans = []
        while self._emitted < total:
            start = self._emitted
            end = min(start + self.chunk_size, total)
            spans.append(self._demod_span(start, end, total))
            self._emitted = end
        if not spans:
            return np.empty(0, dtype=complex)
        return spans[0] if len(spans) == 1 else np.concatenate(spans)


def estimate_static_phasor(
    baseband: np.ndarray,
    max_points: int = 2000,
    n_chunks: int = 12,
    min_coverage_rad: float = 3.5,
) -> complex:
    """Estimate the static (direct-path) phasor of a baseband signal.

    While the phone moves, the echo phasor rotates around the constant
    direct-path phasor, so baseband samples trace a *spiral* in the I/Q
    plane centred on the static vector (the echo amplitude grows as the
    phone approaches).  A plain time-average fails because the sweep phase
    of the use-case motion freezes the echo at one angle, and a global
    circle fit is biased by the spiral's varying radius.

    Instead the capture is split into chunks short enough that the spiral
    radius is locally constant; each chunk with enough angular coverage
    (> ``min_coverage_rad``) gets its own least-squares circle fit, and the
    best-conditioned fit (smallest residual relative to its radius, with a
    bonus for coverage) supplies the centre.  Falls back to a global fit,
    then to the mean, when no chunk qualifies.
    """
    from repro.physics.geometry import fit_circle_2d  # deferred: avoids cycle
    from repro.errors import ConfigurationError

    bb = np.asarray(baseband, dtype=complex)
    if bb.ndim != 1 or bb.size == 0:
        raise SignalError("expected a non-empty 1-D baseband signal")
    step = max(1, bb.size // max_points)
    pts = bb[::step]
    n = pts.size
    best: tuple[float, complex] | None = None
    for k in range(n_chunks):
        seg = pts[k * n // n_chunks : (k + 1) * n // n_chunks]
        if seg.size < 8:
            continue
        try:
            cx, cy, r = fit_circle_2d(seg.real, seg.imag)
        except ConfigurationError:
            continue
        centre = complex(cx, cy)
        residual = float(np.sqrt(np.mean((np.abs(seg - centre) - r) ** 2)))
        coverage = float(
            np.abs(np.diff(np.unwrap(np.angle(seg - centre))[[0, -1]]))[0]
        )
        if coverage < min_coverage_rad:
            continue
        score = residual / max(r, 1e-12) - 0.05 * min(coverage, 2.0 * np.pi)
        if best is None or score < best[0]:
            best = (score, centre)
    if best is not None:
        return best[1]
    try:
        cx, cy, _ = fit_circle_2d(pts.real, pts.imag)
        return complex(cx, cy)
    except ConfigurationError:
        return complex(bb.mean())


def remove_static_component(
    baseband: np.ndarray, window: int | None = None
) -> np.ndarray:
    """Subtract the quasi-static part of a complex baseband signal.

    The direct speaker→microphone path inside the phone produces a large
    constant phasor that swamps the moving echo (LEVD's "static vector" in
    [49]).  By default the static vector is estimated with an I/Q-plane
    circle fit (see :func:`estimate_static_phasor`); pass ``window`` to use
    a running-mean estimate instead (useful when the static path itself
    drifts slowly).
    """
    bb = np.asarray(baseband, dtype=complex)
    if bb.ndim != 1 or bb.size == 0:
        raise SignalError("expected a non-empty 1-D baseband signal")
    if window is None:
        return bb - estimate_static_phasor(bb)
    if window <= 1:
        raise SignalError("window must be > 1 samples")
    kernel = np.ones(min(window, bb.size)) / min(window, bb.size)
    running = np.convolve(bb, kernel, mode="same")
    return bb - running


def unwrap_phase(baseband: np.ndarray) -> np.ndarray:
    """Unwrapped instantaneous phase (radians) of a complex baseband."""
    bb = np.asarray(baseband, dtype=complex)
    if bb.ndim != 1 or bb.size == 0:
        raise SignalError("expected a non-empty 1-D baseband signal")
    return np.unwrap(np.angle(bb))


def phase_to_displacement(
    phase_rad: np.ndarray,
    carrier_hz: float,
    round_trip: bool = True,
    speed_of_sound: float = SPEED_OF_SOUND,
) -> np.ndarray:
    """Convert unwrapped echo phase to displacement in metres.

    For a round-trip (speaker and mic co-located on the phone, echo off the
    head) the path is ``2·d`` and ``Δd = −Δφ·λ/(4π)``; the sign convention
    makes *approaching* the reflector positive.
    """
    if carrier_hz <= 0:
        raise SignalError("carrier must be positive")
    wavelength = speed_of_sound / carrier_hz
    factor = 4.0 * np.pi if round_trip else 2.0 * np.pi
    phase = np.asarray(phase_rad, dtype=float)
    return -(phase - phase[0]) * wavelength / factor


def displacement_from_pilot(
    recording: np.ndarray,
    carrier_hz: float,
    sample_rate: int,
    lowpass_hz: float = 200.0,
    chunk_size: int | None = None,
) -> np.ndarray:
    """End-to-end: recording → relative displacement toward the reflector.

    Convenience wrapper chaining demodulation, static removal, unwrapping
    and scaling; returns metres relative to the first sample.
    ``chunk_size`` is forwarded to :func:`iq_demodulate`.
    """
    baseband = iq_demodulate(
        recording, carrier_hz, sample_rate, lowpass_hz, chunk_size=chunk_size
    )
    dynamic = remove_static_component(baseband)
    phase = unwrap_phase(dynamic)
    return phase_to_displacement(phase, carrier_hz)
