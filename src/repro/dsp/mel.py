"""Mel-frequency cepstral coefficients — the ASV front-end.

The Spear toolbox the paper builds on extracts MFCCs with energy and
delta/delta-delta appendages; :class:`MFCCExtractor` reproduces that
front-end from scratch (framing → pre-emphasis → window → |FFT|² → mel
filterbank → log → DCT → liftering → deltas).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.fftpack import dct

from repro.analysis import sanitize
from repro.constants import DEFAULT_SAMPLE_RATE_HZ
from repro.dsp.filters import preemphasis
from repro.dsp.signal import frame_signal
from repro.errors import ConfigurationError, SignalError


def hz_to_mel(hz: np.ndarray) -> np.ndarray:
    """O'Shaughnessy mel scale."""
    return 2595.0 * np.log10(1.0 + np.asarray(hz, dtype=float) / 700.0)


def mel_to_hz(mel: np.ndarray) -> np.ndarray:
    """Inverse of :func:`hz_to_mel`."""
    return 700.0 * (10.0 ** (np.asarray(mel, dtype=float) / 2595.0) - 1.0)


def mel_filterbank(
    n_filters: int,
    n_fft: int,
    sample_rate: int,
    low_hz: float = 0.0,
    high_hz: float | None = None,
) -> np.ndarray:
    """Triangular mel filterbank, shape ``(n_filters, n_fft//2 + 1)``."""
    if n_filters <= 0:
        raise ConfigurationError("n_filters must be positive")
    high_hz = sample_rate / 2.0 if high_hz is None else high_hz
    if not 0.0 <= low_hz < high_hz <= sample_rate / 2.0:
        raise ConfigurationError(
            f"invalid band [{low_hz}, {high_hz}] for sample rate {sample_rate}"
        )
    mel_points = np.linspace(hz_to_mel(low_hz), hz_to_mel(high_hz), n_filters + 2)
    hz_points = mel_to_hz(mel_points)
    bins = np.floor((n_fft + 1) * hz_points / sample_rate).astype(int)
    left = bins[:-2]
    centre = np.maximum(bins[1:-1], left + 1)
    right = np.maximum(bins[2:], centre + 1)
    # Both triangle flanks evaluated on the full bin grid at once; the
    # masks carve out each filter's support.
    j = np.arange(n_fft // 2 + 1)
    rising = (j - left[:, None]) / (centre - left)[:, None]
    falling = (right[:, None] - j) / (right - centre)[:, None]
    bank = np.where(
        (j >= left[:, None]) & (j < centre[:, None]),
        rising,
        np.where((j >= centre[:, None]) & (j < right[:, None]), falling, 0.0),
    )
    return bank


def delta(features: np.ndarray, width: int = 2) -> np.ndarray:
    """Regression-based delta features over a ±``width`` frame window."""
    feats = np.asarray(features, dtype=float)
    if feats.ndim != 2:
        raise SignalError("delta expects a (frames, coeffs) matrix")
    if width < 1:
        raise ConfigurationError("delta width must be >= 1")
    padded = np.pad(feats, ((width, width), (0, 0)), mode="edge")
    numerator = np.zeros_like(feats)
    for k in range(1, width + 1):
        numerator += k * (padded[width + k :][: feats.shape[0]] - padded[width - k :][: feats.shape[0]])
    denominator = 2.0 * sum(k**2 for k in range(1, width + 1))
    return numerator / denominator


@dataclass
class MFCCExtractor:
    """Configurable MFCC front-end.

    Defaults follow the common Spear/ASV recipe: 25 ms frames, 10 ms hop,
    24 mel filters, 19 cepstra + log-energy, plus Δ and ΔΔ when
    ``append_deltas`` — a 40-dimensional vector per frame.
    """

    sample_rate: int = DEFAULT_SAMPLE_RATE_HZ
    frame_ms: float = 25.0
    hop_ms: float = 10.0
    n_filters: int = 24
    n_ceps: int = 19
    low_hz: float = 100.0
    high_hz: float | None = None
    preemphasis_coefficient: float = 0.97
    lifter: int = 22
    append_energy: bool = True
    append_deltas: bool = True
    #: When set, the spectral stage (window → FFT → filterbank → DCT) runs
    #: over blocks of this many frames instead of the whole utterance,
    #: bounding the FFT workspace.  Results agree with whole-utterance
    #: extraction to FFT round-off (~1e-13); deltas are always computed
    #: over the full utterance.
    chunk_frames: int | None = None
    _bank: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ConfigurationError("sample_rate must be positive")
        if self.n_ceps <= 0 or self.n_ceps > self.n_filters:
            raise ConfigurationError("need 0 < n_ceps <= n_filters")
        self._frame_length = int(round(self.sample_rate * self.frame_ms / 1000.0))
        self._hop_length = int(round(self.sample_rate * self.hop_ms / 1000.0))
        self._n_fft = 1 << (self._frame_length - 1).bit_length()
        self._bank = mel_filterbank(
            self.n_filters, self._n_fft, self.sample_rate, self.low_hz, self.high_hz
        )
        if self.lifter > 0:
            n = np.arange(self.n_ceps)
            self._lifter_weights = 1.0 + (self.lifter / 2.0) * np.sin(
                np.pi * n / self.lifter
            )
        else:
            self._lifter_weights = np.ones(self.n_ceps)

    @property
    def dimension(self) -> int:
        """Dimensionality of the emitted feature vectors."""
        base = self.n_ceps + (1 if self.append_energy else 0)
        return base * 3 if self.append_deltas else base

    def extract(self, waveform: np.ndarray) -> np.ndarray:
        """MFCC matrix, shape ``(n_frames, self.dimension)``."""
        x = np.asarray(waveform, dtype=float)
        if x.ndim != 1:
            raise SignalError("extract expects a 1-D waveform")
        if x.size < self._frame_length:
            raise SignalError(
                f"waveform ({x.size} samples) shorter than one frame "
                f"({self._frame_length})"
            )
        x = preemphasis(x, self.preemphasis_coefficient)
        frames = frame_signal(x, self._frame_length, self._hop_length, pad=True)
        if self.chunk_frames is None or frames.shape[0] <= self.chunk_frames:
            ceps = self._frames_to_ceps(frames)
        else:
            ceps = np.vstack(
                [
                    self._frames_to_ceps(frames[s : s + self.chunk_frames])
                    for s in range(0, frames.shape[0], self.chunk_frames)
                ]
            )
        if self.append_deltas:
            d1 = delta(ceps)
            d2 = delta(d1)
            ceps = np.column_stack([ceps, d1, d2])
        return sanitize.check_array("mel.mfcc", ceps)

    def _frames_to_ceps(self, frames: np.ndarray) -> np.ndarray:
        """Spectral stage for a block of frames (no deltas)."""
        windowed = frames * np.hamming(self._frame_length)[None, :]
        spectrum = np.abs(np.fft.rfft(windowed, n=self._n_fft, axis=1)) ** 2
        mel_energies = spectrum @ self._bank.T
        log_mel = np.log(np.maximum(mel_energies, 1e-12))
        ceps = dct(log_mel, type=2, axis=1, norm="ortho")[:, : self.n_ceps]
        ceps = ceps * self._lifter_weights[None, :]
        if self.append_energy:
            energy = np.log(np.maximum((frames**2).sum(axis=1), 1e-12))
            ceps = np.column_stack([ceps, energy])
        return ceps

    def stream(self, block_frames: int | None = None) -> "StreamingMFCC":
        """A :class:`StreamingMFCC` session bound to this configuration."""
        return StreamingMFCC(self, block_frames)

    def extract_with_cmvn(self, waveform: np.ndarray) -> np.ndarray:
        """MFCCs with per-utterance cepstral mean/variance normalisation.

        CMVN removes stationary channel colouration — without it, a replayed
        recording's loudspeaker response would dominate inter-speaker
        differences and make Table I's cross-corpus test meaningless.
        """
        feats = self.extract(waveform)
        mean = feats.mean(axis=0, keepdims=True)
        std = feats.std(axis=0, keepdims=True)
        return (feats - mean) / np.where(std > 1e-8, std, 1.0)


class StreamingMFCC:
    """Incremental MFCC extraction over arbitrary-size audio chunks.

    ``push`` buffers samples in a bounded ring buffer and runs the
    spectral stage as soon as ``block_frames`` complete frames are
    available, so peak memory is the block — not the capture.
    ``finalize`` pads the tail exactly like whole-utterance framing,
    processes the remaining partial block, and computes deltas over the
    full cepstral matrix.

    The per-chunk pre-emphasis carries the previous chunk's last raw
    sample, so every ``y[n] = x[n] − a·x[n−1]`` sees the same operands as
    the one-shot pass; blocks are cut at the same frame boundaries the
    batch ``chunk_frames`` path uses.  The result is **bitwise-identical**
    to ``MFCCExtractor(..., chunk_frames=block_frames).extract(x)`` on the
    concatenated signal, regardless of how the pushes split it (pinned in
    ``tests/test_vectorized_kernels.py``).
    """

    def __init__(self, extractor: MFCCExtractor, block_frames: int | None = None):
        self.extractor = extractor
        self.block_frames = int(
            block_frames or extractor.chunk_frames or 256
        )
        if self.block_frames <= 0:
            raise ConfigurationError("block_frames must be positive")
        self._carry: float | None = None  # last raw sample of previous push
        self._pre = np.empty(0)  # pre-emphasised samples from _offset on
        self._offset = 0  # global sample index of _pre[0]
        self._next_frame = 0  # first not-yet-emitted frame index
        self._blocks: list[np.ndarray] = []
        self._polled = 0  # blocks already handed out by poll()
        self._total = 0
        self._finalized = False

    def push(self, chunk: np.ndarray) -> None:
        """Consume the next chunk of the waveform."""
        if self._finalized:
            raise SignalError("push after finalize")
        x = np.asarray(chunk, dtype=float)
        if x.ndim != 1:
            raise SignalError("push expects a 1-D chunk")
        if x.size == 0:
            return
        # Same elementwise y[n] = x[n] − a·x[n−1] the one-shot pass runs;
        # the first sample of the stream passes through unchanged.
        coeff = self.extractor.preemphasis_coefficient
        if self._carry is None:
            pre = np.append(x[0], x[1:] - coeff * x[:-1])
        else:
            prev = np.concatenate([[self._carry], x[:-1]])
            pre = x - coeff * prev
        self._carry = float(x[-1])
        self._total += x.size
        self._pre = np.concatenate([self._pre, pre])
        self._drain(final=False)

    def _drain(self, final: bool) -> None:
        ext = self.extractor
        length, hop = ext._frame_length, ext._hop_length
        block = self.block_frames
        while True:
            avail_end = self._offset + self._pre.size
            if avail_end < length:
                break
            n_ready = (avail_end - length) // hop + 1 - self._next_frame
            if n_ready < block and not (final and n_ready > 0):
                break
            count = min(n_ready, block)
            local = self._next_frame * hop - self._offset
            windows = np.lib.stride_tricks.sliding_window_view(self._pre, length)
            frames = np.ascontiguousarray(windows[local::hop][:count])
            self._blocks.append(ext._frames_to_ceps(frames))
            self._next_frame += count
            # Ring-buffer trim: nothing before the next frame's start is
            # ever read again.
            keep_from = self._next_frame * hop
            if keep_from > self._offset:
                self._pre = self._pre[keep_from - self._offset :]
                self._offset = keep_from

    def poll(self) -> np.ndarray:
        """Cepstral frames completed since the last :meth:`poll`.

        Returns the newly finished spectral-stage blocks (pre-delta,
        pre-CMVN — window-level post-processing is the caller's job; see
        :class:`repro.core.continuous.ContinuousSession`) stacked into a
        ``(frames, ceps)`` matrix, or an empty ``(0, d)`` matrix when no
        block completed.  Polling does not disturb :meth:`finalize`: the
        full matrix is still returned there, deltas computed over the
        whole utterance.
        """
        width = self.extractor.n_ceps + (
            1 if self.extractor.append_energy else 0
        )
        if self._polled >= len(self._blocks):
            return np.empty((0, width))
        new = np.vstack(self._blocks[self._polled :])
        self._polled = len(self._blocks)
        return new

    def finalize(self) -> np.ndarray:
        """Flush the tail and return the full feature matrix."""
        if self._finalized:
            raise SignalError("finalize called twice")
        self._finalized = True
        ext = self.extractor
        length, hop = ext._frame_length, ext._hop_length
        if self._total < length:
            raise SignalError(
                f"waveform ({self._total} samples) shorter than one frame "
                f"({length})"
            )
        # Zero-pad the tail exactly as frame_signal(pad=True) would.
        remainder = (self._total - length) % hop
        if remainder:
            self._pre = np.pad(self._pre, (0, hop - remainder))
        self._drain(final=True)
        ceps = np.vstack(self._blocks) if len(self._blocks) > 1 else self._blocks[0]
        if ext.append_deltas:
            d1 = delta(ceps)
            d2 = delta(d1)
            ceps = np.column_stack([ceps, d1, d2])
        return sanitize.check_array("mel.mfcc", ceps)
