"""Reproduction of "You Can Hear But You Cannot Steal" (ICDCS 2017).

A software-only defense against voice impersonation attacks on
smartphones, rebuilt end-to-end in Python: the four-component
verification cascade (:mod:`repro.core`), the signal-processing, sensing
and machine-learning substrates it stands on, the full adversary model
(:mod:`repro.attacks`), a physics-grounded scene simulator standing in
for the paper's hardware testbed (:mod:`repro.world`), and the
experiment harness that regenerates every table and figure
(:mod:`repro.experiments`).

Entry points:

- :func:`repro.experiments.build_world` — a fully trained system plus
  enrolled users in one call;
- :class:`repro.core.DefenseSystem` — the enrol/verify API;
- :class:`repro.asv.SpeakerVerifier` — the standalone ASV toolkit.
"""

__version__ = "1.0.0"

__all__ = [
    "asv",
    "attacks",
    "core",
    "devices",
    "dsp",
    "errors",
    "experiments",
    "ml",
    "physics",
    "sensors",
    "server",
    "voice",
    "world",
]
