"""Universal background model and MAP adaptation.

The "UBM" system of Table I is the classical GMM-UBM recipe: train one
speaker-independent GMM on a background population, then derive each
enrolled speaker's model by maximum-a-posteriori adaptation of the UBM
means toward the enrolment data (Reynolds-style relevance-factor MAP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.asv.gmm import DiagonalGMM
from repro.errors import ConfigurationError, NotFittedError


@dataclass
class SufficientStatistics:
    """Baum–Welch statistics of one utterance against a UBM.

    ``n`` — zeroth order (per-component soft counts), shape ``(C,)``;
    ``f`` — first order, **centred on the UBM means**, shape ``(C, D)``.
    Centred statistics are what both MAP adaptation and ISV consume.
    """

    n: np.ndarray
    f: np.ndarray

    def __add__(self, other: "SufficientStatistics") -> "SufficientStatistics":
        return SufficientStatistics(self.n + other.n, self.f + other.f)


class UniversalBackgroundModel:
    """A trained UBM plus the statistics/adaptation operations around it."""

    def __init__(self, n_components: int = 32, seed: int = 0, max_iter: int = 40):
        self.gmm = DiagonalGMM(n_components, max_iter=max_iter, seed=seed)

    @property
    def is_fitted(self) -> bool:
        return self.gmm.is_fitted

    @property
    def n_components(self) -> int:
        return self.gmm.n_components

    @property
    def dimension(self) -> int:
        if not self.is_fitted:
            raise NotFittedError("UBM not trained")
        return self.gmm.means_.shape[1]

    def fit(self, feature_matrices: Sequence[np.ndarray]) -> "UniversalBackgroundModel":
        """Train on the pooled frames of a background corpus."""
        if not feature_matrices:
            raise ConfigurationError("need at least one feature matrix")
        pooled = np.vstack([np.asarray(m, dtype=float) for m in feature_matrices])
        self.gmm.fit(pooled)
        return self

    def statistics(self, features: np.ndarray) -> SufficientStatistics:
        """Centred Baum–Welch statistics of one utterance."""
        if not self.is_fitted:
            raise NotFittedError("UBM not trained")
        features = np.asarray(features, dtype=float)
        resp = self.gmm.responsibilities(features)
        n = resp.sum(axis=0)
        f = resp.T @ features - n[:, None] * self.gmm.means_
        return SufficientStatistics(n=n, f=f)

    def pooled_statistics(
        self, feature_matrices: Sequence[np.ndarray]
    ) -> Tuple[List[SufficientStatistics], SufficientStatistics]:
        """Per-utterance statistics plus their sum."""
        per_utt = [self.statistics(m) for m in feature_matrices]
        total = per_utt[0]
        for s in per_utt[1:]:
            total = total + s
        return per_utt, total


def map_adapt(
    ubm: UniversalBackgroundModel,
    enrolment_features: Sequence[np.ndarray],
    relevance_factor: float = 4.0,
) -> DiagonalGMM:
    """Means-only MAP adaptation (Reynolds et al. 2000).

    ``µ_k ← α_k·E_k(x) + (1−α_k)·µ_k`` with ``α_k = n_k/(n_k + r)``.
    Weights and variances stay at the UBM values, which keeps the
    fast linear LLR approximation valid.
    """
    if relevance_factor <= 0:
        raise ConfigurationError("relevance_factor must be positive")
    if not enrolment_features:
        raise ConfigurationError("enrolment needs at least one utterance")
    _, total = ubm.pooled_statistics(enrolment_features)
    n = total.n
    # total.f is centred on the UBM means, so E_k(x) − µ_k = f_k / n_k.
    alpha = n / (n + relevance_factor)
    safe_n = np.where(n > 1e-8, n, 1.0)
    mean_shift = alpha[:, None] * (total.f / safe_n[:, None])
    adapted = ubm.gmm.copy()
    adapted.set_parameters(
        ubm.gmm.weights_.copy(),
        ubm.gmm.means_ + mean_shift,
        ubm.gmm.variances_.copy(),
    )
    return adapted
