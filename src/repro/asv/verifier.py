"""High-level speaker verification facade (the "Spear system" role).

:class:`SpeakerVerifier` wires the MFCC front-end, UBM, and a selectable
back-end (GMM-UBM MAP or ISV) into the enrol/verify interface the defense
pipeline's fourth component consumes.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Sequence

import numpy as np

from repro.asv.gmm import DiagonalGMM
from repro.asv.isv import ISVModel
from repro.asv.scoring import llr_score, llr_score_batch, llr_score_multi
from repro.asv.ubm import UniversalBackgroundModel, map_adapt
from repro.constants import DEFAULT_SAMPLE_RATE_HZ
from repro.dsp.mel import MFCCExtractor
from repro.dsp.vad import trim_silence
from repro.errors import ConfigurationError, NotFittedError


class VerifierBackend(enum.Enum):
    """Back-ends evaluated in Table I."""

    GMM_UBM = "ubm"
    ISV = "isv"


class SpeakerVerifier:
    """Text-dependent speaker verification with a trainable background.

    Usage::

        verifier = SpeakerVerifier(backend=VerifierBackend.GMM_UBM)
        verifier.train_background(background_waveforms_by_speaker)
        verifier.enroll("alice", alice_waveforms)
        score = verifier.verify("alice", test_waveform)

    Scores are log-likelihood ratios (GMM-UBM) or linear ISV scores; both
    are "higher is more genuine" and are thresholded by the caller.
    """

    def __init__(
        self,
        backend: VerifierBackend = VerifierBackend.GMM_UBM,
        sample_rate: int = DEFAULT_SAMPLE_RATE_HZ,
        n_components: int = 32,
        isv_rank: int = 10,
        relevance_factor: float = 4.0,
        seed: int = 0,
    ):
        self.backend = backend
        self.sample_rate = sample_rate
        self.extractor = MFCCExtractor(sample_rate=sample_rate)
        self.ubm = UniversalBackgroundModel(n_components=n_components, seed=seed)
        self.isv_rank = isv_rank
        self.relevance_factor = relevance_factor
        self._isv: ISVModel | None = None
        self._speaker_models: Dict[str, DiagonalGMM] = {}
        self._speaker_offsets: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Front-end
    # ------------------------------------------------------------------
    def features(self, waveform: np.ndarray) -> np.ndarray:
        """VAD-trimmed, CMVN-normalised MFCCs for one waveform."""
        trimmed = trim_silence(np.asarray(waveform, dtype=float), self.sample_rate)
        return self.extractor.extract_with_cmvn(trimmed)

    # ------------------------------------------------------------------
    # Training / enrolment
    # ------------------------------------------------------------------
    def train_background(
        self, waveforms_by_speaker: Dict[str, Sequence[np.ndarray]]
    ) -> "SpeakerVerifier":
        """Train the UBM (and ISV subspace) on a background corpus."""
        if not waveforms_by_speaker:
            raise ConfigurationError("background corpus is empty")
        features_by_speaker = {
            sid: [self.features(w) for w in waves]
            for sid, waves in waveforms_by_speaker.items()
        }
        pooled: List[np.ndarray] = [
            f for feats in features_by_speaker.values() for f in feats
        ]
        self.ubm.fit(pooled)
        if self.backend is VerifierBackend.ISV:
            self._isv = ISVModel(
                self.ubm,
                rank=self.isv_rank,
                relevance_factor=self.relevance_factor,
            ).fit(features_by_speaker)
        return self

    def enroll(
        self, speaker_id: str, waveforms: Sequence[np.ndarray]
    ) -> "SpeakerVerifier":
        """Create (or replace) a speaker model from enrolment utterances."""
        if not self.ubm.is_fitted:
            raise NotFittedError("train_background must run before enroll")
        if not waveforms:
            raise ConfigurationError("enrolment needs at least one utterance")
        feats = [self.features(w) for w in waveforms]
        if self.backend is VerifierBackend.ISV:
            assert self._isv is not None
            self._speaker_offsets[speaker_id] = self._isv.enroll(feats)
        else:
            self._speaker_models[speaker_id] = map_adapt(
                self.ubm, feats, self.relevance_factor
            )
        return self

    @property
    def enrolled_speakers(self) -> List[str]:
        if self.backend is VerifierBackend.ISV:
            return sorted(self._speaker_offsets)
        return sorted(self._speaker_models)

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify(self, claimed_speaker: str, waveform: np.ndarray) -> float:
        """Score a claim; higher supports the claimed identity."""
        feats = self.features(waveform)
        return self.verify_features(claimed_speaker, feats)

    def verify_features(self, claimed_speaker: str, features: np.ndarray) -> float:
        """Score pre-extracted features (lets callers cache the front-end)."""
        if self.backend is VerifierBackend.ISV:
            if claimed_speaker not in self._speaker_offsets:
                raise ConfigurationError(f"speaker {claimed_speaker!r} not enrolled")
            assert self._isv is not None
            return self._isv.score(self._speaker_offsets[claimed_speaker], features)
        if claimed_speaker not in self._speaker_models:
            raise ConfigurationError(f"speaker {claimed_speaker!r} not enrolled")
        return llr_score(
            self._speaker_models[claimed_speaker], self.ubm.gmm, features
        )

    def verify_batch(
        self, claimed_speaker: str, waveforms: Sequence[np.ndarray]
    ) -> List[float]:
        """Score several utterances claiming the same identity at once."""
        return self.verify_features_batch(
            claimed_speaker, [self.features(w) for w in waveforms]
        )

    def verify_features_batch(
        self, claimed_speaker: str, features_list: Sequence[np.ndarray]
    ) -> List[float]:
        """Batched :meth:`verify_features` against one claimed speaker.

        GMM-UBM claims are scored in a single vectorised likelihood pass
        (see :func:`repro.asv.scoring.llr_score_batch`); ISV scoring needs
        per-utterance sufficient statistics, so only the model lookup is
        amortised there.  Either way the scores are bitwise-equal to the
        sequential path, which lets the serving gateway batch freely.
        """
        if not features_list:
            return []
        if self.backend is VerifierBackend.ISV:
            if claimed_speaker not in self._speaker_offsets:
                raise ConfigurationError(f"speaker {claimed_speaker!r} not enrolled")
            assert self._isv is not None
            offset = self._speaker_offsets[claimed_speaker]
            return [self._isv.score(offset, f) for f in features_list]
        if claimed_speaker not in self._speaker_models:
            raise ConfigurationError(f"speaker {claimed_speaker!r} not enrolled")
        return llr_score_batch(
            self._speaker_models[claimed_speaker], self.ubm.gmm, features_list
        )

    def verify_multi(
        self, claims: Sequence[str], waveforms: Sequence[np.ndarray]
    ) -> List[float]:
        """Score utterances claiming (possibly) different identities at once."""
        return self.verify_features_multi(
            claims, [self.features(w) for w in waveforms]
        )

    def verify_features_multi(
        self, claims: Sequence[str], features_list: Sequence[np.ndarray]
    ) -> List[float]:
        """Cross-speaker batched :meth:`verify_features`.

        ``claims[i]`` is the identity utterance ``i`` claims.  GMM-UBM
        claims share a single stacked UBM pass plus one grouped pass per
        distinct claimed model (:func:`repro.asv.scoring.llr_score_multi`);
        ISV falls back to per-utterance scoring.  All claims are validated
        up front so an un-enrolled speaker fails the whole call — the
        gateway's sequential fallback then reproduces the per-request
        error.  Scores are bitwise-equal to the sequential path.
        """
        if len(claims) != len(features_list):
            raise ConfigurationError("claims and features_list must align")
        if not features_list:
            return []
        if self.backend is VerifierBackend.ISV:
            for claimed in claims:
                if claimed not in self._speaker_offsets:
                    raise ConfigurationError(f"speaker {claimed!r} not enrolled")
            assert self._isv is not None
            return [
                self._isv.score(self._speaker_offsets[claimed], f)
                for claimed, f in zip(claims, features_list)
            ]
        for claimed in claims:
            if claimed not in self._speaker_models:
                raise ConfigurationError(f"speaker {claimed!r} not enrolled")
        return llr_score_multi(
            [self._speaker_models[claimed] for claimed in claims],
            self.ubm.gmm,
            features_list,
        )
