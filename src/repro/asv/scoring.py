"""Verification scoring functions."""

from __future__ import annotations

import numpy as np

from repro.asv.gmm import DiagonalGMM


def llr_score(
    speaker_model: DiagonalGMM, ubm: DiagonalGMM, features: np.ndarray
) -> float:
    """Average per-frame log-likelihood ratio speaker vs UBM.

    The classical GMM-UBM verification score: positive means the utterance
    fits the claimed speaker better than the background population.
    """
    return speaker_model.log_likelihood(features) - ubm.log_likelihood(features)


def zt_normalize(
    raw_score: float,
    cohort_scores: np.ndarray,
) -> float:
    """Z-norm a raw score against a cohort of impostor scores.

    Score normalisation stabilises thresholds across speakers; the paper's
    Spear configuration applies it by default.
    """
    cohort = np.asarray(cohort_scores, dtype=float)
    if cohort.size < 2:
        return raw_score
    std = float(cohort.std())
    if std <= 1e-12:
        return raw_score - float(cohort.mean())
    return (raw_score - float(cohort.mean())) / std
