"""Verification scoring functions."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.asv.gmm import DiagonalGMM


def llr_score(
    speaker_model: DiagonalGMM, ubm: DiagonalGMM, features: np.ndarray
) -> float:
    """Average per-frame log-likelihood ratio speaker vs UBM.

    The classical GMM-UBM verification score: positive means the utterance
    fits the claimed speaker better than the background population.
    """
    return speaker_model.log_likelihood(features) - ubm.log_likelihood(features)


def llr_score_batch(
    speaker_model: DiagonalGMM,
    ubm: DiagonalGMM,
    features_list: Sequence[np.ndarray],
) -> List[float]:
    """Score several utterances against the *same* speaker model at once.

    Stacks all frames and evaluates each mixture in a single vectorised
    pass, amortising the per-call Gaussian constants (log-determinants,
    weight logs) and the broadcast setup over the whole batch.  Each
    utterance's score is the mean of its own frame slice, so the result is
    bitwise-equal to calling :func:`llr_score` per utterance — frame-level
    likelihoods are row-independent.
    """
    if not features_list:
        return []
    segments = [np.asarray(f, dtype=float) for f in features_list]
    lengths = [s.shape[0] for s in segments]
    stacked = np.vstack(segments)
    spk = speaker_model.frame_log_likelihoods(stacked)
    bg = ubm.frame_log_likelihoods(stacked)
    scores: List[float] = []
    start = 0
    for n in lengths:
        stop = start + n
        scores.append(float(spk[start:stop].mean()) - float(bg[start:stop].mean()))
        start = stop
    return scores


def llr_score_multi(
    speaker_models: Sequence[DiagonalGMM],
    ubm: DiagonalGMM,
    features_list: Sequence[np.ndarray],
) -> List[float]:
    """Score utterances claiming *different* speakers in one fused pass.

    ``speaker_models[i]`` is the model utterance ``i`` claims (the same
    object may appear many times).  The shared UBM evaluates **all**
    frames in a single stacked call; each distinct speaker model
    evaluates its claimants' frames in one grouped call.  Frame-level
    likelihoods are row-independent, so every per-utterance mean — and
    therefore every score — is bitwise-equal to calling
    :func:`llr_score` per utterance, which is what lets the gateway
    batch identity scoring across concurrent users.
    """
    if len(speaker_models) != len(features_list):
        raise ValueError("speaker_models and features_list must align")
    if not features_list:
        return []
    segments = [np.asarray(f, dtype=float) for f in features_list]
    lengths = [s.shape[0] for s in segments]
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    stacked = np.vstack(segments)
    bg = ubm.frame_log_likelihoods(stacked)

    # Group utterances by model identity; each group's frames are stacked
    # once and the group model runs one vectorised pass over them.
    groups: dict[int, List[int]] = {}
    model_by_id: dict[int, DiagonalGMM] = {}
    for i, model in enumerate(speaker_models):
        groups.setdefault(id(model), []).append(i)
        model_by_id[id(model)] = model
    scores: List[float] = [0.0] * len(segments)
    for key, members in groups.items():
        model = model_by_id[key]
        spk = model.frame_log_likelihoods(
            np.vstack([segments[i] for i in members])
        )
        start = 0
        for i in members:
            stop = start + lengths[i]
            scores[i] = float(spk[start:stop].mean()) - float(
                bg[offsets[i] : offsets[i + 1]].mean()
            )
            start = stop
    return scores


def zt_normalize(
    raw_score: float,
    cohort_scores: np.ndarray,
) -> float:
    """Z-norm a raw score against a cohort of impostor scores.

    Score normalisation stabilises thresholds across speakers; the paper's
    Spear configuration applies it by default.
    """
    cohort = np.asarray(cohort_scores, dtype=float)
    if cohort.size < 2:
        return raw_score
    std = float(cohort.std())
    if std <= 1e-12:
        return raw_score - float(cohort.mean())
    return (raw_score - float(cohort.mean())) / std
