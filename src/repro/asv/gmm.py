"""Diagonal-covariance Gaussian mixture model with EM training."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.ml.kmeans import KMeans

#: Floor applied to variances to keep log-densities finite.
VARIANCE_FLOOR = 1e-4


class DiagonalGMM:
    """GMM with diagonal covariances — the standard ASV density model.

    Training runs k-means++ for initial means, then EM to convergence.
    All responsibilities/likelihood math is done in log space.
    """

    def __init__(
        self,
        n_components: int,
        max_iter: int = 50,
        tol: float = 1e-4,
        seed: int = 0,
    ):
        if n_components <= 0:
            raise ConfigurationError("n_components must be positive")
        self.n_components = n_components
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.means_: np.ndarray | None = None
        self.variances_: np.ndarray | None = None
        # (weights, variances, log_weights, const) — identity-keyed cache of
        # the per-component normalisation terms; holding the keyed arrays
        # keeps their ids live so an `is` check cannot alias.
        self._ll_cache: tuple | None = None

    # ------------------------------------------------------------------
    # Parameter plumbing
    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self.means_ is not None

    def set_parameters(
        self, weights: np.ndarray, means: np.ndarray, variances: np.ndarray
    ) -> "DiagonalGMM":
        """Install parameters directly (used by MAP adaptation and ISV)."""
        weights = np.asarray(weights, dtype=float)
        means = np.asarray(means, dtype=float)
        variances = np.asarray(variances, dtype=float)
        if means.ndim != 2 or means.shape[0] != self.n_components:
            raise ConfigurationError("means must be (n_components, d)")
        if variances.shape != means.shape:
            raise ConfigurationError("variances must match means shape")
        if weights.shape != (self.n_components,):
            raise ConfigurationError("weights must be (n_components,)")
        if not np.isclose(weights.sum(), 1.0, atol=1e-6):
            raise ConfigurationError("weights must sum to 1")
        self.weights_ = weights / weights.sum()
        self.means_ = means
        self.variances_ = np.maximum(variances, VARIANCE_FLOOR)
        return self

    def copy(self) -> "DiagonalGMM":
        """Deep copy (parameters included)."""
        clone = DiagonalGMM(self.n_components, self.max_iter, self.tol, self.seed)
        if self.is_fitted:
            clone.set_parameters(
                self.weights_.copy(), self.means_.copy(), self.variances_.copy()
            )
        return clone

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray) -> "DiagonalGMM":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ConfigurationError("fit expects a (n, d) matrix")
        if x.shape[0] < self.n_components * 2:
            raise ConfigurationError(
                f"{x.shape[0]} frames are too few for {self.n_components} components"
            )
        km = KMeans(self.n_components, seed=self.seed).fit(x)
        labels = km.predict(x)
        d = x.shape[1]
        weights = np.empty(self.n_components)
        means = km.centers_.copy()
        variances = np.empty((self.n_components, d))
        global_var = np.maximum(x.var(axis=0), VARIANCE_FLOOR)
        for k in range(self.n_components):
            members = x[labels == k]
            weights[k] = max(len(members), 1)
            variances[k] = members.var(axis=0) if len(members) > 1 else global_var
        self.weights_ = weights / weights.sum()
        self.means_ = means
        self.variances_ = np.maximum(variances, VARIANCE_FLOOR)

        prev_ll = -np.inf
        for _ in range(self.max_iter):
            log_resp, ll = self._e_step(x)
            self._m_step(x, log_resp)
            if ll - prev_ll < self.tol * max(abs(prev_ll), 1.0):
                break
            prev_ll = ll
        return self

    def _e_step(self, x: np.ndarray) -> tuple[np.ndarray, float]:
        log_prob = self.component_log_likelihoods(x)
        log_norm = _logsumexp(log_prob, axis=1)
        log_resp = log_prob - log_norm[:, None]
        return log_resp, float(log_norm.mean())

    def _m_step(self, x: np.ndarray, log_resp: np.ndarray) -> None:
        resp = np.exp(log_resp)
        nk = resp.sum(axis=0) + 1e-10
        self.weights_ = nk / nk.sum()
        self.means_ = (resp.T @ x) / nk[:, None]
        sq = (resp.T @ (x**2)) / nk[:, None]
        self.variances_ = np.maximum(sq - self.means_**2, VARIANCE_FLOOR)

    # ------------------------------------------------------------------
    # Likelihood evaluation
    # ------------------------------------------------------------------
    def component_log_likelihoods(self, x: np.ndarray) -> np.ndarray:
        """``log(w_k · N(x | µ_k, Σ_k))`` for every frame/component pair."""
        if not self.is_fitted:
            raise NotFittedError("GMM used before fit/set_parameters")
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.means_.shape[1]:
            raise ConfigurationError(
                f"expected frames of dimension {self.means_.shape[1]}"
            )
        d = x.shape[1]
        cache = self._ll_cache
        if (
            cache is None
            or cache[0] is not self.weights_
            or cache[1] is not self.variances_
        ):
            log_det = np.sum(np.log(self.variances_), axis=1)
            const = -0.5 * (d * np.log(2.0 * np.pi) + log_det)
            cache = (self.weights_, self.variances_, np.log(self.weights_), const)
            self._ll_cache = cache
        log_w, const = cache[2], cache[3]
        diff = x[:, None, :] - self.means_[None, :, :]
        # Square and scale in place: same values, same reduction order as
        # ``sum(diff**2 / var)``, two fewer (n, C, d) temporaries.
        np.multiply(diff, diff, out=diff)
        np.divide(diff, self.variances_[None, :, :], out=diff)
        mahal = np.sum(diff, axis=2)
        return log_w[None, :] + const[None, :] - 0.5 * mahal

    def frame_log_likelihoods(self, x: np.ndarray) -> np.ndarray:
        """Per-frame mixture log-likelihoods, shape ``(n,)``.

        Every row is computed independently, so evaluating a stack of
        utterances in one call and slicing the result is bitwise-identical
        to evaluating each utterance on its own — the batched serving path
        relies on that equivalence.
        """
        return _logsumexp(self.component_log_likelihoods(x), axis=1)

    def log_likelihood(self, x: np.ndarray) -> float:
        """Mean per-frame log-likelihood of ``x`` under the mixture."""
        return float(self.frame_log_likelihoods(x).mean())

    def responsibilities(self, x: np.ndarray) -> np.ndarray:
        """Posterior component probabilities per frame, shape ``(n, C)``."""
        log_resp, _ = self._e_step(np.asarray(x, dtype=float))
        return np.exp(log_resp)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` frames from the mixture (used in tests)."""
        if not self.is_fitted:
            raise NotFittedError("GMM used before fit/set_parameters")
        counts = rng.multinomial(n, self.weights_)
        chunks = []
        for k, c in enumerate(counts):
            if c:
                chunks.append(
                    rng.normal(
                        self.means_[k], np.sqrt(self.variances_[k]), (c, self.means_.shape[1])
                    )
                )
        out = np.vstack(chunks)
        rng.shuffle(out)
        return out


def _logsumexp(a: np.ndarray, axis: int) -> np.ndarray:
    m = np.max(a, axis=axis, keepdims=True)
    return (m + np.log(np.sum(np.exp(a - m), axis=axis, keepdims=True))).squeeze(axis)
