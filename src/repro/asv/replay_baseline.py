"""Audio-only replay detection baseline.

The countermeasure class the paper's related work surveys ([30], [38],
[46], [47], [50]) and dismisses: classifiers over acoustic features of
the *recording itself* — channel colouration, band limits, long-term
spectral statistics.  They work against the devices they were trained on
and degrade on unseen loudspeakers ("all these systems suffer from high
false acceptance rate"), which is exactly the motivation for the
magnetometer approach.

This implementation uses long-term spectral statistics (per-band mean
levels and spectral-flatness measures) with a linear SVM; the
``motivation`` experiment trains it on two factory devices and attacks
through two unseen ones to reproduce the generalisation gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.constants import DEFAULT_SAMPLE_RATE_HZ
from repro.dsp.signal import frame_signal
from repro.dsp.vad import trim_silence
from repro.errors import NotFittedError, SignalError
from repro.ml.scaler import StandardScaler
from repro.ml.svm import LinearSVM

#: Log-spaced analysis band edges (Hz).
_BAND_EDGES = (60.0, 150.0, 400.0, 1000.0, 2500.0, 5000.0, 7800.0)


def replay_features(waveform: np.ndarray, sample_rate: int) -> np.ndarray:
    """Long-term spectral statistics of one utterance.

    Per band: mean log level (relative to the utterance total — captures
    the playback chain's colouration and band limits) and mean spectral
    flatness (loudspeaker compression and band-edge roll-offs flatten
    sub-band structure).
    """
    x = trim_silence(np.asarray(waveform, dtype=float), sample_rate)
    if x.size < sample_rate // 10:
        raise SignalError("utterance too short for replay analysis")
    frame_len = int(0.032 * sample_rate)
    hop = frame_len // 2
    frames = frame_signal(x, frame_len, hop, pad=True)
    window = np.hanning(frame_len)
    spectrum = np.abs(np.fft.rfft(frames * window[None, :], axis=1)) ** 2
    freqs = np.fft.rfftfreq(frame_len, d=1.0 / sample_rate)
    total = spectrum.sum(axis=1)
    keep = total > np.percentile(total, 30.0)
    spectrum = spectrum[keep]

    features = []
    total_level = np.log(np.maximum(spectrum.sum(axis=1), 1e-18))
    for lo, hi in zip(_BAND_EDGES[:-1], _BAND_EDGES[1:]):
        mask = (freqs >= lo) & (freqs < hi)
        band_power = spectrum[:, mask]
        level = np.log(np.maximum(band_power.sum(axis=1), 1e-18))
        features.append(float(np.mean(level - total_level)))
        log_p = np.log(np.maximum(band_power, 1e-18))
        flatness = np.exp(log_p.mean(axis=1)) / np.maximum(
            band_power.mean(axis=1), 1e-18
        )
        features.append(float(np.mean(flatness)))
    return np.asarray(features)


@dataclass
class AudioReplayDetector:
    """Train-on-devices, test-on-the-world replay classifier."""

    sample_rate: int = DEFAULT_SAMPLE_RATE_HZ
    _scaler: StandardScaler = field(default_factory=StandardScaler, repr=False)
    _svm: LinearSVM = field(default_factory=lambda: LinearSVM(lambda_reg=1e-2), repr=False)
    _fitted: bool = field(default=False, repr=False)

    def fit(
        self,
        genuine_waveforms: Sequence[np.ndarray],
        replay_waveforms: Sequence[np.ndarray],
    ) -> "AudioReplayDetector":
        """Train on genuine recordings vs replays through known devices."""
        if not genuine_waveforms or not replay_waveforms:
            raise SignalError("need both genuine and replay training audio")
        x = np.vstack(
            [replay_features(w, self.sample_rate) for w in genuine_waveforms]
            + [replay_features(w, self.sample_rate) for w in replay_waveforms]
        )
        y = np.concatenate(
            [np.ones(len(genuine_waveforms)), -np.ones(len(replay_waveforms))]
        )
        self._svm.fit(self._scaler.fit_transform(x), y)
        self._fitted = True
        return self

    def score(self, waveform: np.ndarray) -> float:
        """Higher = more genuine-like; negative = replay-like."""
        if not self._fitted:
            raise NotFittedError("AudioReplayDetector used before fit")
        feats = replay_features(waveform, self.sample_rate)[None, :]
        return float(self._svm.decision_function(self._scaler.transform(feats))[0])

    def is_replay(self, waveform: np.ndarray) -> bool:
        return self.score(waveform) < 0.0
