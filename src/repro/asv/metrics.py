"""Verification metrics: FAR, FRR, EER and DET curves.

Terminology follows the paper's Table III: a *false acceptance* is an
impostor scored above threshold; a *false rejection* is a genuine trial
scored below it.  The equal error rate is where the two curves cross as
the threshold sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


def far_frr_at_threshold(
    genuine_scores: np.ndarray,
    impostor_scores: np.ndarray,
    threshold: float,
) -> tuple[float, float]:
    """(FAR, FRR) at a fixed decision threshold (accept when ≥ threshold)."""
    genuine = np.asarray(genuine_scores, dtype=float)
    impostor = np.asarray(impostor_scores, dtype=float)
    far = float(np.mean(impostor >= threshold)) if impostor.size else 0.0
    frr = float(np.mean(genuine < threshold)) if genuine.size else 0.0
    return far, frr


@dataclass(frozen=True)
class DETCurve:
    """FAR/FRR as a function of threshold."""

    thresholds: np.ndarray
    far: np.ndarray
    frr: np.ndarray


def roc_points(
    genuine_scores: np.ndarray,
    impostor_scores: np.ndarray,
    n_thresholds: int = 512,
) -> DETCurve:
    """Sweep thresholds across the observed score range."""
    genuine = np.asarray(genuine_scores, dtype=float)
    impostor = np.asarray(impostor_scores, dtype=float)
    if genuine.size == 0 and impostor.size == 0:
        raise ConfigurationError("need at least one score")
    pooled = np.concatenate([genuine, impostor])
    lo, hi = float(pooled.min()), float(pooled.max())
    pad = max(1e-9, 0.01 * (hi - lo))
    thresholds = np.linspace(lo - pad, hi + pad, n_thresholds)
    far = np.empty(n_thresholds)
    frr = np.empty(n_thresholds)
    for i, th in enumerate(thresholds):
        far[i], frr[i] = far_frr_at_threshold(genuine, impostor, th)
    return DETCurve(thresholds=thresholds, far=far, frr=frr)


def equal_error_rate(
    genuine_scores: np.ndarray, impostor_scores: np.ndarray
) -> tuple[float, float]:
    """(EER, threshold) where FAR and FRR cross.

    Returns the midpoint of FAR and FRR at the threshold minimising their
    gap — the standard finite-sample EER estimate.
    """
    curve = roc_points(genuine_scores, impostor_scores)
    gap = np.abs(curve.far - curve.frr)
    # With separable scores a whole threshold range achieves the minimum
    # gap; take its midpoint so the operating point sits centred between
    # the score distributions rather than hugging the impostor tail.
    ties = np.nonzero(gap == gap.min())[0]
    idx = int(ties[len(ties) // 2])
    eer = float((curve.far[idx] + curve.frr[idx]) / 2.0)
    return eer, float(curve.thresholds[idx])


def accuracy_at_threshold(
    genuine_scores: np.ndarray,
    impostor_scores: np.ndarray,
    threshold: float,
) -> float:
    """Overall correct-decision rate at a threshold."""
    genuine = np.asarray(genuine_scores, dtype=float)
    impostor = np.asarray(impostor_scores, dtype=float)
    total = genuine.size + impostor.size
    if total == 0:
        raise ConfigurationError("need at least one score")
    correct = int(np.sum(genuine >= threshold)) + int(np.sum(impostor < threshold))
    return correct / total
