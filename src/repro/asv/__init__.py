"""Automatic speaker verification back-end (Spear-style).

Reimplements the components the paper takes from the Bob/Spear toolbox
[21]: a diagonal-covariance GMM trained with EM, a universal background
model (UBM) with MAP adaptation for enrolment ("UBM" rows of Table I), an
inter-session variability (ISV) model ("ISV" rows), log-likelihood-ratio
scoring, and the FAR/FRR/EER metrics used throughout the evaluation.
"""

from repro.asv.gmm import DiagonalGMM
from repro.asv.ubm import UniversalBackgroundModel, map_adapt
from repro.asv.isv import ISVModel
from repro.asv.scoring import llr_score
from repro.asv.metrics import (
    DETCurve,
    equal_error_rate,
    far_frr_at_threshold,
    roc_points,
)
from repro.asv.verifier import SpeakerVerifier, VerifierBackend

__all__ = [
    "DiagonalGMM",
    "UniversalBackgroundModel",
    "map_adapt",
    "ISVModel",
    "llr_score",
    "DETCurve",
    "equal_error_rate",
    "far_frr_at_threshold",
    "roc_points",
    "SpeakerVerifier",
    "VerifierBackend",
]
