"""Inter-session variability (ISV) modelling.

The "ISV" system of Table I.  ISV augments GMM-UBM with a low-rank session
subspace: an utterance's supervector is modelled as

    s = m + U·x + D·z

where ``m`` is the UBM mean supervector, ``U·x`` captures *session*
variability (channel, microphone placement, recording conditions) with a
per-utterance latent ``x``, and ``D·z`` is the *speaker* offset with a
MAP-style diagonal prior.  Verification compensates the session component
before scoring, which is what makes ISV outperform plain MAP across
recording sessions.

Training follows the standard factor-analysis EM on centred Baum–Welch
statistics (as in the Bob/Spear implementation the paper uses).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.asv.ubm import SufficientStatistics, UniversalBackgroundModel
from repro.errors import ConfigurationError, NotFittedError


class ISVModel:
    """Session-compensated speaker modelling on top of a UBM.

    ``rank`` is the dimensionality of the session subspace ``U``;
    ``relevance_factor`` controls the diagonal speaker prior ``D`` exactly
    as in classical MAP.
    """

    def __init__(
        self,
        ubm: UniversalBackgroundModel,
        rank: int = 10,
        relevance_factor: float = 4.0,
        em_iterations: int = 5,
        seed: int = 0,
    ):
        if not ubm.is_fitted:
            raise NotFittedError("ISV requires a trained UBM")
        if rank <= 0:
            raise ConfigurationError("rank must be positive")
        if relevance_factor <= 0:
            raise ConfigurationError("relevance_factor must be positive")
        self.ubm = ubm
        self.rank = rank
        self.relevance_factor = relevance_factor
        self.em_iterations = em_iterations
        self.seed = seed
        c, d = ubm.n_components, ubm.dimension
        self._c, self._d = c, d
        #: Per-supervector-dimension noise variances (UBM variances).
        self._sigma = ubm.gmm.variances_.reshape(-1)
        #: MAP prior scale: D² = Σ / relevance factor.
        self._d_diag = np.sqrt(self._sigma / relevance_factor)
        self.u_: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Helpers on flattened supervector statistics
    # ------------------------------------------------------------------
    def _expand_n(self, n: np.ndarray) -> np.ndarray:
        """Repeat per-component counts across feature dims, shape (CD,)."""
        return np.repeat(n, self._d)

    def _latent_posterior(
        self, stats: SufficientStatistics, f_centred: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and covariance of the session latent ``x``."""
        n_exp = self._expand_n(stats.n)
        u_scaled = self.u_ / self._sigma[:, None]
        precision = np.eye(self.rank) + (self.u_ * n_exp[:, None] / self._sigma[:, None]).T @ self.u_
        cov = np.linalg.inv(precision)
        mean = cov @ (u_scaled.T @ f_centred)
        return mean, cov

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self,
        speaker_features: Dict[str, Sequence[np.ndarray]],
    ) -> "ISVModel":
        """Learn the session subspace ``U`` from a background corpus.

        ``speaker_features`` maps speaker id → list of per-session feature
        matrices.  Statistics are centred per speaker (removing each
        speaker's own offset) so ``U`` absorbs only within-speaker,
        between-session variation.
        """
        if not speaker_features:
            raise ConfigurationError("need at least one background speaker")
        rng = np.random.default_rng(self.seed)
        cd = self._c * self._d
        self.u_ = rng.normal(0.0, 0.001, (cd, self.rank))

        # Pre-compute per-session stats centred on each speaker's mean.
        sessions: List[tuple[SufficientStatistics, np.ndarray]] = []
        for utterances in speaker_features.values():
            per_utt = [self.ubm.statistics(m) for m in utterances]
            total_n = sum(s.n for s in per_utt)
            total_f = sum(s.f for s in per_utt)
            safe_n = np.where(total_n > 1e-8, total_n, 1.0)
            speaker_offset = total_f / safe_n[:, None]  # E[x] − m per component
            for s in per_utt:
                centred = s.f - s.n[:, None] * speaker_offset
                sessions.append((s, centred.reshape(-1)))
        if len(sessions) < 2:
            raise ConfigurationError("ISV training needs at least two sessions")

        for _ in range(self.em_iterations):
            # E-step: session latents.
            acc_a = np.zeros((self._c, self.rank, self.rank))
            acc_b = np.zeros((cd, self.rank))
            for stats, f_centred in sessions:
                x_mean, x_cov = self._latent_posterior(stats, f_centred)
                second_moment = x_cov + np.outer(x_mean, x_mean)
                acc_a += stats.n[:, None, None] * second_moment[None, :, :]
                acc_b += np.outer(f_centred, x_mean)
            # M-step: solve per component block.
            new_u = np.empty_like(self.u_)
            for c in range(self._c):
                block = slice(c * self._d, (c + 1) * self._d)
                a = acc_a[c] + 1e-8 * np.eye(self.rank)
                new_u[block] = np.linalg.solve(a.T, acc_b[block].T).T
            self.u_ = new_u
        return self

    # ------------------------------------------------------------------
    # Enrolment and scoring
    # ------------------------------------------------------------------
    def enroll(self, enrolment_features: Sequence[np.ndarray]) -> np.ndarray:
        """Speaker offset supervector ``D·z`` from enrolment sessions.

        Alternates between estimating each session's latent ``x`` and the
        MAP speaker offset on session-compensated statistics.
        """
        if self.u_ is None:
            raise NotFittedError("ISV subspace not trained")
        if not enrolment_features:
            raise ConfigurationError("enrolment needs at least one utterance")
        per_utt = [self.ubm.statistics(m) for m in enrolment_features]
        cd = self._c * self._d
        offset = np.zeros(cd)
        for _ in range(3):
            compensated_f = np.zeros(cd)
            total_n = np.zeros(self._c)
            for stats in per_utt:
                f_flat = stats.f.reshape(-1) - self._expand_n(stats.n) * offset
                x_mean, _ = self._latent_posterior(stats, f_flat)
                session = self._expand_n(stats.n) * (self.u_ @ x_mean)
                compensated_f += stats.f.reshape(-1) - session
                total_n += stats.n
            n_exp = self._expand_n(total_n)
            alpha = n_exp / (n_exp + self.relevance_factor)
            safe_n = np.where(n_exp > 1e-8, n_exp, 1.0)
            offset = alpha * (compensated_f / safe_n)
        return offset

    def score(self, speaker_offset: np.ndarray, test_features: np.ndarray) -> float:
        """Session-compensated linear score of a test utterance.

        The standard ISV/JFA linear scoring function:
        ``(D·z)ᵀ Σ⁻¹ (F − N·U·x̂)`` normalised by the frame count, where
        ``x̂`` is the test utterance's estimated session latent.
        """
        if self.u_ is None:
            raise NotFittedError("ISV subspace not trained")
        speaker_offset = np.asarray(speaker_offset, dtype=float)
        stats = self.ubm.statistics(test_features)
        f_flat = stats.f.reshape(-1)
        x_mean, _ = self._latent_posterior(stats, f_flat)
        session = self._expand_n(stats.n) * (self.u_ @ x_mean)
        compensated = f_flat - session
        total_frames = max(float(stats.n.sum()), 1.0)
        return float((speaker_offset / self._sigma) @ compensated / total_frames)
