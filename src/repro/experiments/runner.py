"""Trial bookkeeping and the paper's metrics.

The paper reports FAR/FRR at the deployed thresholds and the EER obtained
"by vary[ing] the threshold value of each verification component".  We
reproduce both: decisions give FAR/FRR directly; for the EER each trial
is reduced to a scalar *pipeline margin* — the minimum over components of
the normalised distance to that component's threshold — and a single
offset sweep over the margins traces the DET curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.asv.metrics import equal_error_rate
from repro.core.config import DefenseConfig
from repro.core.decision import VerificationReport
from repro.errors import ConfigurationError

#: Normalisation scales (units of score) so the per-component margins are
#: comparable when merged with ``min``.
_MARGIN_SCALES = {
    "distance": 0.03,
    "soundfield": 3.0,
    "magnetic": 0.5,
    "identity": 1.0,
}


@dataclass(frozen=True)
class TrialOutcome:
    """One verification trial plus its ground truth."""

    genuine: bool
    report: VerificationReport

    @property
    def accepted(self) -> bool:
        return self.report.accepted


def component_margin(
    report: VerificationReport, name: str, config: DefenseConfig
) -> float:
    """Signed, normalised distance of one component's score to threshold."""
    if name not in _MARGIN_SCALES:
        raise ConfigurationError(f"unknown component {name!r}")
    if name not in report.components:
        raise ConfigurationError(f"report carries no {name!r} result")
    result = report.components[name]
    if name == "distance":
        threshold = -(config.distance_threshold_m * config.distance_margin)
    elif name == "soundfield":
        # The component already reports its score relative to the
        # per-user calibrated threshold.
        threshold = 0.0
    elif name == "magnetic":
        threshold = -1.0
    elif name == "identity":
        threshold = config.asv_threshold
    else:
        raise ConfigurationError(f"unknown component {name!r}")
    return (result.score - threshold) / _MARGIN_SCALES[name]


def pipeline_margin(report: VerificationReport, config: DefenseConfig) -> float:
    """Merged margin: the weakest component decides (cascade AND)."""
    if not report.components:
        raise ConfigurationError("report has no component results")
    return min(
        component_margin(report, name, config) for name in report.components
    )


def equal_error_rate_from_margins(
    genuine_margins: Sequence[float], impostor_margins: Sequence[float]
) -> float:
    """EER from merged margins (threshold-offset sweep)."""
    eer, _ = equal_error_rate(
        np.asarray(genuine_margins, dtype=float),
        np.asarray(impostor_margins, dtype=float),
    )
    return eer


@dataclass(frozen=True)
class EvaluationResult:
    """FAR/FRR/EER over a set of trials (one Fig. 12/14 bar group)."""

    far: float
    frr: float
    eer: float
    n_genuine: int
    n_impostor: int

    def as_percent(self) -> Dict[str, float]:
        return {
            "far_pct": 100.0 * self.far,
            "frr_pct": 100.0 * self.frr,
            "eer_pct": 100.0 * self.eer,
        }


def evaluate_outcomes(
    outcomes: Iterable[TrialOutcome], config: DefenseConfig
) -> EvaluationResult:
    """Compute FAR (decisions), FRR (decisions) and EER (margin sweep)."""
    outcomes = list(outcomes)
    genuine = [o for o in outcomes if o.genuine]
    impostor = [o for o in outcomes if not o.genuine]
    if not genuine or not impostor:
        raise ConfigurationError("need both genuine and impostor trials")
    far = float(np.mean([o.accepted for o in impostor]))
    frr = float(np.mean([not o.accepted for o in genuine]))
    eer = equal_error_rate_from_margins(
        [pipeline_margin(o.report, config) for o in genuine],
        [pipeline_margin(o.report, config) for o in impostor],
    )
    return EvaluationResult(
        far=far,
        frr=frr,
        eer=eer,
        n_genuine=len(genuine),
        n_impostor=len(impostor),
    )


def format_rate_table(rows: List[dict], columns: Sequence[str]) -> str:
    """Fixed-width text table used by the benchmark printouts."""
    header = " | ".join(f"{c:>12s}" for c in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = []
        for c in columns:
            value = row.get(c, "")
            if isinstance(value, float):
                cells.append(f"{value:12.2f}")
            else:
                cells.append(f"{str(value):>12s}")
        lines.append(" | ".join(cells))
    return "\n".join(lines)
