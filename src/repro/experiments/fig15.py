"""Fig. 15 — authentication time comparison.

Times three authentication schemes end-to-end through the client/server
prototype:

- **ours** — the full four-component pipeline;
- **voiceprint** — the ASV-only scheme (the WeChat voice print role);
- **password** — a credential check whose cost is typing time plus a
  trivial server lookup.

The paper's result: the full system is under a second slower than voice
print alone, and both are comparable to passwords once interaction time
is included.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.pipeline import DefenseSystem
from repro.experiments.world import ExperimentWorld, genuine_capture
from repro.server.backend import VerificationServer
from repro.server.client import MobileClient, TimingReport, summarize_trials

#: Mean time a user needs to type a password on a phone keyboard
#: (entry-speed literature puts 8-char passwords around 3 s).
PASSWORD_TYPING_S = 2.8

#: Server-side cost of a credential hash check.
PASSWORD_SERVER_S = 0.002


@dataclass(frozen=True)
class Fig15Row:
    """Mean per-trial authentication time for one scheme."""

    scheme: str
    trials: int
    mean_total_s: float
    mean_server_s: float
    success_rate: float


def _run_scheme(
    world: ExperimentWorld,
    system: DefenseSystem,
    trials: int,
) -> Dict[str, float]:
    server = VerificationServer(system)
    client = MobileClient(server)
    user_id = sorted(world.users)[0]
    reports: List[TimingReport] = []
    for _ in range(trials):
        capture = genuine_capture(world, user_id, 0.05)
        reports.append(client.authenticate(capture, user_id))
    server.close()
    summary = summarize_trials(reports)
    summary["mean_server_s"] = float(np.mean([r.server_s for r in reports]))
    return summary


def run_fig15(world: ExperimentWorld, trials: int = 10) -> List[Fig15Row]:
    """Time all three schemes with the same genuine workload."""
    rows: List[Fig15Row] = []

    ours = _run_scheme(world, world.system, trials)
    rows.append(
        Fig15Row(
            scheme="ours",
            trials=trials,
            mean_total_s=ours["mean_s"],
            mean_server_s=ours["mean_server_s"],
            success_rate=ours["success_rate"],
        )
    )

    voiceprint_system = DefenseSystem(
        config=world.config, enabled_components=("identity",), asv_components=16
    )
    voiceprint_system.identity = world.system.identity
    vp = _run_scheme(world, voiceprint_system, trials)
    rows.append(
        Fig15Row(
            scheme="voiceprint",
            trials=trials,
            mean_total_s=vp["mean_s"],
            mean_server_s=vp["mean_server_s"],
            success_rate=vp["success_rate"],
        )
    )

    password_totals = []
    for _ in range(trials):
        t0 = time.perf_counter()
        # Hash-compare placeholder for the credential check.
        _ = hash(("user", "correct-horse-battery"))
        server_s = (time.perf_counter() - t0) + PASSWORD_SERVER_S
        password_totals.append(PASSWORD_TYPING_S + server_s)
    rows.append(
        Fig15Row(
            scheme="password",
            trials=trials,
            mean_total_s=float(np.mean(password_totals)),
            mean_server_s=PASSWORD_SERVER_S,
            success_rate=1.0,
        )
    )
    return rows
