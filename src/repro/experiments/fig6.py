"""Fig. 6 — received spectrograph of the high-frequency tone while moving.

Regenerates the data behind the figure: a genuine use-case capture's
spectrogram restricted to the pilot band.  The figure's visible structure
is the Doppler energy around the carrier: while the phone approaches, the
head echo is shifted by a few tens of hertz, so the near-carrier sidebands
carry far more energy than when the phone holds its distance (the sweep).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.spectral import Spectrogram, spectrogram
from repro.experiments.world import ExperimentWorld, genuine_capture


@dataclass(frozen=True)
class Fig6Result:
    """Spectrogram and summary observables."""

    spectrogram: Spectrogram
    pilot_hz: float
    #: Per-frame sideband-to-carrier energy ratio (dB).
    sideband_track_db: np.ndarray
    #: Mean sideband ratio while the phone approaches (radial motion).
    motion_sideband_db: float
    #: Mean sideband ratio during the constant-radius sweep.
    static_sideband_db: float
    band_to_floor_db: float

    @property
    def doppler_contrast_db(self) -> float:
        """How much the approach lights up the sidebands."""
        return self.motion_sideband_db - self.static_sideband_db


def run_fig6(
    world: ExperimentWorld,
    distance: float = 0.05,
    approach_fraction: float = 0.38,
) -> Fig6Result:
    """Capture one genuine attempt and analyse the pilot band."""
    user_id = sorted(world.users)[0]
    capture = genuine_capture(world, user_id, distance)
    sr = capture.audio_sample_rate
    spec = spectrogram(capture.audio, sr, frame_length=8192, hop_length=1024)

    carrier = capture.pilot_hz
    freqs = spec.frequencies
    carrier_mask = np.abs(freqs - carrier) <= 6.0
    sideband_mask = (np.abs(freqs - carrier) > 6.0) & (
        np.abs(freqs - carrier) <= 60.0
    )
    power = 10.0 ** (spec.magnitude_db / 10.0)
    carrier_power = power[:, carrier_mask].sum(axis=1)
    sideband_power = power[:, sideband_mask].sum(axis=1)
    track_db = 10.0 * np.log10(
        np.maximum(sideband_power, 1e-20) / np.maximum(carrier_power, 1e-20)
    )

    duration = capture.duration_s
    motion = spec.times < approach_fraction * duration
    static = spec.times > (approach_fraction + 0.15) * duration
    band = spec.band(carrier - 400.0, carrier + 400.0)
    out_band = spec.band(12000.0, 15000.0)
    return Fig6Result(
        spectrogram=spec,
        pilot_hz=carrier,
        sideband_track_db=track_db,
        motion_sideband_db=float(track_db[motion].mean()),
        static_sideband_db=float(track_db[static].mean()),
        band_to_floor_db=float(band.max() - out_band.max()),
    )
