"""Ablation studies for the design choices DESIGN.md calls out.

1. **Detector thresholds** — joint (Mt, βt) vs magnitude-only vs
   rate-only loudspeaker detection.
2. **Ranging fusion** — phase+IMU+circle-fit distance estimation vs its
   single-sensor components.
3. **Cascade composition** — attack success when individual components
   are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

import numpy as np

from repro.attacks.human_mimic import HumanMimicAttack
from repro.attacks.replay import ReplayAttack
from repro.core.magnetic import magnetic_signature
from repro.core.trajectory_recovery import recover_trajectory
from repro.devices.loudspeaker import Loudspeaker
from repro.devices.registry import get_loudspeaker
from repro.experiments.world import (
    ExperimentWorld,
    attack_capture,
    genuine_capture,
)


@dataclass(frozen=True)
class DetectorAblationRow:
    """Detection/false-alarm rates for one detector variant."""

    variant: str
    detection_rate: float
    false_alarm_rate: float


def run_detector_ablation(
    world: ExperimentWorld,
    distance: float = 0.08,
    genuine_trials: int = 8,
    attack_trials: int = 8,
    speaker_name: str = "Apple Macbook Pro A1286 internal",
) -> List[DetectorAblationRow]:
    """Joint vs single-threshold detection at a mid-range distance.

    At 8 cm a weak laptop magnet sits near the magnitude threshold; the
    coil's audio-rate fluctuation still trips the rate threshold, so the
    joint detector wins — the design choice the paper makes implicitly.
    """
    user_ids = sorted(world.users)
    speaker = Loudspeaker(get_loudspeaker(speaker_name), np.zeros(3))
    config = world.config

    genuine_sigs = []
    for i in range(genuine_trials):
        capture = genuine_capture(world, user_ids[i % len(user_ids)], distance)
        genuine_sigs.append(magnetic_signature(capture))
    attack_sigs = []
    for j in range(attack_trials):
        user_id = user_ids[j % len(user_ids)]
        stolen = world.user(user_id).enrolment_waveforms[-1]
        attempt = ReplayAttack(speaker).prepare(
            stolen, world.synthesizer.sample_rate, user_id
        )
        capture = attack_capture(world, attempt, distance)
        attack_sigs.append(magnetic_signature(capture))

    def rates(magnitude: bool, rate: bool) -> tuple[float, float]:
        def fires(sig) -> bool:
            hit = False
            if magnitude:
                hit = hit or sig.peak_anomaly_ut >= config.magnetic_threshold_ut
            if rate:
                hit = hit or sig.max_rate_ut_s >= config.rate_threshold_ut_s
            return hit

        detection = float(np.mean([fires(s) for s in attack_sigs]))
        false_alarm = float(np.mean([fires(s) for s in genuine_sigs]))
        return detection, false_alarm

    rows = []
    for variant, magnitude, rate in (
        ("joint", True, True),
        ("magnitude_only", True, False),
        ("rate_only", False, True),
    ):
        detection, false_alarm = rates(magnitude, rate)
        rows.append(
            DetectorAblationRow(
                variant=variant,
                detection_rate=detection,
                false_alarm_rate=false_alarm,
            )
        )
    return rows


@dataclass(frozen=True)
class RangingAblationRow:
    """Distance-estimation error for one ranging variant."""

    variant: str
    mean_abs_error_cm: float


def run_ranging_ablation(
    world: ExperimentWorld,
    distances: Sequence[float] = (0.05, 0.08, 0.12),
    trials_per_distance: int = 4,
) -> List[RangingAblationRow]:
    """Full fusion vs IMU-only scale vs phase-only displacement."""
    user_ids = sorted(world.users)
    errors: Dict[str, List[float]] = {"fusion": [], "imu_only": [], "phase_only": []}
    for distance in distances:
        for i in range(trials_per_distance):
            user_id = user_ids[i % len(user_ids)]
            capture = genuine_capture(world, user_id, distance)
            truth = capture.true_end_distance
            recovered = recover_trajectory(capture)
            errors["fusion"].append(abs(recovered.end_distance - truth))
            # IMU-only: the regressed arc radius without the circle fit.
            errors["imu_only"].append(abs(recovered.arc_radius - truth))
            # Phase-only: displacement is relative; the best a phase-only
            # system can do is assume the nominal starting distance.
            assumed_start = 0.15
            phase_only = assumed_start - (
                recovered.radial_change[-1] - recovered.radial_change[0]
            ) * -1.0
            errors["phase_only"].append(abs(phase_only - truth))
    return [
        RangingAblationRow(
            variant=name, mean_abs_error_cm=100.0 * float(np.mean(errs))
        )
        for name, errs in errors.items()
    ]


@dataclass(frozen=True)
class CascadeAblationRow:
    """Attack success rate with one component removed."""

    dropped_component: str
    attack_type: str
    attack_success_rate: float


def run_cascade_ablation(
    world: ExperimentWorld,
    trials: int = 4,
) -> List[CascadeAblationRow]:
    """How each component's removal opens a specific attack.

    Dropping the sound field admits earphone replays (nothing else sees
    them); dropping identity admits human mimics whenever the imitator's
    voice lands close enough; dropping the magnetometer *should* admit
    conventional-speaker replays — though the per-user sound-field model,
    trained with factory replay negatives, provides partial redundancy in
    benign conditions, so the replay probe uses a speaker class absent
    from the factory negative set.
    """
    user_id = sorted(world.users)[0]
    account = world.user(user_id)
    stolen = account.enrolment_waveforms[-1]
    sr = world.synthesizer.sample_rate
    # A device class the sound-field SVM never saw as a negative.
    pc = Loudspeaker(get_loudspeaker("Bose SoundLink Mini PINK"), np.zeros(3))
    ear = Loudspeaker(get_loudspeaker("Apple EarPods MD827LL/A"), np.zeros(3))

    def attack_attempts(kind: str):
        if kind == "replay_pc":
            return [ReplayAttack(pc).prepare(stolen, sr, user_id)] * trials
        if kind == "replay_ear":
            return [ReplayAttack(ear).prepare(stolen, sr, user_id)] * trials
        attacker = world.users[sorted(world.users)[-1]].profile
        mimic = HumanMimicAttack(replace(attacker, speaker_id="mimic"))
        return [
            mimic.prepare([stolen], account.passphrase, user_id, world.rng)
            for _ in range(trials)
        ]

    pairs = (
        ("magnetic", "replay_pc"),
        ("soundfield", "replay_ear"),
        ("identity", "human_mimic"),
    )
    rows: List[CascadeAblationRow] = []
    all_components = world.system.enabled_components
    for dropped, attack_kind in pairs:
        kept = tuple(c for c in all_components if c != dropped)
        world.system.enabled_components = kept
        successes = 0
        attempts = attack_attempts(attack_kind)
        for attempt in attempts:
            capture = attack_capture(world, attempt, 0.05)
            report = world.system.verify(capture, user_id)
            successes += int(report.accepted)
        rows.append(
            CascadeAblationRow(
                dropped_component=dropped,
                attack_type=attack_kind,
                attack_success_rate=successes / len(attempts),
            )
        )
    world.system.enabled_components = all_components
    return rows
