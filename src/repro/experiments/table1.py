"""Table I — ASV performance against human-based impersonation.

Two tests, each for the GMM-UBM and ISV back-ends:

- **Test 1** — five speakers each pronounce a unique six-digit
  pass-phrase five times; every other speaker then mimics the target
  after listening to the collected samples.  The paper reports 0.0% FAR
  for both back-ends.
- **Test 2** — the speaker models are trained against a Voxforge-style
  background and tested cross-corpus with Arctic-style fixed prompts
  (every speaker pronounces the same utterances).  The paper reports
  0.5% (UBM) and 1.3% (ISV) FAR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.asv.verifier import SpeakerVerifier, VerifierBackend
from repro.attacks.human_mimic import HumanMimicAttack
from repro.voice.corpus import (
    make_arctic_style_corpus,
    make_background_corpus,
    make_passphrase_corpus,
)
from repro.voice.profiles import random_profile


@dataclass(frozen=True)
class Table1Row:
    """One cell pair of Table I."""

    backend: str
    test1_far_pct: float
    test2_far_pct: float


def _train_verifier(backend: VerifierBackend, seed: int) -> SpeakerVerifier:
    verifier = SpeakerVerifier(backend=backend, n_components=32, seed=seed)
    background = make_background_corpus(
        n_speakers=10, utterances_per_speaker=3, seed=seed + 7
    )
    verifier.train_background(
        {
            sid: [u.utterance.waveform for u in background.by_speaker(sid)]
            for sid in background.speaker_ids
        }
    )
    return verifier


def _calibrated_threshold(
    verifier: SpeakerVerifier,
    genuine_trials: list,
    impostor_trials: list,
) -> float:
    """Per-system operating threshold at the dev-set EER point.

    Standard ASV protocol: the decision threshold is calibrated on
    genuine trials and zero-effort impostor trials; the attack FAR is
    then measured at that operating point.
    """
    from repro.asv.metrics import equal_error_rate

    genuine_scores = np.array([verifier.verify(t, w) for t, w in genuine_trials])
    impostor_scores = np.array([verifier.verify(t, w) for t, w in impostor_trials])
    _, threshold = equal_error_rate(genuine_scores, impostor_scores)
    return float(threshold)


def run_test1(
    backend: VerifierBackend,
    seed: int = 5,
    n_speakers: int = 5,
    mimic_attempts_per_pair: int = 1,
) -> float:
    """FAR of human mimicry against pass-phrase models.

    The threshold is calibrated at the EER point of genuine vs
    zero-effort-impostor trials; mimicry attempts are then scored at that
    operating point (the protocol behind the paper's 0.0% cells).
    """
    rng = np.random.default_rng(seed)
    corpus = make_passphrase_corpus(
        n_speakers=n_speakers, repetitions=5, seed=seed + 100
    )
    verifier = _train_verifier(backend, seed)
    for sid in corpus.speaker_ids:
        utts = corpus.by_speaker(sid)
        verifier.enroll(sid, [u.utterance.waveform for u in utts[:4]])

    genuine_trials = [
        (sid, corpus.by_speaker(sid)[4].utterance.waveform)
        for sid in corpus.speaker_ids
    ]
    zero_effort = [
        (target, corpus.by_speaker(other)[4].utterance.waveform)
        for target in corpus.speaker_ids
        for other in corpus.speaker_ids
        if other != target
    ]
    threshold = _calibrated_threshold(verifier, genuine_trials, zero_effort)

    accepted = 0
    attempts = 0
    for target in corpus.speaker_ids:
        target_utts = [u.utterance.waveform for u in corpus.by_speaker(target)]
        passphrase = corpus.by_speaker(target)[0].utterance.text
        for attacker in corpus.speaker_ids:
            if attacker == target:
                continue
            mimic = HumanMimicAttack(corpus.profiles[attacker])
            for _ in range(mimic_attempts_per_pair):
                attempt = mimic.prepare(target_utts[:3], passphrase, target, rng)
                score = verifier.verify(target, attempt.waveform)
                attempts += 1
                accepted += int(score >= threshold)
    return 100.0 * accepted / attempts


def run_test2(
    backend: VerifierBackend,
    seed: int = 5,
) -> float:
    """Cross-corpus FAR: Arctic-style speakers, identical prompts.

    Text-dependent protocol (every Arctic speaker records the same
    prompts): enrolment uses the first rendition of every prompt; trials
    use the second rendition of the same prompts, genuine and impostor
    alike.  The threshold is calibrated at the dev EER point; the
    remaining FAR is the small residual the paper reports (0.5%/1.3%).
    """
    corpus = make_arctic_style_corpus(n_speakers=6, renditions=2, seed=seed + 200)
    verifier = _train_verifier(backend, seed)

    def waves(sid: str, rendition: int):
        return [
            u.utterance.waveform
            for u in corpus.by_speaker(sid)
            if u.session == rendition
        ]

    for sid in corpus.speaker_ids:
        verifier.enroll(sid, waves(sid, 0))

    genuine_trials = [(sid, waves(sid, 1)[0]) for sid in corpus.speaker_ids]
    zero_effort = [
        (target, waves(other, 1)[0])
        for target in corpus.speaker_ids
        for other in corpus.speaker_ids
        if other != target
    ]
    threshold = _calibrated_threshold(verifier, genuine_trials, zero_effort)

    accepted = 0
    attempts = 0
    for target in corpus.speaker_ids:
        for impostor in corpus.speaker_ids:
            if impostor == target:
                continue
            for wave in waves(impostor, 1)[1:]:
                score = verifier.verify(target, wave)
                attempts += 1
                accepted += int(score >= threshold)
    return 100.0 * accepted / attempts


def run_table1(seed: int = 5) -> List[Table1Row]:
    """Both back-ends, both tests."""
    rows: List[Table1Row] = []
    for backend, label in (
        (VerifierBackend.GMM_UBM, "UBM"),
        (VerifierBackend.ISV, "ISV"),
    ):
        rows.append(
            Table1Row(
                backend=label,
                test1_far_pct=run_test1(backend, seed=seed),
                test2_far_pct=run_test2(backend, seed=seed),
            )
        )
    return rows
