"""Table IV / §VI "Various Classes of Speakers" — all 25 loudspeakers.

Replays a stolen pass-phrase through every loudspeaker in the Table IV
registry at ≤ 6 cm and checks that the defense detects each one.  The
paper's result: every conventional loudspeaker is detected (they all
contain a permanent magnet); earphones slip past the magnetometer but are
caught by sound-field verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.attacks.replay import ReplayAttack
from repro.devices.loudspeaker import Loudspeaker, SpeakerCategory
from repro.devices.registry import TABLE_IV_LOUDSPEAKERS
from repro.experiments.world import ExperimentWorld, attack_capture


@dataclass(frozen=True)
class Table4Row:
    """Detection outcome for one loudspeaker model."""

    name: str
    category: str
    magnetic_anomaly_ut: float
    detected: bool
    rejected_by: str


def run_table4(world: ExperimentWorld, distance: float = 0.05) -> List[Table4Row]:
    """Replay through every Table IV device and record the verdicts."""
    user_id = sorted(world.users)[0]
    stolen = world.user(user_id).enrolment_waveforms[-1]
    rows: List[Table4Row] = []
    for spec in TABLE_IV_LOUDSPEAKERS:
        speaker = Loudspeaker(spec, np.zeros(3))
        attempt = ReplayAttack(speaker).prepare(
            stolen, world.synthesizer.sample_rate, user_id
        )
        capture = attack_capture(world, attempt, distance)
        report = world.system.verify(capture, user_id)
        signature = world.system.magnetic.signature(capture)
        failed = report.failed_components()
        rows.append(
            Table4Row(
                name=spec.name,
                category=spec.category.value,
                magnetic_anomaly_ut=signature.peak_anomaly_ut,
                detected=not report.accepted,
                rejected_by=",".join(failed) if failed else "none",
            )
        )
    return rows


def detection_rate(rows: List[Table4Row]) -> float:
    """Fraction of devices detected (paper: 1.0)."""
    return float(np.mean([r.detected for r in rows]))


def conventional_all_magnetic(rows: List[Table4Row]) -> bool:
    """True if every magnet-bearing device trips the magnetometer."""
    for row in rows:
        if row.category == SpeakerCategory.EARPHONE.value:
            continue
        if "magnetic" not in row.rejected_by:
            return False
    return True
