"""The paper's motivating comparison: ASV alone vs. the full defense.

§I/§II argue that "relying on the spectral and prosodic features within
the voice to defend against machine-based voice impersonation attacks
has been proven ineffective" — a strong ASV accepts replays (it *is* the
victim's voice) and high-fidelity conversions/synthesis.  This runner
measures machine-attack FAR for three defenses over the same attempts:

- ``asv_only`` — the identity component alone (a WeChat-voiceprint-style
  deployment);
- ``asv_plus_replay_baseline`` — ASV plus an audio-only replay detector
  (the class of countermeasure the paper says suffers high error on
  unseen devices);
- ``full`` — the paper's four-component cascade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.attacks.morphing import MorphingAttack
from repro.attacks.replay import ReplayAttack
from repro.attacks.synthesis import SynthesisAttack
from repro.asv.replay_baseline import AudioReplayDetector
from repro.constants import DEFAULT_SAMPLE_RATE_HZ
from repro.core.identity import extract_voice
from repro.devices.loudspeaker import Loudspeaker
from repro.devices.registry import get_loudspeaker
from repro.experiments.world import ExperimentWorld, attack_capture, genuine_capture
from repro.voice.profiles import random_profile

#: Devices used to *train* the audio baseline...
BASELINE_TRAIN_SPEAKERS = ("Logitech LS21", "Apple EarPods MD827LL/A")
#: ...and the unseen devices the attacks actually use.
ATTACK_SPEAKERS = ("Bose SoundLink Mini PINK", "Apple Macbook Pro A1286 internal")


@dataclass(frozen=True)
class MotivationRow:
    """Machine-attack FAR and genuine FRR for one defense configuration."""

    defense: str
    machine_far_pct: float
    genuine_frr_pct: float


def run_motivation(
    world: ExperimentWorld,
    attacks_per_type: int = 2,
    genuine_trials: int = 6,
) -> List[MotivationRow]:
    """Measure all three defenses on one shared trial set."""
    user_ids = sorted(world.users)
    rng = world.rng
    sr = world.synthesizer.sample_rate

    # --- Train the audio-only replay baseline on the factory devices,
    #     using capture-channel audio on both sides (a deployed detector
    #     trains on what the phone's microphone records).
    def voice_of(capture):
        return extract_voice(capture.audio, capture.audio_sample_rate, DEFAULT_SAMPLE_RATE_HZ)

    detector = AudioReplayDetector(sample_rate=DEFAULT_SAMPLE_RATE_HZ)
    genuine_train, replay_train = [], []
    for uid in user_ids:
        account = world.user(uid)
        for capture in account.enrolment_captures[:4]:
            genuine_train.append(voice_of(capture))
        for name in BASELINE_TRAIN_SPEAKERS:
            speaker = Loudspeaker(get_loudspeaker(name), np.zeros(3))
            attempt = ReplayAttack(speaker).prepare(
                account.enrolment_waveforms[0], sr, uid
            )
            for _ in range(2):
                replay_train.append(voice_of(attack_capture(world, attempt, 0.05)))
    detector.fit(genuine_train, replay_train)

    # --- Build the shared attack set (replay / morphing / synthesis
    #     through devices the baseline never saw).
    attack_captures = []
    for j in range(attacks_per_type):
        uid = user_ids[j % len(user_ids)]
        account = world.user(uid)
        speaker = Loudspeaker(
            get_loudspeaker(ATTACK_SPEAKERS[j % len(ATTACK_SPEAKERS)]), np.zeros(3)
        )
        attacker = random_profile(f"attacker{j}", rng)
        attempts = [
            ReplayAttack(speaker).prepare(
                account.enrolment_waveforms[-1], sr, uid
            ),
            MorphingAttack(speaker, attacker).prepare(
                account.enrolment_waveforms[-3:], account.passphrase, uid, rng
            ),
            SynthesisAttack(speaker).prepare(
                account.enrolment_waveforms[-3:], account.passphrase, uid, rng
            ),
        ]
        for attempt in attempts:
            attack_captures.append((uid, attack_capture(world, attempt, 0.05)))

    genuine_captures = [
        (user_ids[i % len(user_ids)], genuine_capture(world, user_ids[i % len(user_ids)], 0.05))
        for i in range(genuine_trials)
    ]

    rows: List[MotivationRow] = []
    threshold = world.config.asv_threshold

    def asv_accepts(uid, capture) -> bool:
        return world.system.identity.score(capture, uid) >= threshold

    # ASV only.
    far = np.mean([asv_accepts(u, c) for u, c in attack_captures])
    frr = np.mean([not asv_accepts(u, c) for u, c in genuine_captures])
    rows.append(MotivationRow("asv_only", 100.0 * far, 100.0 * frr))

    # ASV + audio-only replay baseline.
    far = np.mean(
        [
            asv_accepts(u, c) and not detector.is_replay(voice_of(c))
            for u, c in attack_captures
        ]
    )
    frr = np.mean(
        [
            (not asv_accepts(u, c)) or detector.is_replay(voice_of(c))
            for u, c in genuine_captures
        ]
    )
    rows.append(MotivationRow("asv_plus_replay_baseline", 100.0 * far, 100.0 * frr))

    # The full cascade.
    far = np.mean(
        [world.system.verify(c, u).accepted for u, c in attack_captures]
    )
    frr = np.mean(
        [not world.system.verify(c, u).accepted for u, c in genuine_captures]
    )
    rows.append(MotivationRow("full", 100.0 * far, 100.0 * frr))
    return rows
