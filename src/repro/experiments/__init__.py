"""Experiment harness: one module per table/figure of the paper.

Every benchmark under ``benchmarks/`` is a thin wrapper around a runner
here, so the same code regenerates EXPERIMENTS.md and drives
pytest-benchmark.  See DESIGN.md §4 for the experiment index.
"""

from repro.experiments.world import (
    ExperimentWorld,
    UserAccount,
    attack_capture,
    build_world,
    genuine_capture,
    make_trajectory,
)
from repro.experiments.runner import (
    TrialOutcome,
    equal_error_rate_from_margins,
    evaluate_outcomes,
    pipeline_margin,
)

__all__ = [
    "ExperimentWorld",
    "UserAccount",
    "attack_capture",
    "build_world",
    "genuine_capture",
    "make_trajectory",
    "TrialOutcome",
    "equal_error_rate_from_margins",
    "evaluate_outcomes",
    "pipeline_margin",
]
