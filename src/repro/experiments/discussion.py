"""§VII discussion experiments: sound tubes, unconventional speakers,
and adaptive thresholding."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.attacks.replay import ReplayAttack
from repro.attacks.soundtube import SoundTubeAttack
from repro.core.calibration import AdaptiveCalibrator
from repro.devices.loudspeaker import Loudspeaker
from repro.devices.registry import UNCONVENTIONAL_LOUDSPEAKERS, get_loudspeaker
from repro.experiments.runner import TrialOutcome, evaluate_outcomes
from repro.experiments.world import ExperimentWorld, attack_capture, genuine_capture
from repro.world.environments import car_environment


@dataclass(frozen=True)
class TubeRow:
    """One sound-tube configuration (paper Fig. 16 tube set)."""

    tube_length_cm: float
    tube_radius_cm: float
    attempts: int
    succeeded: int
    rejected_by: str


def run_soundtube(
    world: ExperimentWorld,
    tube_lengths_m: Sequence[float] = (0.2, 0.3, 0.45),
    tube_radii_m: Sequence[float] = (0.008, 0.012),
    attempts_per_config: int = 3,
    speaker_name: str = "Logitech LS21",
) -> List[TubeRow]:
    """Tube attacks over several tube geometries (paper: all fail)."""
    user_id = sorted(world.users)[0]
    stolen = world.user(user_id).enrolment_waveforms[-1]
    speaker = Loudspeaker(get_loudspeaker(speaker_name), np.zeros(3))
    rows: List[TubeRow] = []
    for length in tube_lengths_m:
        for radius in tube_radii_m:
            attack = SoundTubeAttack(
                speaker, tube_length_m=length, tube_radius_m=radius
            )
            attempt = attack.prepare(stolen, world.synthesizer.sample_rate, user_id)
            succeeded = 0
            reject_reasons: List[str] = []
            for _ in range(attempts_per_config):
                capture = attack_capture(world, attempt, 0.05)
                report = world.system.verify(capture, user_id)
                if report.accepted:
                    succeeded += 1
                else:
                    reject_reasons.extend(report.failed_components())
            rows.append(
                TubeRow(
                    tube_length_cm=length * 100.0,
                    tube_radius_cm=radius * 100.0,
                    attempts=attempts_per_config,
                    succeeded=succeeded,
                    rejected_by=",".join(sorted(set(reject_reasons))) or "none",
                )
            )
    return rows


@dataclass(frozen=True)
class UnconventionalRow:
    """Detection outcome for one magnet-free loudspeaker."""

    name: str
    category: str
    detected: bool
    rejected_by: str


def run_unconventional(
    world: ExperimentWorld, attempts: int = 3
) -> List[UnconventionalRow]:
    """Electrostatic and piezoelectric speakers (paper §VII).

    The ESL has no magnet but its metal grids are detectable and its
    panel is far larger than a mouth; the piezo tweeter is caught by its
    band-limited, small-aperture sound field.
    """
    user_id = sorted(world.users)[0]
    stolen = world.user(user_id).enrolment_waveforms[-1]
    rows: List[UnconventionalRow] = []
    for spec in UNCONVENTIONAL_LOUDSPEAKERS:
        speaker = Loudspeaker(spec, np.zeros(3))
        attempt = ReplayAttack(speaker).prepare(
            stolen, world.synthesizer.sample_rate, user_id
        )
        detections = 0
        reasons: List[str] = []
        for _ in range(attempts):
            capture = attack_capture(world, attempt, 0.05)
            report = world.system.verify(capture, user_id)
            if not report.accepted:
                detections += 1
                reasons.extend(report.failed_components())
        rows.append(
            UnconventionalRow(
                name=spec.name,
                category=spec.category.value,
                detected=detections == attempts,
                rejected_by=",".join(sorted(set(reasons))) or "none",
            )
        )
    return rows


@dataclass(frozen=True)
class AdaptiveRow:
    """FRR in the car before/after adaptive thresholding."""

    mode: str
    far_pct: float
    frr_pct: float


def run_adaptive_thresholding(
    world: ExperimentWorld,
    genuine_trials: int = 8,
    attack_trials: int = 6,
    distance: float = 0.05,
) -> List[AdaptiveRow]:
    """§VII adaptive thresholding in the car environment.

    Fixed factory thresholds produce a high FRR in the car; calibrating
    the magnetometer thresholds against a few seconds of ambient readings
    recovers usability without admitting the loudspeaker attacks.
    """
    env = car_environment(world.seed + 31)
    user_ids = sorted(world.users)
    speaker = Loudspeaker(get_loudspeaker("Logitech LS21"), np.zeros(3))
    rows: List[AdaptiveRow] = []
    base_config = world.config

    for mode in ("fixed", "adaptive"):
        if mode == "adaptive":
            calibrator = AdaptiveCalibrator(base_config)
            world.system.with_config(calibrator.calibrate(env))
        outcomes: List[TrialOutcome] = []
        for i in range(genuine_trials):
            user_id = user_ids[i % len(user_ids)]
            capture = genuine_capture(world, user_id, distance, environment=env)
            outcomes.append(
                TrialOutcome(True, world.system.verify(capture, user_id))
            )
        for j in range(attack_trials):
            user_id = user_ids[j % len(user_ids)]
            stolen = world.user(user_id).enrolment_waveforms[-1]
            attempt = ReplayAttack(speaker).prepare(
                stolen, world.synthesizer.sample_rate, user_id
            )
            capture = attack_capture(world, attempt, distance, environment=env)
            outcomes.append(
                TrialOutcome(False, world.system.verify(capture, user_id))
            )
        result = evaluate_outcomes(outcomes, world.system.config)
        pct = result.as_percent()
        rows.append(
            AdaptiveRow(mode=mode, far_pct=pct["far_pct"], frr_pct=pct["frr_pct"])
        )
    world.system.with_config(base_config)
    return rows
