"""Command-line experiment runner.

Regenerate any of the paper's tables/figures without pytest::

    python -m repro.experiments table1
    python -m repro.experiments fig12a --users 3 --seed 7
    python -m repro.experiments all

Each experiment prints the same rows its benchmark emits.
"""

from __future__ import annotations

import argparse
import sys
import time

EXPERIMENTS = (
    "table1",
    "fig6",
    "fig8",
    "fig10",
    "fig12a",
    "fig12b",
    "fig14a",
    "fig14b",
    "fig15",
    "table4",
    "soundtube",
    "unconventional",
    "adaptive",
)


def _world(args):
    from repro.experiments.world import build_world

    print(f"building world (seed={args.seed}, users={args.users})...", flush=True)
    t0 = time.time()
    world = build_world(seed=args.seed, n_users=args.users)
    print(f"  ready in {time.time() - t0:.1f} s")
    return world


def run_one(name: str, args, world=None):
    """Run one named experiment, printing its rows."""
    print(f"\n=== {name} ===")
    if name == "table1":
        from repro.experiments.table1 import run_table1

        for row in run_table1(seed=args.seed):
            print(
                f"  {row.backend}: Test1 FAR {row.test1_far_pct:.1f}%  "
                f"Test2 FAR {row.test2_far_pct:.1f}%"
            )
        return
    if name == "fig10":
        from repro.experiments.fig10 import run_fig10

        result = run_fig10()
        print(
            f"  |B| {result.min_ut:.0f}-{result.max_ut:.0f} µT at "
            f"{result.radius_m * 100:.0f} cm, axial ratio {result.axial_ratio:.2f}"
        )
        return

    world = world or _world(args)
    if name == "fig6":
        from repro.experiments.fig6 import run_fig6

        result = run_fig6(world)
        print(
            f"  pilot {result.pilot_hz:.0f} Hz, Doppler contrast "
            f"{result.doppler_contrast_db:+.1f} dB"
        )
    elif name == "fig8":
        from repro.experiments.fig8 import run_fig8

        result = run_fig8(world)
        print(f"  mouth/earphone separation ratio {result.separation:.2f}")
    elif name in ("fig12a", "fig12b"):
        from repro.experiments.fig12 import run_distance_experiment
        from repro.physics.magnetics import MuMetalShield

        shield = MuMetalShield() if name.endswith("b") else None
        for row in run_distance_experiment(world, shield=shield):
            print(
                f"  {row.distance_cm:4.0f} cm: FAR {row.far_pct:5.1f}%  "
                f"FRR {row.frr_pct:5.1f}%  EER {row.eer_pct:5.1f}%"
            )
    elif name in ("fig14a", "fig14b"):
        from repro.experiments.fig14 import run_in_car, run_near_computer

        runner = run_near_computer if name.endswith("a") else run_in_car
        for row in runner(world):
            print(
                f"  {row.distance_cm:4.0f} cm: FAR {row.far_pct:5.1f}%  "
                f"FRR {row.frr_pct:5.1f}%  EER {row.eer_pct:5.1f}%"
            )
    elif name == "fig15":
        from repro.experiments.fig15 import run_fig15

        for row in run_fig15(world):
            print(
                f"  {row.scheme:10s}: total {row.mean_total_s:5.2f} s "
                f"(success {row.success_rate:.0%})"
            )
    elif name == "table4":
        from repro.experiments.table4 import detection_rate, run_table4

        rows = run_table4(world)
        for row in rows:
            mark = "✓" if row.detected else "✗"
            print(f"  {mark} {row.name:45s} {row.rejected_by}")
        print(f"  detection rate {detection_rate(rows):.0%}")
    elif name == "soundtube":
        from repro.experiments.discussion import run_soundtube

        for row in run_soundtube(world):
            print(
                f"  L={row.tube_length_cm:.0f}cm r={row.tube_radius_cm:.1f}cm: "
                f"{row.succeeded}/{row.attempts} succeeded ({row.rejected_by})"
            )
    elif name == "unconventional":
        from repro.experiments.discussion import run_unconventional

        for row in run_unconventional(world):
            print(f"  {row.name}: detected={row.detected} ({row.rejected_by})")
    elif name == "adaptive":
        from repro.experiments.discussion import run_adaptive_thresholding

        for row in run_adaptive_thresholding(world):
            print(f"  {row.mode}: FAR {row.far_pct:.1f}%  FRR {row.frr_pct:.1f}%")
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown experiment {name}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all",),
        help="which table/figure to regenerate",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--users", type=int, default=3)
    args = parser.parse_args(argv)

    if args.experiment == "all":
        world = _world(args)
        for name in EXPERIMENTS:
            run_one(name, args, world=world)
    else:
        run_one(args.experiment, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
