"""Fig. 8 — PCA of human-mouth vs earphone sound-field features.

Collects sweep features for genuine (mouth) attempts and earphone
replays, projects them with PCA, and reports the cluster separation the
paper's scatter plot shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.attacks.replay import ReplayAttack
from repro.core.soundfield import delta_features, extract_sweep_trace
from repro.devices.loudspeaker import Loudspeaker
from repro.devices.registry import get_loudspeaker
from repro.experiments.world import ExperimentWorld, attack_capture, genuine_capture
from repro.ml.pca import PCA


@dataclass(frozen=True)
class Fig8Result:
    """2-D PCA projections of the two clusters plus a separation score."""

    mouth_points: np.ndarray
    earphone_points: np.ndarray
    separation: float

    @property
    def separated(self) -> bool:
        """True when the clusters are farther apart than they are wide."""
        return self.separation > 1.0


def run_fig8(
    world: ExperimentWorld,
    samples_per_class: int = 8,
    earphone_name: str = "Apple EarPods MD827LL/A",
) -> Fig8Result:
    """Collect, featurise and project both classes."""
    user_id = sorted(world.users)[0]
    account = world.user(user_id)
    reference = extract_sweep_trace(account.enrolment_captures[0])

    mouth_feats: List[np.ndarray] = []
    for _ in range(samples_per_class):
        capture = genuine_capture(world, user_id, 0.05)
        mouth_feats.append(delta_features(extract_sweep_trace(capture), reference))

    earphone = Loudspeaker(get_loudspeaker(earphone_name), np.zeros(3))
    ear_feats: List[np.ndarray] = []
    attempt = ReplayAttack(earphone).prepare(
        account.enrolment_waveforms[-1], world.synthesizer.sample_rate, user_id
    )
    for _ in range(samples_per_class):
        capture = attack_capture(world, attempt, 0.05)
        ear_feats.append(delta_features(extract_sweep_trace(capture), reference))

    x = np.vstack(mouth_feats + ear_feats)
    # Standardise (the delta features mix dB offsets, slopes and residual
    # spreads of very different scales), then weight each dimension by the
    # class-separation it carries before projecting.  Raw PCA would follow
    # the content-noise dimensions; the figure's purpose is to show the
    # *discriminative* structure of the feature space.
    from repro.ml.scaler import StandardScaler

    x = StandardScaler().fit_transform(x)
    labels = np.concatenate(
        [np.ones(len(mouth_feats)), -np.ones(len(ear_feats))]
    )
    mouth_mean = x[labels > 0].mean(axis=0)
    ear_mean = x[labels < 0].mean(axis=0)
    within = 0.5 * (x[labels > 0].std(axis=0) + x[labels < 0].std(axis=0))
    fisher = np.abs(mouth_mean - ear_mean) / np.maximum(within, 1e-6)
    x = x * fisher[None, :]
    projected = PCA(n_components=2).fit_transform(x)
    mouth = projected[: len(mouth_feats)]
    ear = projected[len(mouth_feats) :]
    centroid_gap = float(np.linalg.norm(mouth.mean(axis=0) - ear.mean(axis=0)))
    spread = float(
        np.sqrt(mouth.var(axis=0).sum()) + np.sqrt(ear.var(axis=0).sum())
    )
    return Fig8Result(
        mouth_points=mouth,
        earphone_points=ear,
        separation=centroid_gap / max(spread, 1e-9),
    )
