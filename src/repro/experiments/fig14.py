"""Fig. 14 — environmental magnetic interference.

Repeats the distance experiment with the verification attempts recorded
next to a computer (Fig. 14a) and in a car's front seat (Fig. 14b).
Expected shape: FAR stays at/near zero close-in, but the interference
trips the magnetometer thresholds on genuine attempts and FRR climbs —
dramatically so in the car — while EER stays low because re-thresholding
could recover the separation (the observation that motivates §VII's
adaptive thresholding).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.fig12 import DistanceRow, DISTANCES_M, run_distance_experiment
from repro.experiments.world import ExperimentWorld
from repro.world.environments import (
    car_environment,
    near_computer_environment,
)


def run_near_computer(
    world: ExperimentWorld,
    distances: Sequence[float] = DISTANCES_M,
    genuine_per_distance: int = 6,
    attacks_per_speaker: int = 1,
) -> List[DistanceRow]:
    """Fig. 14a: verification attempts 30 cm from an iMac."""
    return run_distance_experiment(
        world,
        distances=distances,
        genuine_per_distance=genuine_per_distance,
        attacks_per_speaker=attacks_per_speaker,
        environment=near_computer_environment(world.seed + 17),
    )


def run_in_car(
    world: ExperimentWorld,
    distances: Sequence[float] = DISTANCES_M,
    genuine_per_distance: int = 6,
    attacks_per_speaker: int = 1,
) -> List[DistanceRow]:
    """Fig. 14b: verification attempts in a car front seat."""
    return run_distance_experiment(
        world,
        distances=distances,
        genuine_per_distance=genuine_per_distance,
        attacks_per_speaker=attacks_per_speaker,
        environment=car_environment(world.seed + 29),
    )
