"""Fig. 10 — polar plot of a conventional loudspeaker's magnetic field.

Samples the Logitech LS21's field magnitude on a ring around the driver
and checks the figure's headline numbers: loudspeaker near fields fall in
the 30–210 µT range at close radius, with the dipole's characteristic
2:1 axial-to-equatorial asymmetry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.loudspeaker import Loudspeaker
from repro.devices.registry import get_loudspeaker


@dataclass(frozen=True)
class Fig10Result:
    """Field magnitudes on a ring around the loudspeaker."""

    angles_deg: np.ndarray
    field_ut: np.ndarray
    radius_m: float

    @property
    def max_ut(self) -> float:
        return float(self.field_ut.max())

    @property
    def min_ut(self) -> float:
        return float(self.field_ut.min())

    @property
    def axial_ratio(self) -> float:
        """On-axis to broadside magnitude ratio (2.0 for a pure dipole)."""
        return float(self.field_ut.max() / max(self.field_ut.min(), 1e-12))


def run_fig10(
    speaker_name: str = "Logitech LS21",
    radius_m: float = 0.05,
    n_angles: int = 72,
) -> Fig10Result:
    """Sample |B| at ``radius_m`` from the magnet, 0–360°."""
    speaker = Loudspeaker(get_loudspeaker(speaker_name), np.zeros(3))
    magnet = speaker.magnetic_sources()[0]
    angles = np.linspace(0.0, 360.0, n_angles, endpoint=False)
    field = np.empty(n_angles)
    for i, deg in enumerate(angles):
        rad = np.deg2rad(deg)
        point = radius_m * np.array([np.cos(rad), np.sin(rad), 0.0])
        field[i] = float(np.linalg.norm(magnet.field_at(point)))
    return Fig10Result(angles_deg=angles, field_ut=field, radius_m=radius_m)
