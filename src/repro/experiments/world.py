"""Shared experiment fixtures: users, enrolment, and trained systems.

``build_world`` assembles everything the paper's evaluation needs once —
a testbed phone, an electromagnetic environment, a population of enrolled
users (each with a unique six-digit pass-phrase, per the Table I
protocol), a trained defense system, and the factory loudspeakers used
for sound-field negatives — so the per-figure runners only generate
trials.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.asv.verifier import VerifierBackend
from repro.attacks.base import AttackAttempt
from repro.core.config import DefenseConfig
from repro.core.pipeline import DefenseSystem
from repro.devices.loudspeaker import Loudspeaker
from repro.devices.registry import get_loudspeaker, get_phone
from repro.devices.smartphone import Smartphone
from repro.errors import ConfigurationError
from repro.voice.corpus import make_background_corpus
from repro.voice.profiles import SpeakerProfile, random_profile
from repro.voice.synthesis import Synthesizer
from repro.world.environments import Environment, quiet_room_environment
from repro.world.humans import HumanSpeakerSource
from repro.world.scene import SensorCapture, simulate_capture
from repro.world.trajectory import UseCaseTrajectory

#: Factory loudspeakers used to build sound-field training negatives.
FACTORY_NEGATIVE_SPEAKERS = ("Apple EarPods MD827LL/A", "Logitech LS21")

#: How much farther than the final position the approach starts (m).  A
#: motion-shape choice, unrelated to the ``Dt`` decision threshold.
_START_GAP_M = 0.06


def make_trajectory(end_distance: float) -> UseCaseTrajectory:
    """The use-case motion ending at ``end_distance`` metres."""
    return UseCaseTrajectory(
        start_distance=max(0.15, end_distance + _START_GAP_M),
        end_distance=end_distance,
    )


@dataclass
class UserAccount:
    """One enrolled user: voice, pass-phrase and enrolment material."""

    profile: SpeakerProfile
    passphrase: str
    enrolment_waveforms: List[np.ndarray]
    enrolment_captures: List[SensorCapture]

    @property
    def user_id(self) -> str:
        return self.profile.speaker_id


@dataclass
class ExperimentWorld:
    """Everything one evaluation run shares."""

    seed: int
    phone: Smartphone
    environment: Environment
    synthesizer: Synthesizer
    rng: np.random.Generator
    users: Dict[str, UserAccount]
    system: DefenseSystem
    config: DefenseConfig

    def user(self, user_id: str) -> UserAccount:
        try:
            return self.users[user_id]
        except KeyError:
            raise ConfigurationError(f"unknown user {user_id!r}") from None

    def fresh_utterance(self, user_id: str) -> np.ndarray:
        """A new rendition of the user's pass-phrase (a new session)."""
        account = self.user(user_id)
        return self.synthesizer.synthesize_digits(
            account.profile, account.passphrase, self.rng
        ).waveform


def genuine_capture(
    world: ExperimentWorld,
    user_id: str,
    distance: float = 0.05,
    environment: Optional[Environment] = None,
) -> SensorCapture:
    """One genuine verification attempt by ``user_id`` at ``distance``."""
    account = world.user(user_id)
    env = environment or world.environment
    return simulate_capture(
        world.phone,
        HumanSpeakerSource(account.profile),
        env,
        make_trajectory(distance),
        world.fresh_utterance(user_id),
        world.synthesizer.sample_rate,
        world.rng,
    )


def attack_capture(
    world: ExperimentWorld,
    attempt: AttackAttempt,
    distance: float = 0.05,
    environment: Optional[Environment] = None,
) -> SensorCapture:
    """One attack attempt: the attacker mimics the use-case motion."""
    env = environment or world.environment
    return simulate_capture(
        world.phone,
        attempt.source,
        env,
        make_trajectory(distance),
        attempt.waveform,
        attempt.sample_rate,
        world.rng,
    )


def build_world(
    seed: int = 7,
    n_users: int = 3,
    environment: Optional[Environment] = None,
    backend: VerifierBackend = VerifierBackend.GMM_UBM,
    config: Optional[DefenseConfig] = None,
    asv_components: int = 16,
    enrol_repetitions: int = 10,
    negatives_per_speaker: int = 6,
    background_speakers: int = 8,
    phone_model: str = "Nexus 5",
) -> ExperimentWorld:
    """Build and fully train an experiment world.

    Enrolment follows the prototype's training flow: the user repeats
    their pass-phrase while performing the use-case motion; the captures
    train the sound-field model (with factory replay negatives) and the
    clean recordings enroll the ASV.
    """
    if n_users <= 0:
        raise ConfigurationError("n_users must be positive")
    rng = np.random.default_rng(seed)
    phone = Smartphone(get_phone(phone_model))
    env = environment or quiet_room_environment(seed)
    synth = Synthesizer(16000)
    config = config or DefenseConfig()

    system = DefenseSystem(
        config=config, backend=backend, asv_components=asv_components, seed=seed
    )
    background = make_background_corpus(
        n_speakers=background_speakers, utterances_per_speaker=3, seed=seed + 1000
    )
    system.train_background(
        {
            sid: [u.utterance.waveform for u in background.by_speaker(sid)]
            for sid in background.speaker_ids
        }
    )

    factory = [
        Loudspeaker(get_loudspeaker(name), np.zeros(3))
        for name in FACTORY_NEGATIVE_SPEAKERS
    ]

    users: Dict[str, UserAccount] = {}
    for u in range(n_users):
        user_id = f"user{u:02d}"
        profile = random_profile(user_id, rng)
        passphrase = "".join(str(d) for d in rng.integers(0, 10, 6))
        waveforms = [
            synth.synthesize_digits(profile, passphrase, rng).waveform
            for _ in range(enrol_repetitions)
        ]
        source = HumanSpeakerSource(profile)
        # Enrolment repetitions naturally end at slightly different
        # distances; covering the 4-6.5 cm usage band keeps the per-user
        # sound-field statistics honest about real hand placement.
        captures = [
            simulate_capture(
                phone,
                source,
                env,
                make_trajectory(float(rng.uniform(0.038, 0.058))),
                w,
                synth.sample_rate,
                rng,
            )
            for w in waveforms
        ]
        negatives: List[SensorCapture] = []
        for spk in factory:
            played = spk.apply_band(waveforms[0], synth.sample_rate)
            for _ in range(negatives_per_speaker):
                negatives.append(
                    simulate_capture(
                        phone,
                        spk,
                        env,
                        make_trajectory(0.05),
                        played,
                        synth.sample_rate,
                        rng,
                    )
                )
        system.fit_soundfield(user_id, captures, negatives)
        system.enroll(user_id, captures, enrolment_waveforms=waveforms[:5])
        users[user_id] = UserAccount(
            profile=profile,
            passphrase=passphrase,
            enrolment_waveforms=waveforms,
            enrolment_captures=captures,
        )

    return ExperimentWorld(
        seed=seed,
        phone=phone,
        environment=env,
        synthesizer=synth,
        rng=rng,
        users=users,
        system=system,
        config=config,
    )
