"""Fig. 12 — impact of sound source distance, with and without shielding.

For each source distance the runner collects genuine attempts from the
enrolled users and machine replay attacks through a spread of Table IV
loudspeakers (optionally inside a Mu-metal shield), then reports
FAR/FRR/EER exactly as the figure does.  Expected shape: all three rates
are zero at ≤ 6 cm; FAR rises with distance as the magnet's field decays
(faster when shielded); FRR stays low in the quiet room.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.attacks.replay import ReplayAttack
from repro.core.config import DefenseConfig
from repro.devices.loudspeaker import Loudspeaker
from repro.devices.registry import get_loudspeaker
from repro.experiments.runner import TrialOutcome, evaluate_outcomes
from repro.experiments.world import ExperimentWorld, attack_capture, genuine_capture
from repro.physics.magnetics import MuMetalShield
from repro.world.environments import Environment

#: Paper's tested distances (cm → m): a 2 cm grid from ``Dt − 2 cm`` to
#: ``Dt + 8 cm``, derived from the configured threshold so re-tuning
#: ``Dt`` keeps the sweep centred on the decision boundary.
_DT_M = DefenseConfig().distance_threshold_m
DISTANCES_M = tuple(round(_DT_M + 0.02 * k, 2) for k in range(-1, 5))

#: A spread of Table IV loudspeakers across device classes.
ATTACK_SPEAKERS = (
    "Logitech LS21",
    "Bose SoundLink Mini PINK",
    "Pioneer SP-FS52",
    "Apple Macbook Pro A1286 internal",
    "Apple iPhone 5S A1533 internal",
    "Apple EarPods MD827LL/A",
)


@dataclass(frozen=True)
class DistanceRow:
    """One bar group of Fig. 12."""

    distance_cm: float
    far_pct: float
    frr_pct: float
    eer_pct: float


def run_distance_experiment(
    world: ExperimentWorld,
    distances: Sequence[float] = DISTANCES_M,
    shield: Optional[MuMetalShield] = None,
    genuine_per_distance: int = 6,
    attacks_per_speaker: int = 1,
    environment: Optional[Environment] = None,
    speaker_names: Sequence[str] = ATTACK_SPEAKERS,
    include_distance_gate: bool = False,
) -> List[DistanceRow]:
    """FAR/FRR/EER versus source distance (Fig. 12a or, shielded, 12b).

    The distance gate is disabled by default: this very experiment is
    what the paper uses to *choose* ``Dt`` ("According to the evaluation
    results, we set the sound source distance threshold Dt to 6 cm"), so
    the detection components are measured across all distances first.
    """
    user_ids = sorted(world.users)
    original_components = world.system.enabled_components
    if not include_distance_gate:
        world.system.enabled_components = tuple(
            c for c in original_components if c != "distance"
        )
    rows: List[DistanceRow] = []
    for distance in distances:
        outcomes: List[TrialOutcome] = []
        for i in range(genuine_per_distance):
            user_id = user_ids[i % len(user_ids)]
            capture = genuine_capture(world, user_id, distance, environment)
            report = world.system.verify(capture, user_id)
            outcomes.append(TrialOutcome(genuine=True, report=report))
        for name in speaker_names:
            speaker = Loudspeaker(get_loudspeaker(name), np.zeros(3))
            if shield is not None:
                speaker = speaker.shielded(shield)
            for j in range(attacks_per_speaker):
                user_id = user_ids[j % len(user_ids)]
                stolen = world.user(user_id).enrolment_waveforms[-1]
                attempt = ReplayAttack(speaker).prepare(
                    stolen, world.synthesizer.sample_rate, user_id
                )
                capture = attack_capture(world, attempt, distance, environment)
                report = world.system.verify(capture, user_id)
                outcomes.append(TrialOutcome(genuine=False, report=report))
        result = evaluate_outcomes(outcomes, world.config)
        pct = result.as_percent()
        rows.append(
            DistanceRow(
                distance_cm=distance * 100.0,
                far_pct=pct["far_pct"],
                frr_pct=pct["frr_pct"],
                eer_pct=pct["eer_pct"],
            )
        )
    world.system.enabled_components = original_components
    return rows


def rows_to_dicts(rows: Sequence[DistanceRow]) -> List[dict]:
    """For the shared table formatter."""
    return [
        {
            "distance_cm": r.distance_cm,
            "far_pct": r.far_pct,
            "frr_pct": r.frr_pct,
            "eer_pct": r.eer_pct,
        }
        for r in rows
    ]
