"""k-means clustering with k-means++ initialisation.

Exists to seed GMM training (:mod:`repro.asv.gmm`); EM from random means
converges to visibly worse UBMs on small synthetic corpora.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, NotFittedError


class KMeans:
    """Lloyd's algorithm with k-means++ seeding."""

    def __init__(
        self,
        n_clusters: int,
        max_iter: int = 100,
        tol: float = 1e-6,
        seed: int = 0,
    ):
        if n_clusters <= 0:
            raise ConfigurationError("n_clusters must be positive")
        if max_iter <= 0:
            raise ConfigurationError("max_iter must be positive")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.centers_: np.ndarray | None = None
        self.inertia_: float | None = None

    def _init_centers(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = x.shape[0]
        centers = [x[rng.integers(n)]]
        for _ in range(1, self.n_clusters):
            d2 = np.min(
                ((x[:, None, :] - np.asarray(centers)[None, :, :]) ** 2).sum(axis=2),
                axis=1,
            )
            total = d2.sum()
            if total <= 0:
                centers.append(x[rng.integers(n)])
                continue
            probs = d2 / total
            centers.append(x[rng.choice(n, p=probs)])
        return np.asarray(centers)

    def fit(self, x: np.ndarray) -> "KMeans":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ConfigurationError("KMeans needs a (n, d) matrix")
        if x.shape[0] < self.n_clusters:
            raise ConfigurationError(
                f"{x.shape[0]} points cannot form {self.n_clusters} clusters"
            )
        rng = np.random.default_rng(self.seed)
        centers = self._init_centers(x, rng)
        prev_inertia = np.inf
        for _ in range(self.max_iter):
            d2 = ((x[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            labels = np.argmin(d2, axis=1)
            inertia = float(d2[np.arange(x.shape[0]), labels].sum())
            new_centers = centers.copy()
            for k in range(self.n_clusters):
                members = x[labels == k]
                if members.shape[0]:
                    new_centers[k] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the worst-fit point.
                    new_centers[k] = x[int(np.argmax(d2.min(axis=1)))]
            centers = new_centers
            if prev_inertia - inertia < self.tol * max(prev_inertia, 1.0):
                break
            prev_inertia = inertia
        self.centers_ = centers
        self.inertia_ = inertia
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.centers_ is None:
            raise NotFittedError("KMeans.predict called before fit")
        x = np.asarray(x, dtype=float)
        d2 = ((x[:, None, :] - self.centers_[None, :, :]) ** 2).sum(axis=2)
        return np.argmin(d2, axis=1)
