"""Thin fast paths over numpy.linalg for serving-path hot loops.

``np.linalg.lstsq`` spends roughly half its time in Python argument
marshalling for the small systems the pipeline solves dozens of times per
request (3-column circle fits, 2-column level trends).  The helper below
calls the underlying LAPACK gufunc directly with the same dtype signature
the wrapper would have chosen, so the solution bits are identical; when
the private gufunc module is unavailable it degrades to the public API.
"""

from __future__ import annotations

import numpy as np

try:  # numpy-private LAPACK gufuncs; layout is stable across 1.22+/2.x.
    from numpy.linalg import _umath_linalg as _ul

    _gufunc_lstsq = _ul.lstsq
except (ImportError, AttributeError):  # pragma: no cover - depends on numpy
    _gufunc_lstsq = None

_EPS = float(np.finfo(np.float64).eps)


def lstsq_1rhs(
    a: np.ndarray, b: np.ndarray, rcond: float | None = None
) -> tuple[np.ndarray, int]:
    """Least-squares solve for one right-hand side: ``(solution, rank)``.

    Bitwise-identical to ``np.linalg.lstsq(a, b, rcond=rcond)[0::2]`` for
    2-D float64 ``a`` and 1-D float64 ``b``; ``rcond=None`` resolves to
    the wrapper's default ``eps * max(m, n)``.
    """
    if rcond is None:
        rcond = _EPS * max(a.shape)
    if (
        _gufunc_lstsq is None
        or a.dtype != np.float64
        or b.dtype != np.float64
        or a.ndim != 2
        or b.ndim != 1
    ):
        sol, _, rank, _ = np.linalg.lstsq(a, b, rcond=rcond)
        return sol, int(rank)
    x, _, rank, _ = _gufunc_lstsq(a, b[:, None], rcond, signature="ddd->ddid")
    return x[:, 0], int(rank)
