"""Machine-learning substrate built from scratch on numpy.

The paper uses PCA for visualising sound-field features (Fig. 8), a linear
SVM for sound-field classification, and k-means to initialise GMM training
inside the ASV back-end.  Nothing here depends on scikit-learn.
"""

from repro.ml.pca import PCA
from repro.ml.svm import LinearSVM
from repro.ml.kmeans import KMeans
from repro.ml.scaler import StandardScaler

__all__ = ["PCA", "LinearSVM", "KMeans", "StandardScaler"]
