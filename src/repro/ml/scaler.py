"""Feature standardisation."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, NotFittedError


class StandardScaler:
    """Zero-mean unit-variance scaling with constant-feature protection."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[0] < 1:
            raise ConfigurationError("StandardScaler needs a (n, d) matrix")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        self.scale_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.transform called before fit")
        return (np.asarray(x, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.inverse_transform called before fit")
        return np.asarray(z, dtype=float) * self.scale_ + self.mean_
