"""Linear support vector machine trained with Pegasos-style SGD.

The sound-field verification component trains "a binary classifier using
the linear Support Vector Machine (SVM) algorithm" (paper §IV-B.2).  A
primal sub-gradient solver on the hinge loss is compact, dependency-free
and more than adequate for the few-hundred-sample training sets the use
case produces.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, NotFittedError


class LinearSVM:
    """L2-regularised hinge-loss classifier (labels −1/+1).

    ``lambda_reg`` is the Pegasos regularisation weight; the learning rate
    schedule is the standard ``1/(λ·t)``.
    """

    def __init__(
        self,
        lambda_reg: float = 1e-3,
        n_epochs: int = 60,
        seed: int = 0,
        fit_intercept: bool = True,
    ):
        if lambda_reg <= 0:
            raise ConfigurationError("lambda_reg must be positive")
        if n_epochs <= 0:
            raise ConfigurationError("n_epochs must be positive")
        self.lambda_reg = lambda_reg
        self.n_epochs = n_epochs
        self.seed = seed
        self.fit_intercept = fit_intercept
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearSVM":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.size:
            raise ConfigurationError("expected x (n, d) and y (n,)")
        labels = set(np.unique(y).tolist())
        if not labels <= {-1.0, 1.0}:
            raise ConfigurationError(f"labels must be -1/+1, got {sorted(labels)}")
        if len(labels) < 2:
            raise ConfigurationError("training data must contain both classes")
        rng = np.random.default_rng(self.seed)
        n, d = x.shape
        # Centre the features: Pegasos' 1/(λt) schedule learns large
        # intercepts very slowly, so data far from the origin would need
        # thousands of epochs.  Training on centred data and folding the
        # shift back into the bias fixes that without changing the model.
        mean = x.mean(axis=0) if self.fit_intercept else np.zeros(d)
        xc = x - mean
        if self.fit_intercept:
            # Bias as a (lightly regularised) constant feature keeps the
            # update bounded by the Pegasos projection below.
            xc = np.column_stack([xc, np.ones(n)])
        w = np.zeros(xc.shape[1])
        radius = 1.0 / np.sqrt(self.lambda_reg)
        t = 0
        for _ in range(self.n_epochs):
            for i in rng.permutation(n):
                t += 1
                eta = 1.0 / (self.lambda_reg * t)
                margin = y[i] * (xc[i] @ w)
                w *= 1.0 - eta * self.lambda_reg
                if margin < 1.0:
                    w += eta * y[i] * xc[i]
                norm = np.linalg.norm(w)
                if norm > radius:
                    w *= radius / norm
        if self.fit_intercept:
            self.weights_ = w[:-1]
            self.bias_ = float(w[-1] - w[:-1] @ mean)
        else:
            self.weights_ = w
            self.bias_ = 0.0
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise NotFittedError("LinearSVM used before fit")
        return np.asarray(x, dtype=float) @ self.weights_ + self.bias_

    def predict(self, x: np.ndarray) -> np.ndarray:
        scores = self.decision_function(x)
        return np.where(scores >= 0.0, 1.0, -1.0)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        y = np.asarray(y, dtype=float)
        return float(np.mean(self.predict(x) == y))
