"""Principal component analysis via SVD."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, NotFittedError


class PCA:
    """Centred PCA fit with a singular value decomposition.

    Components are rows of ``components_`` sorted by explained variance.
    Used by the Fig. 8 benchmark to project sound-field feature vectors to
    two dimensions, and by tests as a separability probe.
    """

    def __init__(self, n_components: int = 2):
        if n_components <= 0:
            raise ConfigurationError("n_components must be positive")
        self.n_components = n_components
        self.components_: np.ndarray | None = None
        self.mean_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "PCA":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[0] < 2:
            raise ConfigurationError("PCA needs a (n >= 2, d) matrix")
        if self.n_components > min(x.shape):
            raise ConfigurationError(
                f"n_components={self.n_components} exceeds min(n, d)={min(x.shape)}"
            )
        self.mean_ = x.mean(axis=0)
        centred = x - self.mean_
        _, s, vt = np.linalg.svd(centred, full_matrices=False)
        variances = s**2 / (x.shape[0] - 1)
        self.components_ = vt[: self.n_components]
        self.explained_variance_ = variances[: self.n_components]
        total = variances.sum()
        self.explained_variance_ratio_ = (
            self.explained_variance_ / total if total > 0 else np.zeros(self.n_components)
        )
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.components_ is None or self.mean_ is None:
            raise NotFittedError("PCA.transform called before fit")
        x = np.asarray(x, dtype=float)
        return (x - self.mean_) @ self.components_.T

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        if self.components_ is None or self.mean_ is None:
            raise NotFittedError("PCA.inverse_transform called before fit")
        return np.asarray(z, dtype=float) @ self.components_ + self.mean_
