"""Exception hierarchy shared across the library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration mistakes from runtime
verification failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class SignalError(ReproError):
    """A signal-processing routine received unusable input."""


class NotFittedError(ReproError):
    """A model was used before being trained/fitted."""


class CaptureError(ReproError):
    """A sensor capture is missing data required by a verification stage."""


class ProtocolError(ReproError):
    """A client/server message failed to encode, decode, or validate."""


class ComponentTimeoutError(ReproError):
    """A verification component exceeded its per-job execution budget.

    Raised (as a stored :class:`JobResult` error, never across threads) by
    the serving-path scheduler when a component hangs: the request must
    degrade to a scored rejection instead of stalling the gateway.
    """


class AnalysisError(ReproError):
    """The static-analysis driver could not complete a run.

    Covers unreadable roots and internal rule failures — *not* lint
    findings, which are data (:class:`repro.analysis.findings.Finding`),
    not exceptions.
    """


class SanitizerError(ReproError):
    """A runtime sanitizer caught a non-finite value in a guarded path.

    Only raised when sanitizing is enabled (``REPRO_SANITIZE=1`` or
    :func:`repro.analysis.sanitize.enable`); production builds never see
    this class.
    """


class LockOrderError(ReproError):
    """The lock-order harness observed locks acquired out of rank order."""
