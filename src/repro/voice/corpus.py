"""Synthetic speech corpora.

Stand-ins for the three corpora the paper's Table I evaluation uses:

- a *pass-phrase corpus* — five speakers each pronouncing a unique
  six-digit pass-phrase five times (Test 1),
- a *background corpus* — many speakers, varied utterances, playing
  Voxforge's role as UBM training material,
- an *Arctic-style corpus* — held-out speakers all pronouncing the same
  fixed prompts, playing the CMU Arctic role in the cross-corpus test
  (Test 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.constants import DEFAULT_SAMPLE_RATE_HZ
from repro.errors import ConfigurationError
from repro.voice.profiles import SpeakerProfile, random_profile
from repro.voice.synthesis import Synthesizer, Utterance

#: Fixed prompts for the Arctic-style corpus, as phoneme sequences.  Real
#: Arctic prompts are full sentences; these cover a comparable phoneme
#: spread in a few seconds of speech.
ARCTIC_STYLE_PROMPTS: Tuple[Tuple[str, ...], ...] = (
    ("HH", "EH", "L", "OW", "SIL", "W", "ER", "L", "D", "SIL",
     "G", "UH", "D", "SIL", "M", "AO", "R", "N", "IH", "NG_STUB"),
    ("S", "IY", "K", "R", "IH", "T", "SIL", "P", "AE", "S", "W", "ER", "D", "SIL",
     "S", "EH", "V", "AH", "N", "SIL", "TH", "R", "IY"),
    ("OW", "P", "AH", "N", "SIL", "DH", "AH", "SIL", "D", "OW", "R", "SIL",
     "P", "L", "IY", "Z", "SIL", "N", "AW_STUB"),
    ("V", "EH", "R", "IH", "F", "AY", "SIL", "M", "AY", "SIL", "V", "OY_STUB", "S", "SIL",
     "T", "UW", "D", "EY"),
    ("DH", "AH", "SIL", "K", "W", "IH", "K", "SIL", "B", "R", "AW_STUB", "N", "SIL",
     "F", "AA", "K", "S", "SIL", "JH_STUB", "AH", "M", "P", "S"),
    ("AY", "SIL", "AE", "M", "SIL", "DH", "AH", "SIL", "OW", "N", "L", "IY", "SIL",
     "OW", "N", "ER", "SIL", "HH", "IY", "R"),
)


def _sanitise_prompt(prompt: Sequence[str]) -> Tuple[str, ...]:
    """Replace inventory gaps with near phonemes (keeps prompts editable)."""
    substitutions = {
        "OY_STUB": "OW",
        "NG_STUB": "N",
        "AW_STUB": "AA",
        "JH_STUB": "Z",
    }
    return tuple(substitutions.get(p, p) for p in prompt)


@dataclass(frozen=True)
class CorpusUtterance:
    """One corpus entry: the utterance and its ground-truth label."""

    utterance: Utterance
    speaker_id: str
    session: int = 0


@dataclass
class SyntheticCorpus:
    """A labelled collection of synthetic utterances."""

    name: str
    sample_rate: int
    profiles: Dict[str, SpeakerProfile] = field(default_factory=dict)
    utterances: List[CorpusUtterance] = field(default_factory=list)

    @property
    def speaker_ids(self) -> List[str]:
        return sorted(self.profiles)

    def by_speaker(self, speaker_id: str) -> List[CorpusUtterance]:
        """All utterances from one speaker."""
        if speaker_id not in self.profiles:
            raise ConfigurationError(
                f"speaker {speaker_id!r} not in corpus {self.name!r}"
            )
        return [u for u in self.utterances if u.speaker_id == speaker_id]

    def waveforms(self) -> List[np.ndarray]:
        return [u.utterance.waveform for u in self.utterances]


def make_passphrase_corpus(
    n_speakers: int = 5,
    repetitions: int = 5,
    sample_rate: int = DEFAULT_SAMPLE_RATE_HZ,
    seed: int = 100,
) -> SyntheticCorpus:
    """Test 1 corpus: each speaker repeats a unique 6-digit pass-phrase.

    Sessions differ in their random state (micro-prosody varies) the way
    repeated recordings of a person do.
    """
    if n_speakers <= 0 or repetitions <= 0:
        raise ConfigurationError("n_speakers and repetitions must be positive")
    rng = np.random.default_rng(seed)
    synth = Synthesizer(sample_rate)
    corpus = SyntheticCorpus(name="passphrase", sample_rate=sample_rate)
    for s in range(n_speakers):
        sid = f"user{s:02d}"
        profile = random_profile(sid, rng)
        corpus.profiles[sid] = profile
        passphrase = "".join(str(d) for d in rng.integers(0, 10, 6))
        for rep in range(repetitions):
            utt = synth.synthesize_digits(profile, passphrase, rng)
            corpus.utterances.append(CorpusUtterance(utt, sid, session=rep))
    return corpus


def make_background_corpus(
    n_speakers: int = 20,
    utterances_per_speaker: int = 4,
    sample_rate: int = DEFAULT_SAMPLE_RATE_HZ,
    seed: int = 200,
) -> SyntheticCorpus:
    """Voxforge-style background population for UBM training."""
    if n_speakers <= 0 or utterances_per_speaker <= 0:
        raise ConfigurationError("corpus sizes must be positive")
    rng = np.random.default_rng(seed)
    synth = Synthesizer(sample_rate)
    corpus = SyntheticCorpus(name="background", sample_rate=sample_rate)
    for s in range(n_speakers):
        sid = f"bg{s:03d}"
        profile = random_profile(sid, rng)
        corpus.profiles[sid] = profile
        for rep in range(utterances_per_speaker):
            digits = "".join(str(d) for d in rng.integers(0, 10, rng.integers(4, 8)))
            utt = synth.synthesize_digits(profile, digits, rng)
            corpus.utterances.append(CorpusUtterance(utt, sid, session=rep))
    return corpus


def make_arctic_style_corpus(
    n_speakers: int = 6,
    renditions: int = 2,
    sample_rate: int = DEFAULT_SAMPLE_RATE_HZ,
    seed: int = 300,
) -> SyntheticCorpus:
    """CMU-Arctic-style corpus: held-out speakers, identical fixed prompts.

    Every speaker records every prompt ``renditions`` times (the paper's
    point about Arctic is that "they pronounce the same utterance when
    recording", which makes cross-corpus testing text-dependent).  The
    ``session`` field carries the rendition index; the utterance ``text``
    carries the prompt id.
    """
    if n_speakers <= 0 or renditions <= 0:
        raise ConfigurationError("n_speakers and renditions must be positive")
    rng = np.random.default_rng(seed)
    synth = Synthesizer(sample_rate)
    corpus = SyntheticCorpus(name="arctic_style", sample_rate=sample_rate)
    prompts = [_sanitise_prompt(p) for p in ARCTIC_STYLE_PROMPTS]
    for s in range(n_speakers):
        sid = f"arctic{s:02d}"
        profile = random_profile(sid, rng)
        corpus.profiles[sid] = profile
        for rendition in range(renditions):
            for i, prompt in enumerate(prompts):
                utt = synth.synthesize_phonemes(
                    profile, prompt, rng, text=f"prompt{i}"
                )
                corpus.utterances.append(
                    CorpusUtterance(utt, sid, session=rendition)
                )
    return corpus
