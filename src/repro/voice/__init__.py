"""Voice synthesis and analysis substrate.

The paper's corpora (five volunteers, Voxforge, CMU Arctic) cannot be
shipped, so this subpackage synthesises speaker-discriminable speech from a
classical source-filter model:

- :mod:`repro.voice.glottal` — Rosenberg-pulse glottal source with jitter,
  shimmer and spectral tilt;
- :mod:`repro.voice.formants` — digital formant resonators and the phoneme
  formant tables;
- :mod:`repro.voice.profiles` — per-speaker vocal parameters and random
  speaker generation;
- :mod:`repro.voice.synthesis` — utterance synthesis (digit pass-phrases
  and arbitrary phoneme strings);
- :mod:`repro.voice.analysis` — F0 and spectral-envelope estimation used by
  the voice-conversion attack;
- :mod:`repro.voice.corpus` — synthetic stand-ins for the Voxforge-style
  background corpus and the Arctic-style fixed-utterance test corpus.
"""

from repro.voice.glottal import GlottalSource
from repro.voice.formants import FormantResonator, PHONEMES, Phoneme
from repro.voice.profiles import SpeakerProfile, random_profile
from repro.voice.synthesis import Synthesizer, Utterance
from repro.voice.analysis import estimate_f0, estimate_formants, estimate_profile
from repro.voice.corpus import (
    CorpusUtterance,
    SyntheticCorpus,
    make_arctic_style_corpus,
    make_background_corpus,
    make_passphrase_corpus,
)

__all__ = [
    "GlottalSource",
    "FormantResonator",
    "PHONEMES",
    "Phoneme",
    "SpeakerProfile",
    "random_profile",
    "Synthesizer",
    "Utterance",
    "estimate_f0",
    "estimate_formants",
    "estimate_profile",
    "CorpusUtterance",
    "SyntheticCorpus",
    "make_arctic_style_corpus",
    "make_background_corpus",
    "make_passphrase_corpus",
]
