"""Formant resonators and the phoneme inventory.

The vocal tract is modelled as a cascade of second-order digital resonators
(Klatt-style), one per formant.  Each :class:`Phoneme` carries formant
targets for a reference (male, 17.5 cm vocal tract) speaker; a speaker's
``formant_scale`` (≈ inverse vocal-tract length ratio) multiplies them.

The inventory covers everything needed for the spoken digits "zero"–"nine"
and the Arctic-style prompt sentences: seven monophthong vowels, two
diphthongs (as start/end targets), glides, liquids, nasals, fricatives and
stops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np
from scipy.signal import lfilter, lfilter_zi

from repro.errors import ConfigurationError, SignalError


class FormantResonator:
    """A unity-peak-gain second-order resonator (Klatt normalisation).

    Poles at ``r·e^{±jθ}`` with ``r = exp(−πB/fs)`` and ``θ = 2πf/fs``;
    the numerator gain makes the response 1 at the centre frequency, so
    cascading sections does not explode the level.
    """

    def __init__(self, frequency_hz: float, bandwidth_hz: float, sample_rate: int):
        if sample_rate <= 0:
            raise ConfigurationError("sample_rate must be positive")
        if not 0.0 < frequency_hz < sample_rate / 2.0:
            raise ConfigurationError(
                f"formant frequency {frequency_hz} outside (0, Nyquist)"
            )
        if bandwidth_hz <= 0:
            raise ConfigurationError("bandwidth must be positive")
        r = np.exp(-np.pi * bandwidth_hz / sample_rate)
        theta = 2.0 * np.pi * frequency_hz / sample_rate
        self.a = np.array([1.0, -2.0 * r * np.cos(theta), r**2])
        gain = abs(1.0 - 2.0 * r * np.cos(theta) * np.exp(-1j * theta) + r**2 * np.exp(-2j * theta))
        self.b = np.array([gain])
        self.frequency_hz = frequency_hz
        self.bandwidth_hz = bandwidth_hz

    def filter(self, x: np.ndarray, zi: Optional[np.ndarray] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Filter a block, carrying/returning filter state for streaming."""
        x = np.asarray(x, dtype=float)
        if zi is None:
            zi = lfilter_zi(self.b, self.a) * 0.0
        y, zf = lfilter(self.b, self.a, x, zi=zi)
        return y, zf

    def frequency_response(self, freqs_hz: np.ndarray, sample_rate: int) -> np.ndarray:
        """|H(f)| sampled at ``freqs_hz``."""
        w = 2.0 * np.pi * np.asarray(freqs_hz, dtype=float) / sample_rate
        z = np.exp(1j * w)
        num = self.b[0]
        den = self.a[0] + self.a[1] / z + self.a[2] / z**2
        return np.abs(num / den)


@dataclass(frozen=True)
class Phoneme:
    """Acoustic recipe for one phoneme.

    ``formants`` — (F1, F2, F3) targets in Hz for the reference speaker;
    ``voiced`` — glottal excitation on/off;
    ``frication`` — high-band noise level in [0, 1];
    ``amplitude`` — relative level (nasals and fricatives are weaker);
    ``duration_ms`` — nominal duration before speaking-rate scaling;
    ``end_formants`` — if set, formants glide linearly there (diphthongs);
    ``stop_gap`` — closure silence before the burst (plosives).
    """

    symbol: str
    formants: Tuple[float, float, float]
    voiced: bool = True
    frication: float = 0.0
    amplitude: float = 1.0
    duration_ms: float = 120.0
    end_formants: Optional[Tuple[float, float, float]] = None
    stop_gap: bool = False

    def __post_init__(self) -> None:
        if any(f <= 0 for f in self.formants):
            raise ConfigurationError(f"{self.symbol}: formants must be positive")
        if not 0.0 <= self.frication <= 1.0:
            raise ConfigurationError(f"{self.symbol}: frication must be in [0, 1]")
        if self.duration_ms <= 0:
            raise ConfigurationError(f"{self.symbol}: duration must be positive")


def _p(symbol: str, f1: float, f2: float, f3: float, **kw) -> Phoneme:
    return Phoneme(symbol=symbol, formants=(f1, f2, f3), **kw)


#: Reference-speaker phoneme inventory (formants after Peterson & Barney).
PHONEMES: Dict[str, Phoneme] = {
    p.symbol: p
    for p in [
        # Monophthong vowels.
        _p("AA", 730, 1090, 2440, duration_ms=140),
        _p("AE", 660, 1720, 2410, duration_ms=140),
        _p("AH", 640, 1190, 2390, duration_ms=110),
        _p("AO", 570, 840, 2410, duration_ms=140),
        _p("EH", 530, 1840, 2480, duration_ms=120),
        _p("ER", 490, 1350, 1690, duration_ms=130),
        _p("IH", 390, 1990, 2550, duration_ms=100),
        _p("IY", 270, 2290, 3010, duration_ms=130),
        _p("UH", 440, 1020, 2240, duration_ms=100),
        _p("UW", 300, 870, 2240, duration_ms=130),
        # Diphthongs: glide from start to end targets.
        _p("AY", 730, 1090, 2440, end_formants=(390, 1990, 2550), duration_ms=180),
        _p("EY", 530, 1840, 2480, end_formants=(270, 2290, 3010), duration_ms=160),
        _p("OW", 570, 840, 2410, end_formants=(300, 870, 2240), duration_ms=160),
        # Glides and liquids.
        _p("W", 300, 610, 2200, duration_ms=70, amplitude=0.7),
        _p("R", 420, 1300, 1600, duration_ms=80, amplitude=0.8),
        _p("L", 360, 1300, 2700, duration_ms=70, amplitude=0.8),
        # Nasals: murmur-like, weak.
        _p("M", 250, 1200, 2100, duration_ms=80, amplitude=0.45),
        _p("N", 250, 1450, 2200, duration_ms=80, amplitude=0.45),
        # Voiced fricatives.
        _p("Z", 250, 1800, 2600, frication=0.55, amplitude=0.6, duration_ms=90),
        _p("V", 250, 1100, 2300, frication=0.30, amplitude=0.5, duration_ms=70),
        _p("DH", 270, 1400, 2500, frication=0.30, amplitude=0.5, duration_ms=60),
        # Unvoiced fricatives.
        _p("S", 250, 1800, 2600, voiced=False, frication=1.0, amplitude=0.5, duration_ms=110),
        _p("F", 250, 1100, 2300, voiced=False, frication=0.5, amplitude=0.35, duration_ms=90),
        _p("TH", 270, 1400, 2500, voiced=False, frication=0.45, amplitude=0.3, duration_ms=80),
        _p("HH", 500, 1500, 2500, voiced=False, frication=0.35, amplitude=0.35, duration_ms=60),
        # Stops: closure gap then a short burst.
        _p("T", 400, 1800, 2600, voiced=False, frication=0.9, amplitude=0.5, duration_ms=50, stop_gap=True),
        _p("K", 350, 1600, 2400, voiced=False, frication=0.8, amplitude=0.5, duration_ms=55, stop_gap=True),
        _p("P", 300, 900, 2100, voiced=False, frication=0.7, amplitude=0.45, duration_ms=50, stop_gap=True),
        _p("D", 400, 1800, 2600, frication=0.5, amplitude=0.5, duration_ms=45, stop_gap=True),
        _p("G", 350, 1600, 2400, frication=0.5, amplitude=0.5, duration_ms=50, stop_gap=True),
        _p("B", 300, 900, 2100, frication=0.4, amplitude=0.45, duration_ms=45, stop_gap=True),
        # Silence / pause.
        Phoneme(symbol="SIL", formants=(500, 1500, 2500), voiced=False, amplitude=0.0, duration_ms=80),
    ]
}

#: Default formant bandwidths (Hz) for F1..F3.
DEFAULT_BANDWIDTHS: Tuple[float, float, float] = (80.0, 110.0, 160.0)

#: Phoneme sequences for the ten spoken digits.
DIGIT_PHONEMES: Dict[str, Tuple[str, ...]] = {
    "0": ("Z", "IY", "R", "OW"),
    "1": ("W", "AH", "N"),
    "2": ("T", "UW"),
    "3": ("TH", "R", "IY"),
    "4": ("F", "AO", "R"),
    "5": ("F", "AY", "V"),
    "6": ("S", "IH", "K", "S"),
    "7": ("S", "EH", "V", "AH", "N"),
    "8": ("EY", "T"),
    "9": ("N", "AY", "N"),
}


def phoneme_sequence_for_digits(digits: str) -> Tuple[str, ...]:
    """Expand a digit string into a phoneme sequence with inter-digit pauses."""
    if not digits or not digits.isdigit():
        raise SignalError(f"expected a non-empty digit string, got {digits!r}")
    seq: list[str] = []
    for i, ch in enumerate(digits):
        if i:
            seq.append("SIL")
        seq.extend(DIGIT_PHONEMES[ch])
    return tuple(seq)
