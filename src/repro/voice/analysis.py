"""Voice analysis: F0, LPC formants and profile estimation.

The voice-conversion attack (:mod:`repro.attacks.morphing`) is honest: it
does not peek at the victim's generative profile.  Instead it analyses the
stolen recordings with the classical tools a real attacker would use —
autocorrelation pitch tracking and LPC formant estimation — and rebuilds an
approximate :class:`~repro.voice.profiles.SpeakerProfile` from them.  The
estimation error that survives this round trip is what gives the ASV
component something to catch.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.dsp.filters import preemphasis
from repro.dsp.signal import frame_signal
from repro.dsp.vad import energy_vad
from repro.errors import SignalError
from repro.voice.formants import PHONEMES
from repro.voice.profiles import SpeakerProfile


def estimate_f0(
    waveform: np.ndarray,
    sample_rate: int,
    fmin: float = 60.0,
    fmax: float = 400.0,
    frame_ms: float = 40.0,
    hop_ms: float = 10.0,
) -> np.ndarray:
    """Per-frame F0 estimates (Hz) by autocorrelation; NaN when unvoiced."""
    if sample_rate <= 0:
        raise SignalError("sample_rate must be positive")
    x = np.asarray(waveform, dtype=float)
    frame_len = int(frame_ms / 1000.0 * sample_rate)
    hop_len = int(hop_ms / 1000.0 * sample_rate)
    frames = frame_signal(x, frame_len, hop_len, pad=True)
    speech = energy_vad(x, sample_rate, frame_ms, hop_ms)
    lag_min = int(sample_rate / fmax)
    lag_max = min(int(sample_rate / fmin), frame_len - 1)
    if lag_min >= lag_max:
        raise SignalError("frame too short for the requested F0 range")
    f0 = np.full(frames.shape[0], np.nan)
    for i, frame in enumerate(frames):
        if i < speech.size and not speech[i]:
            continue
        frame = frame - frame.mean()
        energy = float(np.dot(frame, frame))
        if energy <= 0:
            continue
        ac = np.correlate(frame, frame, mode="full")[frame_len - 1 :]
        ac = ac / ac[0]
        segment = ac[lag_min:lag_max]
        peak = int(np.argmax(segment)) + lag_min
        if ac[peak] < 0.3:
            continue
        f0[i] = sample_rate / peak
    return f0


def lpc_coefficients(frame: np.ndarray, order: int) -> np.ndarray:
    """Levinson–Durbin LPC analysis; returns ``a[0..order]`` with a[0]=1."""
    frame = np.asarray(frame, dtype=float)
    if frame.size <= order:
        raise SignalError("frame shorter than LPC order")
    r = np.correlate(frame, frame, mode="full")[frame.size - 1 : frame.size + order]
    if r[0] <= 0:
        raise SignalError("zero-energy frame")
    a = np.zeros(order + 1)
    a[0] = 1.0
    err = r[0]
    for i in range(1, order + 1):
        acc = r[i] + np.dot(a[1:i], r[i - 1 : 0 : -1])
        k = -acc / err
        a_new = a.copy()
        a_new[i] = k
        a_new[1:i] = a[1:i] + k * a[i - 1 : 0 : -1]
        a = a_new
        err *= 1.0 - k * k
        if err <= 0:
            break
    return a


def estimate_formants(
    waveform: np.ndarray,
    sample_rate: int,
    n_formants: int = 3,
    lpc_order: int | None = None,
    frame_ms: float = 30.0,
    hop_ms: float = 15.0,
) -> np.ndarray:
    """Median formant frequencies (Hz) over voiced frames via LPC roots."""
    x = preemphasis(np.asarray(waveform, dtype=float))
    order = lpc_order if lpc_order is not None else 2 + sample_rate // 1000
    frame_len = int(frame_ms / 1000.0 * sample_rate)
    hop_len = int(hop_ms / 1000.0 * sample_rate)
    frames = frame_signal(x, frame_len, hop_len, pad=True)
    speech = energy_vad(x, sample_rate, frame_ms, hop_ms)
    window = np.hamming(frame_len)
    collected: List[List[float]] = []
    for i, frame in enumerate(frames):
        if i < speech.size and not speech[i]:
            continue
        try:
            a = lpc_coefficients(frame * window, order)
        except SignalError:
            continue
        roots = np.roots(a)
        roots = roots[np.imag(roots) > 0.01]
        freqs = np.angle(roots) * sample_rate / (2.0 * np.pi)
        bandwidths = -np.log(np.abs(roots)) * sample_rate / np.pi
        keep = (freqs > 150.0) & (freqs < sample_rate / 2.0 - 200.0) & (bandwidths < 600.0)
        freqs = np.sort(freqs[keep])
        if freqs.size >= n_formants:
            collected.append(list(freqs[:n_formants]))
    if not collected:
        raise SignalError("no voiced frames with stable formants found")
    return np.median(np.asarray(collected), axis=0)


def _reference_vowel_means() -> np.ndarray:
    """Mean (F1, F2, F3) of the inventory's monophthong vowels."""
    vowels = ["AA", "AE", "AH", "AO", "EH", "IH", "IY", "UW"]
    return np.mean([PHONEMES[v].formants for v in vowels], axis=0)


def estimate_profile(
    waveforms: List[np.ndarray],
    sample_rate: int,
    speaker_id: str = "estimated",
) -> SpeakerProfile:
    """Rebuild an approximate speaker profile from stolen recordings.

    F0 comes from pooled autocorrelation tracks; ``formant_scale`` from the
    ratio of measured median formants to the inventory's vowel means (F2
    and F3 carry the vocal-tract length cue most reliably, so F1 is
    down-weighted).  Unobservable parameters (jitter target, open
    quotient) stay at attacker defaults — part of why conversions remain
    detectable.
    """
    if not waveforms:
        raise SignalError("need at least one recording to estimate a profile")
    f0_values: List[float] = []
    scale_values: List[float] = []
    reference = _reference_vowel_means()
    weights = np.array([0.2, 0.4, 0.4])
    for wave in waveforms:
        f0_track = estimate_f0(wave, sample_rate)
        voiced = f0_track[~np.isnan(f0_track)]
        if voiced.size:
            f0_values.append(float(np.median(voiced)))
        try:
            formants = estimate_formants(wave, sample_rate)
        except SignalError:
            continue
        ratios = formants / reference
        scale_values.append(float(np.dot(weights, ratios)))
    if not f0_values:
        raise SignalError("could not find voiced speech in any recording")
    f0 = float(np.clip(np.median(f0_values), 60.0, 400.0))
    scale = float(np.clip(np.median(scale_values), 0.7, 1.5)) if scale_values else 1.0
    return SpeakerProfile(speaker_id=speaker_id, f0_hz=f0, formant_scale=scale)


def formant_dispersion(formants: np.ndarray) -> float:
    """Average spacing between consecutive formants (Hz) — a VTL proxy."""
    f = np.sort(np.asarray(formants, dtype=float))
    if f.size < 2:
        raise SignalError("need at least two formants")
    return float(np.mean(np.diff(f)))


def jitter_shimmer(
    waveform: np.ndarray, sample_rate: int
) -> Tuple[float, float]:
    """Crude cycle-level jitter and shimmer estimates from the F0 track.

    Used by tests to confirm mimicry utterances really carry the elevated
    variability the adversary model assigns them.
    """
    f0 = estimate_f0(waveform, sample_rate)
    voiced = f0[~np.isnan(f0)]
    if voiced.size < 4:
        raise SignalError("not enough voiced frames for jitter estimation")
    periods = 1.0 / voiced
    jitter = float(np.mean(np.abs(np.diff(periods))) / np.mean(periods))
    x = np.asarray(waveform, dtype=float)
    frame_len = int(0.03 * sample_rate)
    hop = frame_len // 2
    frames = frame_signal(x, frame_len, hop, pad=True)
    amps = np.sqrt((frames**2).mean(axis=1))
    amps = amps[amps > amps.max() * 0.1]
    if amps.size < 4:
        raise SignalError("not enough high-energy frames for shimmer estimation")
    shimmer = float(np.mean(np.abs(np.diff(amps))) / np.mean(amps))
    return jitter, shimmer
