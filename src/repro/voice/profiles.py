"""Per-speaker vocal parameters.

A :class:`SpeakerProfile` is the compact generative description of one
voice.  Speaker discriminability in the synthetic corpora comes from the
same physical dimensions real ASV systems exploit: mean pitch and pitch
range (prosodic), vocal-tract length via ``formant_scale`` (spectral
envelope), glottal tilt and open quotient (voice quality), and the jitter/
shimmer micro-variability that separates practised genuine speech from
effortful imitation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SpeakerProfile:
    """Generative vocal parameters for one synthetic speaker.

    ``formant_offsets`` are per-formant multiplicative deviations from the
    global ``formant_scale`` — the idiosyncratic vowel-space shape that
    distinguishes same-sized vocal tracts.  They are anatomical: a human
    imitator cannot reshape them, and simple spectral analysis recovers
    only the global scale, which is why they anchor ASV's resistance to
    impersonation.
    """

    speaker_id: str
    f0_hz: float = 120.0
    f0_range: float = 0.18
    formant_scale: float = 1.0
    formant_offsets: tuple = (1.0, 1.0, 1.0)
    bandwidth_scale: float = 1.0
    tilt_db_per_octave: float = -12.0
    open_quotient: float = 0.6
    jitter: float = 0.010
    shimmer: float = 0.040
    speaking_rate: float = 1.0
    aspiration_level: float = 0.01

    def __post_init__(self) -> None:
        if not 60.0 <= self.f0_hz <= 400.0:
            raise ConfigurationError("f0_hz must be within [60, 400] Hz")
        if not 0.0 <= self.f0_range <= 1.0:
            raise ConfigurationError("f0_range must be in [0, 1]")
        if not 0.7 <= self.formant_scale <= 1.5:
            raise ConfigurationError("formant_scale must be in [0.7, 1.5]")
        if len(self.formant_offsets) != 3 or any(
            not 0.8 <= o <= 1.2 for o in self.formant_offsets
        ):
            raise ConfigurationError(
                "formant_offsets must be three factors in [0.8, 1.2]"
            )
        if not 0.5 <= self.bandwidth_scale <= 3.0:
            raise ConfigurationError("bandwidth_scale must be in [0.5, 3.0]")
        if not 0.2 <= self.speaking_rate <= 3.0:
            raise ConfigurationError("speaking_rate must be in [0.2, 3.0]")
        if self.jitter < 0 or self.shimmer < 0:
            raise ConfigurationError("jitter/shimmer must be non-negative")

    def morph_toward(
        self,
        target: "SpeakerProfile",
        fidelity: float,
        extra_variability: float = 0.0,
    ) -> "SpeakerProfile":
        """Shift this voice toward ``target``.

        ``fidelity`` in [0, 1]: 0 leaves the voice unchanged, 1 matches the
        target's parameters exactly (a perfect morphing engine).  Human
        imitators get low-to-moderate fidelity plus ``extra_variability``,
        modelling the larger acoustic parameter variation of unpractised
        speech that disguise detectors exploit ([5], [9]) — and should
        additionally clamp the anatomical parameters (see
        :class:`repro.attacks.human_mimic.HumanMimicAttack`).
        """
        if not 0.0 <= fidelity <= 1.0:
            raise ConfigurationError("fidelity must be in [0, 1]")
        if extra_variability < 0.0:
            raise ConfigurationError("extra_variability must be >= 0")

        def mix(a: float, b: float) -> float:
            return (1.0 - fidelity) * a + fidelity * b

        return replace(
            self,
            speaker_id=f"{self.speaker_id}->{target.speaker_id}",
            f0_hz=mix(self.f0_hz, target.f0_hz),
            f0_range=mix(self.f0_range, target.f0_range),
            formant_scale=min(1.5, max(0.7, mix(self.formant_scale, target.formant_scale))),
            formant_offsets=tuple(
                mix(a, b) for a, b in zip(self.formant_offsets, target.formant_offsets)
            ),
            tilt_db_per_octave=mix(self.tilt_db_per_octave, target.tilt_db_per_octave),
            open_quotient=mix(self.open_quotient, target.open_quotient),
            jitter=self.jitter + extra_variability * 0.02,
            shimmer=self.shimmer + extra_variability * 0.06,
            speaking_rate=mix(self.speaking_rate, target.speaking_rate),
        )


def random_profile(speaker_id: str, rng: np.random.Generator) -> SpeakerProfile:
    """Draw a random but plausible speaker.

    Bimodal pitch (male/female modes) and independent draws of the other
    parameters give a population with realistic between-speaker spread.
    """
    if rng.random() < 0.5:
        f0 = float(rng.uniform(90.0, 145.0))
        formant_scale = float(rng.uniform(0.90, 1.10))
    else:
        f0 = float(rng.uniform(160.0, 250.0))
        formant_scale = float(rng.uniform(1.02, 1.25))
    return SpeakerProfile(
        speaker_id=speaker_id,
        f0_hz=f0,
        f0_range=float(rng.uniform(0.10, 0.28)),
        formant_scale=formant_scale,
        formant_offsets=tuple(float(x) for x in rng.uniform(0.88, 1.12, 3)),
        bandwidth_scale=float(rng.uniform(0.85, 1.4)),
        tilt_db_per_octave=float(rng.uniform(-20.0, -8.0)),
        open_quotient=float(rng.uniform(0.45, 0.72)),
        jitter=float(rng.uniform(0.006, 0.014)),
        shimmer=float(rng.uniform(0.02, 0.06)),
        speaking_rate=float(rng.uniform(0.8, 1.25)),
        aspiration_level=float(rng.uniform(0.005, 0.03)),
    )
