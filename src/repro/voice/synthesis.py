"""Source-filter utterance synthesis.

:class:`Synthesizer` turns a phoneme sequence plus a
:class:`~repro.voice.profiles.SpeakerProfile` into a waveform:

1. build per-sample formant/bandwidth/voicing/frication tracks (with
   linear diphthong glides and moving-average coarticulation smoothing),
2. generate the glottal excitation along a declining, randomly inflected
   F0 contour,
3. stream the excitation through the three formant resonators, updating
   coefficients every 5 ms while carrying filter state,
4. add band-shaped frication noise for fricatives/stop bursts.

The result is intelligible-adjacent, speaker-discriminable speech — all
the ASV front-end needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.dsp.filters import bandpass, moving_average
from repro.dsp.signal import normalize_peak
from repro.errors import ConfigurationError, SignalError
from repro.voice.formants import (
    DEFAULT_BANDWIDTHS,
    PHONEMES,
    FormantResonator,
    phoneme_sequence_for_digits,
)
from repro.constants import DEFAULT_SAMPLE_RATE_HZ
from repro.voice.glottal import GlottalSource
from repro.voice.profiles import SpeakerProfile


@dataclass(frozen=True)
class Utterance:
    """A synthesised utterance plus its provenance."""

    waveform: np.ndarray
    sample_rate: int
    text: str
    phonemes: Tuple[str, ...]
    speaker_id: str

    @property
    def duration_s(self) -> float:
        return len(self.waveform) / self.sample_rate


class Synthesizer:
    """Formant synthesizer for one sample rate.

    A single instance is reusable across speakers; all speaker-specific
    state lives in the profile passed per call.
    """

    #: Coefficient-update interval for the time-varying filter.
    FRAME_MS = 5.0
    #: Coarticulation smoothing window.
    SMOOTH_MS = 25.0
    #: Closure silence inserted before stop consonants.
    STOP_GAP_MS = 30.0

    def __init__(self, sample_rate: int = DEFAULT_SAMPLE_RATE_HZ):
        if sample_rate <= 0:
            raise ConfigurationError("sample_rate must be positive")
        self.sample_rate = sample_rate

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def synthesize_digits(
        self,
        profile: SpeakerProfile,
        digits: str,
        rng: np.random.Generator,
    ) -> Utterance:
        """Speak a digit string (the paper's six-digit pass-phrases)."""
        phonemes = phoneme_sequence_for_digits(digits)
        wave = self._render(profile, phonemes, rng)
        return Utterance(wave, self.sample_rate, digits, phonemes, profile.speaker_id)

    def synthesize_phonemes(
        self,
        profile: SpeakerProfile,
        phonemes: Sequence[str],
        rng: np.random.Generator,
        text: str = "",
    ) -> Utterance:
        """Speak an arbitrary phoneme sequence (Arctic-style prompts)."""
        phonemes = tuple(phonemes)
        wave = self._render(profile, phonemes, rng)
        return Utterance(wave, self.sample_rate, text, phonemes, profile.speaker_id)

    # ------------------------------------------------------------------
    # Rendering pipeline
    # ------------------------------------------------------------------
    def _render(
        self,
        profile: SpeakerProfile,
        phonemes: Sequence[str],
        rng: np.random.Generator,
    ) -> np.ndarray:
        if not phonemes:
            raise SignalError("cannot synthesise an empty phoneme sequence")
        unknown = [p for p in phonemes if p not in PHONEMES]
        if unknown:
            raise SignalError(f"unknown phonemes: {unknown}")

        tracks = self._build_tracks(profile, phonemes, rng)
        n = tracks["formants"].shape[0]
        f0 = self._f0_contour(profile, n, rng)

        source = GlottalSource(
            sample_rate=self.sample_rate,
            open_quotient=profile.open_quotient,
            jitter=profile.jitter,
            shimmer=profile.shimmer,
            tilt_db_per_octave=profile.tilt_db_per_octave,
            aspiration_level=profile.aspiration_level,
        )
        excitation = source.generate(f0, rng, voicing=tracks["voicing"])
        voiced_out = self._formant_filter(
            excitation * tracks["amplitude"],
            tracks["formants"],
            tracks["bandwidths"],
        )
        # The resonator cascade has near-unity gain only at the formant
        # peaks, so the broadband level drops by orders of magnitude.
        # Re-normalise the voiced path before mixing in frication so the
        # two streams keep natural relative levels.
        voiced_mask = tracks["voicing"] > 0.3
        if np.any(voiced_mask):
            v_rms = float(np.sqrt(np.mean(voiced_out[voiced_mask] ** 2)))
            if v_rms > 0:
                voiced_out = voiced_out * (0.15 / v_rms)
        frication_out = self._frication(tracks, profile, rng)
        wave = voiced_out + frication_out
        return normalize_peak(wave, peak=0.9)

    def _build_tracks(
        self,
        profile: SpeakerProfile,
        phonemes: Sequence[str],
        rng: np.random.Generator,
    ) -> dict:
        """Per-sample formant/bandwidth/voicing/frication/amplitude tracks."""
        sr = self.sample_rate
        formant_rows = []
        voicing, frication, amplitude = [], [], []
        gap_samples = int(self.STOP_GAP_MS / 1000.0 * sr)
        for symbol in phonemes:
            ph = PHONEMES[symbol]
            dur_ms = ph.duration_ms / profile.speaking_rate
            dur_ms *= 1.0 + rng.normal(0.0, 0.06)
            n_ph = max(int(dur_ms / 1000.0 * sr), int(0.02 * sr))
            if ph.stop_gap:
                formant_rows.append(
                    np.tile(np.array(ph.formants) * profile.formant_scale, (gap_samples, 1))
                )
                voicing.append(np.zeros(gap_samples))
                frication.append(np.zeros(gap_samples))
                amplitude.append(np.zeros(gap_samples))
            speaker_factors = profile.formant_scale * np.asarray(
                profile.formant_offsets
            )
            start = np.array(ph.formants) * speaker_factors
            end = (
                np.array(ph.end_formants) * speaker_factors
                if ph.end_formants is not None
                else start
            )
            ramp = np.linspace(0.0, 1.0, n_ph)[:, None]
            formant_rows.append(start[None, :] * (1.0 - ramp) + end[None, :] * ramp)
            voicing.append(np.full(n_ph, 1.0 if ph.voiced else 0.0))
            frication.append(np.full(n_ph, ph.frication))
            amplitude.append(np.full(n_ph, ph.amplitude))

        formants = np.vstack(formant_rows)
        smooth_win = max(3, int(self.SMOOTH_MS / 1000.0 * sr))
        for col in range(formants.shape[1]):
            formants[:, col] = moving_average(formants[:, col], smooth_win)
        nyq_cap = sr / 2.0 * 0.95
        formants = np.clip(formants, 60.0, nyq_cap)
        bandwidths = (
            np.array(DEFAULT_BANDWIDTHS)[None, :]
            * profile.bandwidth_scale
            * np.ones((formants.shape[0], 1))
        )
        return {
            "formants": formants,
            "bandwidths": bandwidths,
            "voicing": moving_average(np.concatenate(voicing), smooth_win),
            "frication": moving_average(np.concatenate(frication), smooth_win),
            "amplitude": moving_average(np.concatenate(amplitude), smooth_win),
        }

    def _f0_contour(
        self, profile: SpeakerProfile, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Declining F0 with a slow random inflection, scaled by f0_range."""
        t = np.linspace(0.0, 1.0, n)
        declination = 1.0 + profile.f0_range * (0.5 - t)
        n_knots = max(4, int(n / self.sample_rate * 3.0))
        knots = rng.normal(0.0, profile.f0_range * 0.35, n_knots)
        wiggle = np.interp(t, np.linspace(0.0, 1.0, n_knots), knots)
        contour = profile.f0_hz * declination * (1.0 + wiggle)
        return np.clip(contour, 60.0, 400.0)

    def _formant_filter(
        self,
        excitation: np.ndarray,
        formants: np.ndarray,
        bandwidths: np.ndarray,
    ) -> np.ndarray:
        """Stream through 3 cascaded resonators, re-tuned every frame."""
        sr = self.sample_rate
        frame = max(8, int(self.FRAME_MS / 1000.0 * sr))
        n = excitation.size
        out = np.empty(n)
        states = [None, None, None]
        for start in range(0, n, frame):
            stop = min(start + frame, n)
            mid = (start + stop) // 2
            block = excitation[start:stop]
            for k in range(3):
                resonator = FormantResonator(
                    float(formants[mid, k]), float(bandwidths[mid, k]), sr
                )
                block, states[k] = resonator.filter(block, states[k])
            out[start:stop] = block
        return out

    def _frication(
        self, tracks: dict, profile: SpeakerProfile, rng: np.random.Generator
    ) -> np.ndarray:
        """Band-shaped noise for fricatives and stop bursts."""
        fric = tracks["frication"] * tracks["amplitude"]
        if not np.any(fric > 0):
            return np.zeros_like(fric)
        noise = rng.normal(0.0, 1.0, fric.size)
        low = 2200.0 * profile.formant_scale
        high = min(7200.0 * profile.formant_scale, self.sample_rate / 2.0 * 0.95)
        shaped = bandpass(noise, low, high, self.sample_rate, order=2)
        s_rms = float(np.sqrt(np.mean(shaped**2)))
        if s_rms > 0:
            shaped = shaped / s_rms
        # Fricatives sit well below vowel level (voiced path is
        # renormalised to 0.15 RMS in _render).
        return 0.06 * shaped * fric
