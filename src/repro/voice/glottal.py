"""Glottal excitation source.

Generates the voiced excitation for the source-filter synthesizer: a
Rosenberg-style pulse train at a controllable F0 contour with cycle-level
jitter (period perturbation) and shimmer (amplitude perturbation), passed
through a one-pole low-pass that sets the speaker's spectral tilt, plus a
controllable aspiration-noise floor.

Jitter and shimmer matter beyond realism: the disguise-detection literature
the paper cites ([5], [9]) keys on acoustic parameter variability, and the
human-mimicry attack model raises exactly these parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import DEFAULT_SAMPLE_RATE_HZ
from repro.errors import ConfigurationError, SignalError


def rosenberg_pulse(n_samples: int, open_quotient: float = 0.6, speed_quotient: float = 3.0) -> np.ndarray:
    """One glottal-flow-derivative cycle of ``n_samples`` samples.

    The Rosenberg B model: a rising-then-falling flow during the open phase
    followed by closure.  We return the derivative (what excites the vocal
    tract), normalised to unit peak magnitude.
    """
    if n_samples < 4:
        raise SignalError("a glottal cycle needs at least 4 samples")
    if not 0.1 <= open_quotient <= 0.9:
        raise ConfigurationError("open_quotient must be in [0.1, 0.9]")
    if speed_quotient <= 1.0:
        raise ConfigurationError("speed_quotient must exceed 1")
    n_open = max(3, int(round(open_quotient * n_samples)))
    n_open = min(n_open, n_samples - 1)
    n_rise = max(2, int(round(n_open * speed_quotient / (speed_quotient + 1.0))))
    n_rise = min(n_rise, n_open - 1)
    n_fall = n_open - n_rise
    t_rise = np.linspace(0.0, np.pi, n_rise, endpoint=False)
    rise = 0.5 * (1.0 - np.cos(t_rise))
    t_fall = np.linspace(0.0, np.pi / 2.0, n_fall, endpoint=False)
    fall = np.cos(t_fall)
    flow = np.concatenate([rise, fall, np.zeros(n_samples - n_open)])
    derivative = np.diff(flow, prepend=0.0)
    peak = np.max(np.abs(derivative))
    return derivative / peak if peak > 0 else derivative


@dataclass
class GlottalSource:
    """Pulse-train generator with jitter, shimmer, tilt and aspiration.

    ``jitter`` and ``shimmer`` are relative standard deviations (e.g. 0.01
    = 1 %) applied per glottal cycle.  ``tilt_db_per_octave`` sets the
    source roll-off; steeper tilt reads as a breathier, darker voice.
    """

    sample_rate: int = DEFAULT_SAMPLE_RATE_HZ
    open_quotient: float = 0.6
    speed_quotient: float = 3.0
    jitter: float = 0.01
    shimmer: float = 0.04
    tilt_db_per_octave: float = -12.0
    aspiration_level: float = 0.01

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ConfigurationError("sample_rate must be positive")
        if self.jitter < 0 or self.shimmer < 0 or self.aspiration_level < 0:
            raise ConfigurationError("jitter/shimmer/aspiration must be >= 0")

    def generate(
        self,
        f0_contour: np.ndarray,
        rng: np.random.Generator,
        voicing: np.ndarray | None = None,
    ) -> np.ndarray:
        """Excitation for a per-sample ``f0_contour`` (Hz).

        ``voicing`` is an optional per-sample gain in [0, 1]; unvoiced
        stretches receive only the aspiration noise.
        """
        f0 = np.asarray(f0_contour, dtype=float)
        if f0.ndim != 1 or f0.size == 0:
            raise SignalError("f0_contour must be a non-empty 1-D array")
        if np.any(f0 <= 0):
            raise SignalError("f0_contour must be strictly positive")
        n = f0.size
        gain = np.ones(n) if voicing is None else np.clip(np.asarray(voicing, float), 0.0, 1.0)
        if gain.shape != f0.shape:
            raise SignalError("voicing must match f0_contour length")

        excitation = np.zeros(n)
        pos = 0
        while pos < n:
            period = self.sample_rate / f0[pos]
            period *= 1.0 + rng.normal(0.0, self.jitter)
            cycle_len = int(np.clip(round(period), 4, self.sample_rate // 40))
            cycle = rosenberg_pulse(cycle_len, self.open_quotient, self.speed_quotient)
            amp = max(0.0, 1.0 + rng.normal(0.0, self.shimmer))
            end = min(pos + cycle_len, n)
            excitation[pos:end] += amp * cycle[: end - pos]
            pos += cycle_len
        excitation *= gain
        excitation = self._apply_tilt(excitation)
        noise = rng.normal(0.0, 1.0, n) * self.aspiration_level
        return excitation + noise

    def _apply_tilt(self, x: np.ndarray) -> np.ndarray:
        """One-pole low-pass whose cutoff realises the requested tilt.

        A pole at ``a`` gives roughly −6 dB/octave above its corner; we map
        the configured tilt (relative to the Rosenberg pulse's intrinsic
        −12 dB/octave) onto the pole radius.  Tilt equal to −12 leaves the
        pulse untouched.
        """
        extra_tilt = self.tilt_db_per_octave - (-12.0)
        if extra_tilt >= 0.0:
            return x
        # Map each additional −6 dB/octave to one first-order section.
        n_sections = min(3, max(1, int(round(-extra_tilt / 6.0))))
        corner_hz = 800.0
        from scipy.signal import lfilter

        a = np.exp(-2.0 * np.pi * corner_hz / self.sample_rate)
        y = x
        for _ in range(n_sections):
            y = lfilter([1.0 - a], [1.0, -a], y)
        peak = np.max(np.abs(y))
        return y / peak if peak > 0 else y
