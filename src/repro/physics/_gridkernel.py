"""Optional compiled trilinear-gather kernel for field grids.

Trilinear interpolation over a precomputed field grid is eight scattered
gathers plus a handful of multiply-adds per query point.  numpy's fancy
indexing materialises each gather as a full temporary — eight (n, 3)
allocations per call — which leaves the "fast" grid path slower than the
vectorised analytic dipole it is meant to replace.  The C loop below
does the whole cell lookup + lerp chain per point in registers, with no
temporaries, and also classifies each point as inside/outside the grid
box so the caller can route outside points to the analytic fallback.

The operation order replicates :meth:`FieldGrid.field_at_many`'s numpy
lerp chain exactly (``c00 = v000*(1-fx) + v100*fx`` …), compiled with
``-ffp-contract=off``, so kernel and numpy fallback produce bitwise
identical fields (pinned in ``tests/test_fieldgrid.py``).
"""

from __future__ import annotations

import ctypes

import numpy as np

from repro.ckernel import load_library

_C_SOURCE = r"""
/* Trilinear interpolation over a (nx, ny, nz, 3) C-contiguous grid.

   For each of the n query points:
   - compute fractional cell coordinates r = (pos - lo) / spacing;
   - if the point is outside [0, n-1] on any axis, set inside[p] = 0 and
     leave out[p] untouched (caller fills it analytically);
   - otherwise interpolate with the same lerp chain as the numpy path:
       c00 = v000*(1-fx) + v100*fx; ... ; out = c0*(1-fz) + c1*fz.
*/
void trilinear_many(const double *v, long nx, long ny, long nz,
                    double lox, double loy, double loz, double spacing,
                    const double *pos, long n, double *out,
                    unsigned char *inside) {
    const long sx = ny * nz * 3;
    const long sy = nz * 3;
    for (long p = 0; p < n; p++) {
        const double rx = (pos[3 * p + 0] - lox) / spacing;
        const double ry = (pos[3 * p + 1] - loy) / spacing;
        const double rz = (pos[3 * p + 2] - loz) / spacing;
        if (!(rx >= 0.0 && rx <= (double)(nx - 1) &&
              ry >= 0.0 && ry <= (double)(ny - 1) &&
              rz >= 0.0 && rz <= (double)(nz - 1))) {
            inside[p] = 0;
            continue;
        }
        inside[p] = 1;
        long ix = (long)rx; if (ix > nx - 2) ix = nx - 2;
        long iy = (long)ry; if (iy > ny - 2) iy = ny - 2;
        long iz = (long)rz; if (iz > nz - 2) iz = nz - 2;
        const double fx = rx - (double)ix;
        const double fy = ry - (double)iy;
        const double fz = rz - (double)iz;
        const double gx = 1.0 - fx;
        const double gy = 1.0 - fy;
        const double gz = 1.0 - fz;
        const double *b = v + ix * sx + iy * sy + iz * 3;
        for (int c = 0; c < 3; c++) {
            const double c00 = b[c] * gx + b[sx + c] * fx;
            const double c01 = b[3 + c] * gx + b[sx + 3 + c] * fx;
            const double c10 = b[sy + c] * gx + b[sx + sy + c] * fx;
            const double c11 = b[sy + 3 + c] * gx + b[sx + sy + 3 + c] * fx;
            const double c0 = c00 * gy + c10 * fy;
            const double c1 = c01 * gy + c11 * fy;
            out[3 * p + c] = c0 * gz + c1 * fz;
        }
    }
}
"""

_lib: ctypes.CDLL | None = None
_load_attempted = False


def get_kernel() -> ctypes.CDLL | None:
    """The compiled kernel, building it on first call; None if unavailable."""
    global _lib, _load_attempted
    if not _load_attempted:
        _load_attempted = True
        try:
            lib = load_library("gridk", _C_SOURCE)
            if lib is not None:
                lib.trilinear_many.argtypes = [
                    ctypes.c_void_p,
                    ctypes.c_long,
                    ctypes.c_long,
                    ctypes.c_long,
                    ctypes.c_double,
                    ctypes.c_double,
                    ctypes.c_double,
                    ctypes.c_double,
                    ctypes.c_void_p,
                    ctypes.c_long,
                    ctypes.c_void_p,
                    ctypes.c_void_p,
                ]
                lib.trilinear_many.restype = None
            _lib = lib
        except Exception:  # pragma: no cover - defensive: never break callers
            _lib = None
    return _lib


def kernel_available() -> bool:
    return get_kernel() is not None


def trilinear_many(
    values: np.ndarray,
    lo: np.ndarray,
    spacing: float,
    positions: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Interpolate ``(n, 3)`` positions; returns ``(out, inside_mask)``.

    ``out`` rows where ``inside_mask`` is False are uninitialised — the
    caller must fill them from the analytic source.  Raises
    ``RuntimeError`` if the kernel is unavailable; gate on
    :func:`kernel_available`.
    """
    lib = get_kernel()
    if lib is None:  # pragma: no cover - exercised via fallback tests
        raise RuntimeError("compiled trilinear kernel unavailable")
    if values.ndim != 4 or values.shape[3] != 3:
        raise ValueError("values must have shape (nx, ny, nz, 3)")
    pos = np.ascontiguousarray(positions, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError("positions must have shape (n, 3)")
    v = np.ascontiguousarray(values, dtype=np.float64)
    n = pos.shape[0]
    out = np.empty((n, 3))
    inside = np.zeros(n, dtype=np.uint8)
    lib.trilinear_many(
        v.ctypes.data,
        v.shape[0],
        v.shape[1],
        v.shape[2],
        float(lo[0]),
        float(lo[1]),
        float(lo[2]),
        float(spacing),
        pos.ctypes.data,
        n,
        out.ctypes.data,
        inside.ctypes.data,
    )
    return out, inside.astype(bool)
