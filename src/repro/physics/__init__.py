"""Physical models underpinning the scene simulator.

This subpackage provides the physics the paper's defense exploits:

- :mod:`repro.physics.geometry` — 3-D vectors, rotations and sampled paths.
- :mod:`repro.physics.magnetics` — magnetic dipoles (loudspeaker magnets and
  voice coils), Mu-metal shielding, Earth's field, and environmental
  electromagnetic interference sources.
- :mod:`repro.physics.acoustics` — spherical spreading, baffled-piston
  directivity, and multi-path propagation of narrowband pilots.
"""

from repro.physics.geometry import (
    Pose,
    SampledPath,
    rotation_about_z,
    unit,
)
from repro.physics.magnetics import (
    EARTH_FIELD_UT,
    MU0,
    EnvironmentalInterference,
    MagneticDipole,
    MuMetalShield,
    ShieldedDipole,
    VoiceCoilDipole,
)
from repro.physics.acoustics import (
    SPEED_OF_SOUND,
    CircularPistonSource,
    PointSource,
    pressure_to_db_spl,
    spherical_attenuation,
)

__all__ = [
    "Pose",
    "SampledPath",
    "rotation_about_z",
    "unit",
    "EARTH_FIELD_UT",
    "MU0",
    "EnvironmentalInterference",
    "MagneticDipole",
    "MuMetalShield",
    "ShieldedDipole",
    "VoiceCoilDipole",
    "SPEED_OF_SOUND",
    "CircularPistonSource",
    "PointSource",
    "pressure_to_db_spl",
    "spherical_attenuation",
]
