"""Acoustic propagation and radiation models.

Two verification components of the paper depend on acoustics:

- **Sound field verification** needs the *spatial* intensity pattern of a
  source: a human mouth (a ~2.5 cm aperture in a head baffle) radiates
  differently from a 1 cm earphone driver or a 10 cm PC-speaker cone.  We
  model every source as a baffled circular piston, whose directivity
  ``2·J1(ka·sinθ)/(ka·sinθ)`` depends on the aperture radius ``a`` — exactly
  the "channel size" cue the paper classifies on.
- **Sound source distance verification** needs narrowband propagation with
  accurate *phase*: the phone emits a >16 kHz pilot whose echo phase encodes
  the phone-to-head path length.

Units: metres, seconds, Hz, pascals.  dB SPL is referenced to 20 µPa.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import j1

from repro.errors import ConfigurationError
from repro.physics.geometry import unit

#: Speed of sound in air at ~20 °C, m/s.
SPEED_OF_SOUND = 343.0

#: Reference pressure for dB SPL, Pa.
P_REF = 20e-6


def spherical_attenuation(distance, reference_distance: float = 0.01):
    """Amplitude attenuation of a spherical wave relative to a reference.

    Pressure of a point source falls off as 1/r.  ``reference_distance``
    clamps the singularity at the source; 1 cm is small compared to every
    distance the use case produces (4–15 cm).  Accepts a scalar distance
    (returns ``float``) or an array (returns an array of the same shape).
    """
    if reference_distance <= 0:
        raise ConfigurationError("reference_distance must be positive")
    if np.ndim(distance) == 0:
        return reference_distance / max(float(distance), reference_distance)
    d = np.asarray(distance, dtype=float)
    return reference_distance / np.maximum(d, reference_distance)


def pressure_to_db_spl(pressure_rms: np.ndarray) -> np.ndarray:
    """Convert RMS pressure (Pa) to dB SPL, flooring at 0 dB."""
    p = np.maximum(np.asarray(pressure_rms, dtype=float), P_REF)
    with np.errstate(divide="raise", invalid="raise"):
        # p >= P_REF > 0, so the ratio is >= 1 and the log is total.
        return 20.0 * np.log10(p / P_REF)


def piston_directivity(ka_sin_theta: np.ndarray) -> np.ndarray:
    """Directivity of a baffled circular piston, ``2·J1(x)/x``.

    Evaluates to 1 on-axis (x → 0) and develops side lobes as the product of
    wavenumber and aperture radius grows — larger apertures beam more.
    """
    x = np.asarray(ka_sin_theta, dtype=float)
    out = np.ones_like(x)
    nz = np.abs(x) > 1e-9
    out[nz] = 2.0 * j1(x[nz]) / x[nz]
    return out


@dataclass
class PointSource:
    """An idealised omnidirectional source; used for pilot-tone echoes."""

    position: np.ndarray
    level_db_spl: float = 70.0
    reference_distance: float = 0.01

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=float)
        if self.position.shape != (3,):
            raise ConfigurationError("source position must be a 3-vector")

    def pressure_at(self, position: np.ndarray, frequency_hz: float = 1000.0) -> float:
        """RMS pressure (Pa) at ``position``; frequency is ignored."""
        d = float(np.linalg.norm(np.asarray(position, float) - self.position))
        p_ref_point = P_REF * 10.0 ** (self.level_db_spl / 20.0)
        return p_ref_point * spherical_attenuation(d, self.reference_distance)

    def pressure_at_many(
        self, positions: np.ndarray, frequency_hz: float = 1000.0
    ) -> np.ndarray:
        """Batched :meth:`pressure_at` over ``(n, 3)`` positions."""
        pos = np.atleast_2d(np.asarray(positions, dtype=float))
        d = np.linalg.norm(pos - self.position, axis=1)
        p_ref_point = P_REF * 10.0 ** (self.level_db_spl / 20.0)
        return p_ref_point * spherical_attenuation(d, self.reference_distance)


@dataclass
class CircularPistonSource:
    """A baffled circular piston: the standard model for mouths and cones.

    ``aperture_radius`` is the controlling parameter for the paper's sound
    field verification: the human mouth is ~1.0–1.5 cm radius, an earphone
    driver ~0.4–0.6 cm, a PC loudspeaker cone 2.5–8 cm.  ``axis`` is the
    radiation direction (out of the baffle).

    ``level_db_spl`` is the on-axis level at ``reference_distance``.
    """

    position: np.ndarray
    axis: np.ndarray
    aperture_radius: float
    level_db_spl: float = 75.0
    reference_distance: float = 0.01

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=float)
        self.axis = unit(np.asarray(self.axis, dtype=float))
        if self.aperture_radius <= 0:
            raise ConfigurationError("aperture_radius must be positive")

    def directivity_at(self, position: np.ndarray, frequency_hz: float) -> float:
        """|directivity| toward ``position`` at ``frequency_hz``."""
        r_vec = np.asarray(position, dtype=float) - self.position
        r = np.linalg.norm(r_vec)
        if r < 1e-9:
            return 1.0
        cos_theta = float(np.clip(np.dot(r_vec / r, self.axis), -1.0, 1.0))
        sin_theta = float(np.sqrt(max(0.0, 1.0 - cos_theta**2)))
        k = 2.0 * np.pi * frequency_hz / SPEED_OF_SOUND
        gain = float(np.abs(piston_directivity(np.array([k * self.aperture_radius * sin_theta]))[0]))
        if cos_theta < 0.0:
            # Behind the baffle: strongly shadowed rather than mirror-imaged.
            gain *= 0.1
        return gain

    def directivity_at_many(
        self, positions: np.ndarray, frequency_hz: float
    ) -> np.ndarray:
        """Batched :meth:`directivity_at` over ``(n, 3)`` positions."""
        pos = np.atleast_2d(np.asarray(positions, dtype=float))
        r_vec = pos - self.position
        r = np.linalg.norm(r_vec, axis=1)
        safe = r >= 1e-9
        denom = np.where(safe, r, 1.0)
        cos_theta = np.clip((r_vec / denom[:, None]) @ self.axis, -1.0, 1.0)
        sin_theta = np.sqrt(np.maximum(0.0, 1.0 - cos_theta**2))
        k = 2.0 * np.pi * frequency_hz / SPEED_OF_SOUND
        gain = np.abs(piston_directivity(k * self.aperture_radius * sin_theta))
        gain = np.where(cos_theta < 0.0, gain * 0.1, gain)
        return np.where(safe, gain, 1.0)

    def pressure_at(self, position: np.ndarray, frequency_hz: float) -> float:
        """RMS pressure (Pa) at ``position`` for a tone at ``frequency_hz``."""
        d = float(np.linalg.norm(np.asarray(position, float) - self.position))
        p_on_axis = P_REF * 10.0 ** (self.level_db_spl / 20.0)
        return (
            p_on_axis
            * spherical_attenuation(d, self.reference_distance)
            * self.directivity_at(position, frequency_hz)
        )

    def pressure_at_many(
        self, positions: np.ndarray, frequency_hz: float
    ) -> np.ndarray:
        """Batched :meth:`pressure_at` over ``(n, 3)`` positions."""
        pos = np.atleast_2d(np.asarray(positions, dtype=float))
        d = np.linalg.norm(pos - self.position, axis=1)
        p_on_axis = P_REF * 10.0 ** (self.level_db_spl / 20.0)
        return (
            p_on_axis
            * spherical_attenuation(d, self.reference_distance)
            * self.directivity_at_many(pos, frequency_hz)
        )

    def intensity_profile(
        self,
        angles_rad: np.ndarray,
        radius: float,
        frequency_hz: float,
        plane_normal: np.ndarray | None = None,
    ) -> np.ndarray:
        """dB SPL sampled on an arc of ``radius`` around the source.

        ``angles_rad`` are measured from the radiation axis within the plane
        whose normal is ``plane_normal`` (default: vertical plane through the
        axis).  This is the measurement the phone sweep collects.
        """
        normal = (
            np.array([0.0, 0.0, 1.0]) if plane_normal is None else unit(plane_normal)
        )
        # Build an in-plane vector orthogonal to the axis.
        side = np.cross(normal, self.axis)
        if np.linalg.norm(side) < 1e-9:
            raise ConfigurationError("plane normal must not be parallel to the axis")
        side = unit(side)
        levels = np.empty_like(np.asarray(angles_rad, dtype=float))
        for i, ang in enumerate(np.atleast_1d(angles_rad)):
            direction = np.cos(ang) * self.axis + np.sin(ang) * side
            point = self.position + radius * direction
            levels[i] = pressure_to_db_spl(
                np.array([self.pressure_at(point, frequency_hz)])
            )[0]
        return levels


def delay_seconds(path_length_m: float) -> float:
    """Propagation delay for a path length in metres."""
    if path_length_m < 0:
        raise ConfigurationError("path length must be non-negative")
    return path_length_m / SPEED_OF_SOUND
