"""Small 3-D geometry toolkit used by the scene simulator.

Everything here operates on plain ``numpy`` arrays of shape ``(3,)`` (single
points/vectors) or ``(n, 3)`` (sampled paths).  The library deliberately does
not introduce a heavyweight vector class: captures produced by the simulator
are consumed as arrays by the DSP and detection code anyway.

Coordinate convention (matches the paper's use case in Fig. 3/5):

- ``x`` — horizontal axis pointing away from the user's face,
- ``y`` — horizontal axis across the user's face,
- ``z`` — vertical axis (up).

The sound source (mouth or loudspeaker opening) sits at the origin facing
``+x``; the phone starts tens of centimetres out on ``+x`` and moves inward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


def unit(v: np.ndarray) -> np.ndarray:
    """Return ``v`` normalised to unit length.

    Raises :class:`ConfigurationError` for a zero vector, which would
    otherwise silently produce NaNs deep inside a field evaluation.
    """
    v = np.asarray(v, dtype=float)
    norm = np.linalg.norm(v)
    if norm == 0.0:
        raise ConfigurationError("cannot normalise a zero vector")
    return v / norm


def rotation_about_z(angle_rad: float) -> np.ndarray:
    """Rotation matrix for a right-handed rotation about ``z``."""
    c, s = np.cos(angle_rad), np.sin(angle_rad)
    return np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])


def rotation_about_axis(axis: np.ndarray, angle_rad: float) -> np.ndarray:
    """Rodrigues rotation matrix about an arbitrary ``axis``."""
    k = unit(axis)
    kx = np.array(
        [
            [0.0, -k[2], k[1]],
            [k[2], 0.0, -k[0]],
            [-k[1], k[0], 0.0],
        ]
    )
    return np.eye(3) + np.sin(angle_rad) * kx + (1.0 - np.cos(angle_rad)) * (kx @ kx)


@dataclass(frozen=True)
class Pose:
    """Position plus orientation of a rigid body at one instant.

    ``orientation`` is a 3x3 rotation matrix mapping body-frame vectors into
    the world frame.  The phone's body frame follows the Android sensor
    convention: ``x`` to the right of the screen, ``y`` up the screen,
    ``z`` out of the screen.
    """

    position: np.ndarray
    orientation: np.ndarray

    def __post_init__(self) -> None:
        pos = np.asarray(self.position, dtype=float)
        rot = np.asarray(self.orientation, dtype=float)
        if pos.shape != (3,):
            raise ConfigurationError(f"position must have shape (3,), got {pos.shape}")
        if rot.shape != (3, 3):
            raise ConfigurationError(
                f"orientation must have shape (3, 3), got {rot.shape}"
            )
        object.__setattr__(self, "position", pos)
        object.__setattr__(self, "orientation", rot)

    def to_world(self, body_vector: np.ndarray) -> np.ndarray:
        """Map a body-frame direction into the world frame."""
        return self.orientation @ np.asarray(body_vector, dtype=float)

    def to_body(self, world_vector: np.ndarray) -> np.ndarray:
        """Map a world-frame direction into the body frame."""
        return self.orientation.T @ np.asarray(world_vector, dtype=float)


class SampledPath:
    """A time-stamped sequence of poses for a moving rigid body.

    The scene simulator produces one of these for the phone, then every
    sensor model samples it.  Timestamps must be strictly increasing.
    """

    def __init__(self, times: Sequence[float], poses: Sequence[Pose]):
        times_arr = np.asarray(times, dtype=float)
        if times_arr.ndim != 1 or times_arr.size < 2:
            raise ConfigurationError("a path needs at least two samples")
        if not np.all(np.diff(times_arr) > 0):
            raise ConfigurationError("path timestamps must be strictly increasing")
        if len(poses) != times_arr.size:
            raise ConfigurationError(
                f"{times_arr.size} timestamps but {len(poses)} poses"
            )
        self.times = times_arr
        self.poses = list(poses)

    def __len__(self) -> int:
        return self.times.size

    @property
    def positions(self) -> np.ndarray:
        """All positions as an ``(n, 3)`` array."""
        return np.stack([p.position for p in self.poses])

    @property
    def duration(self) -> float:
        return float(self.times[-1] - self.times[0])

    def velocities(self) -> np.ndarray:
        """Central-difference velocity estimates, shape ``(n, 3)``."""
        return np.gradient(self.positions, self.times, axis=0)

    def accelerations(self) -> np.ndarray:
        """Second-difference acceleration estimates, shape ``(n, 3)``."""
        return np.gradient(self.velocities(), self.times, axis=0)

    def pose_at(self, t: float) -> Pose:
        """Pose at time ``t`` with linear position interpolation.

        Orientation is taken from the nearest sample; the use-case motion is
        slow enough (sub-second sweeps) that nearest-neighbour orientation
        introduces negligible error compared to the sensor noise floor.
        """
        t = float(t)
        if t <= self.times[0]:
            return self.poses[0]
        if t >= self.times[-1]:
            return self.poses[-1]
        idx = int(np.searchsorted(self.times, t))
        t0, t1 = self.times[idx - 1], self.times[idx]
        w = (t - t0) / (t1 - t0)
        pos = (1.0 - w) * self.poses[idx - 1].position + w * self.poses[idx].position
        nearest = idx if w >= 0.5 else idx - 1
        return Pose(pos, self.poses[nearest].orientation)

    def sample_poses(self, times: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`pose_at`: positions ``(n, 3)`` + orientations ``(n, 3, 3)``.

        Reproduces the scalar arithmetic elementwise — linear position
        interpolation with nearest-sample orientation, end poses clamped —
        so sensor models can vectorise without changing a single sample.
        """
        t = np.asarray(times, dtype=float).reshape(-1)
        idx = np.clip(np.searchsorted(self.times, t), 1, self.times.size - 1)
        t0, t1 = self.times[idx - 1], self.times[idx]
        w = (t - t0) / (t1 - t0)
        path_positions = self.positions
        pos = (
            (1.0 - w)[:, None] * path_positions[idx - 1]
            + w[:, None] * path_positions[idx]
        )
        nearest = np.where(w >= 0.5, idx, idx - 1)
        low = t <= self.times[0]
        high = t >= self.times[-1]
        pos[low] = path_positions[0]
        pos[high] = path_positions[-1]
        nearest[low] = 0
        nearest[high] = self.times.size - 1
        orientations = np.stack([p.orientation for p in self.poses])[nearest]
        return pos, orientations

    def positions_at(self, times: np.ndarray) -> np.ndarray:
        """Interpolated positions at ``times``, shape ``(n, 3)``."""
        return self.sample_poses(times)[0]

    def distances_to(self, point: np.ndarray) -> np.ndarray:
        """Euclidean distance from every sample to ``point``."""
        point = np.asarray(point, dtype=float)
        return np.linalg.norm(self.positions - point[None, :], axis=1)


def fit_circle_2d(x: np.ndarray, y: np.ndarray) -> tuple[float, float, float]:
    """Algebraic least-squares circle fit (Kåsa method).

    The paper uses least-squares circle fitting [17] to estimate the
    phone-to-mouth distance from the recovered arc of the hand motion.
    Returns ``(cx, cy, r)``.

    Raises :class:`ConfigurationError` when fewer than three points are
    supplied or the points are collinear (singular normal equations).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ConfigurationError("x and y must be 1-D arrays of equal length")
    if x.size < 3:
        raise ConfigurationError("circle fitting needs at least three points")
    a = np.column_stack([x, y, np.ones_like(x)])
    b = x**2 + y**2
    try:
        from repro.ml.linalg import lstsq_1rhs

        sol, rank = lstsq_1rhs(a, b, rcond=None)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - lstsq rarely raises
        raise ConfigurationError("circle fit failed") from exc
    if rank < 3:
        raise ConfigurationError("points are collinear; circle fit is degenerate")
    cx, cy = sol[0] / 2.0, sol[1] / 2.0
    r_sq = sol[2] + cx**2 + cy**2
    if r_sq <= 0:
        raise ConfigurationError("circle fit produced a non-positive radius")
    return float(cx), float(cy), float(np.sqrt(r_sq))
