"""Precomputed magnetic field grids with trilinear interpolation.

Magnetometer simulation evaluates every time-invariant dipole source at
every trajectory sample.  For sweep studies that re-simulate thousands of
captures against the same loudspeaker geometry, that analytic evaluation
is redundant work: the field of a fixed magnet is a fixed function of
space.  This module precomputes each source's field on a regular grid
once, then answers trajectory queries with trilinear interpolation —
an O(1) gather per sample instead of the dipole arithmetic — falling back
to the exact analytic source for any query outside the grid.

Grids are cached process-wide in :data:`GRID_CACHE`, keyed by a content
hash of the *source geometry* (class, position, moment, core radius,
shield parameters) plus the grid bounds and spacing.  Changing any of
those — moving the magnet, swapping the shield — changes the key, so a
stale grid can never be served for a modified scene (see the cache
invalidation tests).

Interpolation is an approximation: near the magnet the dipole field
varies as 1/r³ and a finite grid cannot track it exactly, which is why
the serving/verification path does NOT use grids (decisions are pinned
bitwise to the analytic model).  Grids are an opt-in accelerator for the
*simulation* side — pass ``use_field_grids=True`` to the scene simulator.
The error budget is pinned in ``tests/test_fieldgrid.py`` and measured
again by ``benchmarks/test_fieldgrid.py``: with the default 5 mm
spacing, worst-case relative error is under 5% beyond 4 grid cells from
the source and under 1.5% beyond 10 cells (typical points are far
better — the worst case sits on the cell diagonals nearest the shell).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.physics import _gridkernel
from repro.physics.magnetics import (
    ConstantField,
    FieldSource,
    MagneticDipole,
    ShieldedDipole,
)

#: Default grid spacing in metres — 5 mm resolves the centimetre-scale
#: near field the paper's detector operates in.
DEFAULT_SPACING = 0.005

#: Default half-extent of the grid cube around the source, metres.
DEFAULT_HALF_EXTENT = 0.35


def source_signature(source: FieldSource) -> bytes:
    """Canonical byte string describing a time-invariant source's geometry.

    Raises :class:`ConfigurationError` for sources whose field depends on
    time (voice coils, interference) or that this module does not know how
    to serialise — those must stay on the analytic path.
    """
    if isinstance(source, MagneticDipole):
        return b"|".join(
            [
                b"MagneticDipole",
                source.position.tobytes(),
                source.moment.tobytes(),
                repr(float(source.core_radius)).encode(),
            ]
        )
    if isinstance(source, ShieldedDipole):
        return b"|".join(
            [
                b"ShieldedDipole",
                source_signature(source.dipole),
                repr(float(source.shield.shielding_factor)).encode(),
                repr(float(source.shield.induced_moment)).encode(),
            ]
        )
    if isinstance(source, ConstantField):
        return b"|".join([b"ConstantField", source.field_ut.tobytes()])
    raise ConfigurationError(
        f"{type(source).__name__} is not grid-cacheable (time-varying or unknown)"
    )


def grid_key(
    source: FieldSource, lo: np.ndarray, hi: np.ndarray, spacing: float
) -> str:
    """Content hash identifying one (source geometry, grid layout) pair."""
    h = hashlib.blake2b(digest_size=16)
    h.update(source_signature(source))
    h.update(np.asarray(lo, dtype=float).tobytes())
    h.update(np.asarray(hi, dtype=float).tobytes())
    h.update(repr(float(spacing)).encode())
    return h.hexdigest()


@dataclass
class FieldGrid:
    """A source's field sampled on a regular grid, plus the exact source.

    ``values`` has shape ``(nx, ny, nz, 3)`` with ``values[i, j, k]`` the
    field at ``lo + (i, j, k) * spacing``.  Queries inside the grid are
    answered by trilinear interpolation; queries outside fall through to
    the wrapped analytic source, so a trajectory that leaves the box is
    still exact there.
    """

    source: FieldSource
    lo: np.ndarray
    spacing: float
    values: np.ndarray
    key: str

    @classmethod
    def build(
        cls,
        source: FieldSource,
        lo: np.ndarray,
        hi: np.ndarray,
        spacing: float,
    ) -> "FieldGrid":
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        if lo.shape != (3,) or hi.shape != (3,):
            raise ConfigurationError("grid bounds must be 3-vectors")
        if spacing <= 0:
            raise ConfigurationError("grid spacing must be positive")
        if np.any(hi - lo < spacing):
            raise ConfigurationError("grid bounds must span at least one cell")
        key = grid_key(source, lo, hi, spacing)
        axes = [np.arange(lo[d], hi[d] + spacing / 2.0, spacing) for d in range(3)]
        nx, ny, nz = (len(a) for a in axes)
        gx, gy, gz = np.meshgrid(*axes, indexing="ij")
        points = np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])
        values = np.asarray(
            source.field_at_many(points, np.zeros(points.shape[0])), dtype=float
        ).reshape(nx, ny, nz, 3)
        return cls(source=source, lo=lo, spacing=spacing, values=values, key=key)

    @property
    def shape(self) -> tuple:
        return self.values.shape[:3]

    @property
    def hi(self) -> np.ndarray:
        return self.lo + (np.array(self.shape) - 1) * self.spacing

    def field_at_many(
        self, positions: np.ndarray, times: Optional[np.ndarray] = None
    ) -> np.ndarray:
        pos = np.atleast_2d(np.asarray(positions, dtype=float))
        if _gridkernel.kernel_available():
            # Compiled gather: same lerp chain, no numpy temporaries —
            # bitwise identical to the fallback below (pinned in tests).
            out, inside = _gridkernel.trilinear_many(
                self.values, self.lo, self.spacing, pos
            )
        else:
            out, inside = self._interp_numpy(pos)
        if not np.all(inside):
            # Exact analytic fallback outside the gridded box.  All grid-
            # cacheable sources are time-invariant, so zeros stand in for
            # absent timestamps (ConstantField only uses them for sizing).
            outside = ~inside
            t_out = (
                np.zeros(int(outside.sum()))
                if times is None
                else np.asarray(times, dtype=float)[outside]
            )
            out[outside] = self.source.field_at_many(pos[outside], t_out)
        return out

    def _interp_numpy(self, pos: np.ndarray) -> tuple:
        """Pure-numpy trilinear path; ``out`` rows outside the box are
        uninitialised (the caller fills them analytically)."""
        rel = (pos - self.lo) / self.spacing
        n = np.array(self.shape)
        inside = np.all((rel >= 0.0) & (rel <= n - 1), axis=1)
        out = np.empty((pos.shape[0], 3))
        if np.any(inside):
            r = rel[inside]
            i0 = np.minimum(r.astype(int), n - 2)
            f = r - i0
            v = self.values
            ix, iy, iz = i0[:, 0], i0[:, 1], i0[:, 2]
            fx, fy, fz = f[:, 0:1], f[:, 1:2], f[:, 2:3]
            c00 = v[ix, iy, iz] * (1 - fx) + v[ix + 1, iy, iz] * fx
            c01 = v[ix, iy, iz + 1] * (1 - fx) + v[ix + 1, iy, iz + 1] * fx
            c10 = v[ix, iy + 1, iz] * (1 - fx) + v[ix + 1, iy + 1, iz] * fx
            c11 = v[ix, iy + 1, iz + 1] * (1 - fx) + v[ix + 1, iy + 1, iz + 1] * fx
            c0 = c00 * (1 - fy) + c10 * fy
            c1 = c01 * (1 - fy) + c11 * fy
            out[inside] = c0 * (1 - fz) + c1 * fz
        return out, inside

    def field_at(self, position: np.ndarray, t: float = 0.0) -> np.ndarray:
        return self.field_at_many(np.asarray(position, dtype=float)[None, :])[0]


class GridCache:
    """Process-level content-addressed cache of :class:`FieldGrid` objects.

    Thread-safe: lookups, counter updates, and FIFO eviction happen under
    one lock (sharded gateways simulate captures from worker threads).
    The expensive :meth:`FieldGrid.build` runs *outside* the lock, so two
    threads missing the same key may both build — the second insert is
    discarded in favour of the first, and both callers get a consistent
    grid; grids are deterministic, so which build wins is unobservable.
    """

    def __init__(self, max_entries: int = 64):
        self._grids: Dict[str, FieldGrid] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()

    def get(
        self,
        source: FieldSource,
        lo: np.ndarray,
        hi: np.ndarray,
        spacing: float = DEFAULT_SPACING,
    ) -> FieldGrid:
        key = grid_key(source, lo, hi, spacing)
        with self._lock:
            grid = self._grids.get(key)
            if grid is not None:
                self.hits += 1
                return grid
            self.misses += 1
        built = FieldGrid.build(source, lo, hi, spacing)
        with self._lock:
            existing = self._grids.get(key)
            if existing is not None:
                # Lost a build race; serve the first-inserted grid so all
                # callers of this key share one object.
                return existing
            if len(self._grids) >= self.max_entries:
                # Drop the oldest entry (insertion order) — sweep workloads
                # cycle through a handful of geometries, so simple FIFO is
                # fine.
                self._grids.pop(next(iter(self._grids)))
            self._grids[key] = built
        return built

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._grids),
                "hits": self.hits,
                "misses": self.misses,
            }

    def clear(self) -> None:
        with self._lock:
            self._grids.clear()
            self.hits = 0
            self.misses = 0


#: Shared process-level cache used by the scene simulator's opt-in path.
GRID_CACHE = GridCache()


class GriddedFieldSource(FieldSource):
    """A :class:`FieldSource` adapter that answers via a cached grid."""

    def __init__(
        self,
        source: FieldSource,
        lo: np.ndarray,
        hi: np.ndarray,
        spacing: float = DEFAULT_SPACING,
        cache: Optional[GridCache] = None,
    ):
        self.source = source
        self.grid = (cache or GRID_CACHE).get(source, lo, hi, spacing)

    def field_at(self, position: np.ndarray, t: float = 0.0) -> np.ndarray:
        return self.grid.field_at(position, t)

    def field_at_many(
        self, positions: np.ndarray, times: Optional[np.ndarray] = None
    ) -> np.ndarray:
        return self.grid.field_at_many(positions, times)


def grid_wrap_sources(
    sources: Sequence[FieldSource],
    trajectory_positions: np.ndarray,
    spacing: float = DEFAULT_SPACING,
    margin: float = 0.05,
    cache: Optional[GridCache] = None,
) -> list:
    """Wrap every grid-cacheable source in ``sources`` with a cached grid.

    The grid box covers the trajectory's bounding box plus ``margin`` on
    every side, so in-sweep queries interpolate and only stray samples hit
    the analytic fallback.  Sources that are not grid-cacheable (voice
    coils, interference, plain callables) are returned unchanged — the
    result is a drop-in replacement for the original source list.
    """
    pos = np.atleast_2d(np.asarray(trajectory_positions, dtype=float))
    lo = pos.min(axis=0) - margin
    hi = pos.max(axis=0) + margin
    wrapped: list = []
    for source in sources:
        try:
            wrapped.append(GriddedFieldSource(source, lo, hi, spacing, cache=cache))
        except (ConfigurationError, AttributeError):
            wrapped.append(source)
    return wrapped
