"""Magnetic field models: loudspeaker magnets, shielding, and interference.

The paper's central insight is that every conventional (dynamic) loudspeaker
contains a permanent magnet and a voice coil, and therefore emits a magnetic
field that a smartphone magnetometer can sense within a few centimetres.
This module provides the field sources the scene simulator superimposes:

- :class:`MagneticDipole` — the permanent magnet.  Near-field strength of
  commercial loudspeakers is 30–210 µT (paper, Fig. 10 caption); the dipole
  moments in :mod:`repro.devices` are calibrated to land in that range at
  typical measurement radii.
- :class:`VoiceCoilDipole` — the audio-driven coil, a dipole whose moment is
  modulated by the drive signal.  This produces the *changing-rate* signature
  the detector thresholds with ``βt``.
- :class:`MuMetalShield` / :class:`ShieldedDipole` — attenuates the emitted
  dipole but adds an induced soft-magnetic moment for the shield box itself,
  reproducing the paper's observation that "the metal box can still be
  detected by our system" at very close range (§VI, Magnetic Field
  Shielding).
- :class:`EnvironmentalInterference` — stochastic bias + fluctuation fields
  modelling the iMac and car environments of Fig. 14.

All positions are metres, all fields are microtesla (µT).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.physics.geometry import unit

#: Vacuum permeability in µT·m/A (the usual 4π×10⁻⁷ T·m/A expressed in µT).
MU0 = 4.0 * np.pi * 1e-1

#: Magnitude of Earth's geomagnetic field in µT (mid-latitude typical value).
EARTH_FIELD_UT = 50.0

#: Default Earth-field direction: mostly horizontal with a downward dip.
EARTH_FIELD_DIRECTION = np.array([0.6, 0.0, -0.8])


def earth_field(direction: Optional[np.ndarray] = None) -> np.ndarray:
    """Earth's field vector in µT; constant over the centimetre-scale scene."""
    d = EARTH_FIELD_DIRECTION if direction is None else np.asarray(direction, float)
    return EARTH_FIELD_UT * unit(d)


class FieldSource:
    """Interface for anything that contributes magnetic field to the scene."""

    def field_at(self, position: np.ndarray, t: float = 0.0) -> np.ndarray:
        """Field vector in µT at world ``position`` (m) and time ``t`` (s)."""
        raise NotImplementedError

    def field_at_many(self, positions: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Field vectors for ``(n, 3)`` positions at matching ``(n,)`` times.

        The base implementation loops over :meth:`field_at`; subclasses
        override it with a batched evaluation that reproduces the scalar
        arithmetic elementwise.  The magnetometer model samples entire
        trajectories through this entry point.
        """
        positions = np.atleast_2d(np.asarray(positions, dtype=float))
        times = np.asarray(times, dtype=float).reshape(-1)
        return np.stack(
            [
                np.asarray(self.field_at(p, float(t)), dtype=float)
                for p, t in zip(positions, times)
            ]
        )


@dataclass
class ConstantField(FieldSource):
    """A spatially and temporally uniform field (e.g. Earth's field)."""

    field_ut: np.ndarray

    def __post_init__(self) -> None:
        self.field_ut = np.asarray(self.field_ut, dtype=float)
        if self.field_ut.shape != (3,):
            raise ConfigurationError("field_ut must be a 3-vector")

    def field_at(self, position: np.ndarray, t: float = 0.0) -> np.ndarray:
        return self.field_ut

    def field_at_many(self, positions: np.ndarray, times: np.ndarray) -> np.ndarray:
        n = np.asarray(times, dtype=float).reshape(-1).size
        return np.tile(self.field_ut, (n, 1))


@dataclass
class MagneticDipole(FieldSource):
    """A point magnetic dipole.

    ``moment`` is the dipole moment vector in A·m².  For reference, a small
    ferrite loudspeaker magnet is on the order of 0.05–0.5 A·m², which gives
    the 30–210 µT near-field readings the paper reports at a few centimetres.
    """

    position: np.ndarray
    moment: np.ndarray

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=float)
        self.moment = np.asarray(self.moment, dtype=float)
        if self.position.shape != (3,) or self.moment.shape != (3,):
            raise ConfigurationError("dipole position and moment must be 3-vectors")

    #: Radius (m) inside which the point-dipole formula is clamped.  Real
    #: magnets are finite; clamping keeps simulated fields physical when a
    #: trajectory passes within millimetres of the source.
    core_radius: float = 0.008

    def field_at(self, position: np.ndarray, t: float = 0.0) -> np.ndarray:
        r_vec = np.asarray(position, dtype=float) - self.position
        r_norm = np.linalg.norm(r_vec)
        r_hat = (
            r_vec / r_norm if r_norm > 1e-12 else np.array([1.0, 0.0, 0.0])
        )
        r = max(r_norm, self.core_radius)
        m = self.moment
        # B(r) = µ0/(4π) · (3(m·r̂)r̂ − m) / r³, in µT because MU0 is in µT·m/A.
        return (MU0 / (4.0 * np.pi)) * (3.0 * np.dot(m, r_hat) * r_hat - m) / r**3

    def field_at_many(
        self, positions: np.ndarray, times: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Batched :meth:`field_at` (the dipole field is time-invariant)."""
        pos = np.atleast_2d(np.asarray(positions, dtype=float))
        r_vec = pos - self.position
        r_norm = np.linalg.norm(r_vec, axis=1)
        safe = r_norm > 1e-12
        denom = np.where(safe, r_norm, 1.0)
        r_hat = np.where(
            safe[:, None], r_vec / denom[:, None], np.array([1.0, 0.0, 0.0])
        )
        r = np.maximum(r_norm, self.core_radius)
        m = self.moment
        proj = r_hat @ m
        return (
            (MU0 / (4.0 * np.pi))
            * (3.0 * proj[:, None] * r_hat - m)
            / (r**3)[:, None]
        )

    def magnitude_at(self, position: np.ndarray) -> float:
        return float(np.linalg.norm(self.field_at(position)))


@dataclass
class VoiceCoilDipole(FieldSource):
    """The audio-driven voice coil of a dynamic loudspeaker.

    The coil's dipole moment follows the drive waveform; while music or
    speech plays, the emitted field fluctuates at audio rate.  The detector's
    changing-rate threshold ``βt`` keys on exactly this fluctuation, so the
    coil is modelled separately from the permanent magnet.

    ``drive`` maps time (s) to a normalised drive level in [-1, 1]; when
    omitted the coil is silent.
    """

    position: np.ndarray
    axis: np.ndarray
    peak_moment: float
    drive: Optional[object] = None

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=float)
        self.axis = unit(np.asarray(self.axis, dtype=float))
        if self.peak_moment < 0:
            raise ConfigurationError("peak_moment must be non-negative")
        self._static = MagneticDipole(self.position, self.axis * self.peak_moment)

    def field_at(self, position: np.ndarray, t: float = 0.0) -> np.ndarray:
        level = float(self.drive(t)) if self.drive is not None else 0.0
        level = float(np.clip(level, -1.0, 1.0))
        return level * self._static.field_at(position)

    def field_at_many(self, positions: np.ndarray, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=float).reshape(-1)
        pos = np.atleast_2d(np.asarray(positions, dtype=float))
        if self.drive is None:
            return np.zeros((times.size, 3))
        try:
            level = np.asarray(self.drive(times), dtype=float)
            if level.shape != times.shape:
                raise TypeError("drive is not vectorised")
        except (TypeError, ValueError):
            level = np.array([float(self.drive(float(t))) for t in times])
        level = np.clip(level, -1.0, 1.0)
        return level[:, None] * self._static.field_at_many(pos)


@dataclass(frozen=True)
class MuMetalShield:
    """A high-permeability shield box around a loudspeaker magnet.

    Mu-metal (77% Ni, 16% Fe, 5% Cu, 2% Cr — paper §VI) redirects flux
    through its walls.  We model two effects the paper measures:

    - the external dipole field is attenuated by ``shielding_factor``
      (typical single-layer boxes achieve 10–40x), and
    - the shield itself is soft-magnetic metal, which acquires an induced
      moment in the ambient + magnet field.  At very close range the
      magnetometer still sees this induced moment, which is why the paper's
      detector keeps working at ≤ 6 cm even against shielded speakers.
    """

    shielding_factor: float = 20.0
    induced_moment: float = 0.02

    def __post_init__(self) -> None:
        if self.shielding_factor < 1.0:
            raise ConfigurationError("shielding_factor must be >= 1")
        if self.induced_moment < 0.0:
            raise ConfigurationError("induced_moment must be non-negative")


@dataclass
class ShieldedDipole(FieldSource):
    """A :class:`MagneticDipole` enclosed in a :class:`MuMetalShield`."""

    dipole: MagneticDipole
    shield: MuMetalShield = field(default_factory=MuMetalShield)

    def __post_init__(self) -> None:
        induced_axis = (
            unit(self.dipole.moment)
            if np.linalg.norm(self.dipole.moment) > 0
            else np.array([1.0, 0.0, 0.0])
        )
        self._induced = MagneticDipole(
            self.dipole.position, induced_axis * self.shield.induced_moment
        )

    def field_at(self, position: np.ndarray, t: float = 0.0) -> np.ndarray:
        leaked = self.dipole.field_at(position) / self.shield.shielding_factor
        return leaked + self._induced.field_at(position)

    def field_at_many(
        self, positions: np.ndarray, times: Optional[np.ndarray] = None
    ) -> np.ndarray:
        leaked = self.dipole.field_at_many(positions) / self.shield.shielding_factor
        return leaked + self._induced.field_at_many(positions)


@dataclass
class EnvironmentalInterference(FieldSource):
    """Stochastic environmental magnetic interference.

    Models the EMF environments of Fig. 14: a quiet room, a desk next to an
    iMac, and a car front seat.  The field is a fixed bias (ferromagnetic
    structure nearby) plus band-limited fluctuation (switching supplies,
    motors, alternator) whose amplitude scales with ``fluctuation_ut``.

    The fluctuation is generated once per instance from ``seed`` as a sum of
    low-frequency sinusoids with random phases, so repeated evaluation at the
    same ``t`` is deterministic — a property the capture pipeline relies on.
    """

    bias_ut: np.ndarray = field(default_factory=lambda: np.zeros(3))
    fluctuation_ut: float = 0.0
    fluctuation_hz: float = 8.0
    n_components: int = 6
    #: Spatial growth of the interference along +x (per metre).  Models a
    #: localised emitter (e.g. a computer behind the sound source): the
    #: further out the trajectory starts, the closer the phone gets to the
    #: emitter — the effect the paper observes near the iMac.
    gradient_per_m: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        self.bias_ut = np.asarray(self.bias_ut, dtype=float)
        if self.bias_ut.shape != (3,):
            raise ConfigurationError("bias_ut must be a 3-vector")
        if self.fluctuation_ut < 0:
            raise ConfigurationError("fluctuation_ut must be non-negative")
        if self.gradient_per_m < 0:
            raise ConfigurationError("gradient_per_m must be non-negative")
        rng = np.random.default_rng(self.seed)
        self._freqs = rng.uniform(0.5, self.fluctuation_hz, (self.n_components, 3))
        self._phases = rng.uniform(0.0, 2.0 * np.pi, (self.n_components, 3))
        weights = rng.uniform(0.3, 1.0, (self.n_components, 3))
        norm = np.sqrt((weights**2).sum(axis=0))
        self._weights = weights / np.where(norm > 0, norm, 1.0)

    def field_at(self, position: np.ndarray, t: float = 0.0) -> np.ndarray:
        wave = np.sin(2.0 * np.pi * self._freqs * t + self._phases)
        fluctuation = self.fluctuation_ut * (self._weights * wave).sum(axis=0)
        scale = 1.0 + self.gradient_per_m * max(float(np.asarray(position)[0]), 0.0)
        return (self.bias_ut + fluctuation) * scale

    def field_at_many(self, positions: np.ndarray, times: np.ndarray) -> np.ndarray:
        pos = np.atleast_2d(np.asarray(positions, dtype=float))
        t = np.asarray(times, dtype=float).reshape(-1)
        wave = np.sin(
            2.0 * np.pi * self._freqs * t[:, None, None] + self._phases
        )
        fluctuation = self.fluctuation_ut * (self._weights * wave).sum(axis=1)
        scale = 1.0 + self.gradient_per_m * np.maximum(pos[:, 0], 0.0)
        return (self.bias_ut + fluctuation) * scale[:, None]


def quiet_room_interference(seed: int = 0) -> EnvironmentalInterference:
    """Baseline indoor environment: small static bias, negligible ripple."""
    return EnvironmentalInterference(
        bias_ut=np.array([1.0, -0.5, 0.4]), fluctuation_ut=0.15, seed=seed
    )


def near_computer_interference(seed: int = 0) -> EnvironmentalInterference:
    """Desk next to an iMac 27" (paper: 500–2500 µW/m² measured exposure).

    The dominant magnetometer-visible effect is a several-µT bias from the
    chassis plus low-frequency ripple from the power supply and display,
    both growing toward the screen (the +x gradient): trajectories that
    start farther out begin closer to the iMac.
    """
    return EnvironmentalInterference(
        bias_ut=np.array([3.2, 1.4, -1.6]),
        fluctuation_ut=1.0,
        fluctuation_hz=4.0,
        gradient_per_m=6.0,
        seed=seed,
    )


def car_interference(seed: int = 0) -> EnvironmentalInterference:
    """Car front seat (Hyundai Sonata 2012 in the paper).

    Cars combine a large ferromagnetic body (big bias) with many electrical
    emitters, producing the strongest fluctuation of the three environments.
    """
    return EnvironmentalInterference(
        bias_ut=np.array([14.0, -7.0, 9.0]),
        fluctuation_ut=2.4,
        fluctuation_hz=5.0,
        seed=seed,
    )
