"""Consistent-hash routing of requests onto shard processes.

The sharded gateway pins every claimed speaker to exactly one shard
process, so that user's sound-field model and ASV traffic live in a
single process (shared-nothing ownership; no cross-process model
movement).  The assignment must be

- **deterministic across processes and runs** — routing uses a keyed
  ``blake2b`` digest, never Python's per-process salted ``hash()``, so a
  restarted gateway (or a replacement shard forked mid-flight) routes
  every speaker exactly as before;
- **uniform** — each shard places ``vnodes`` points on the ring, which
  keeps the per-shard key share within a few percent of ``1/N`` (the
  router property test pins a chi-square bound);
- **stable under resharding** — growing ``N`` shards to ``N + 1`` moves
  only the keys the new shard's points capture, about ``1/(N+1)`` of
  them; the remaining assignments are untouched (also pinned by test).

This module must stay fork-safe: shard workers are forked from the
gateway process, so no module-level lock/RNG/cache state may exist here
(enforced by the ``fork-safety`` static-analysis rule).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["ConsistentHashRouter"]

#: Ring points per shard.  More points smooth the per-shard share at the
#: cost of a (one-off) larger ring sort; 1024 keeps the key share
#: statistically indistinguishable from uniform (chi-square well under
#: the 99.9% bound) for shard counts up to 16, at a few ms of build.
DEFAULT_VNODES = 1024


def _point(key: str) -> int:
    """Position of ``key`` on the 64-bit ring (process-independent)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRouter:
    """Immutable speaker-id → shard-index map over a hash ring."""

    def __init__(self, shards: int, vnodes: int = DEFAULT_VNODES):
        if shards < 1:
            raise ConfigurationError("router needs at least one shard")
        if vnodes < 1:
            raise ConfigurationError("vnodes must be positive")
        self.shards = shards
        self.vnodes = vnodes
        ring: List[Tuple[int, int]] = []
        for shard in range(shards):
            for v in range(vnodes):
                ring.append((_point(f"shard:{shard}:vnode:{v}"), shard))
        ring.sort()
        self._points = [p for p, _ in ring]
        self._owners = [s for _, s in ring]

    def route(self, speaker_id: Optional[str]) -> int:
        """The shard owning ``speaker_id`` (claim-less requests route on
        the empty string, so they still land deterministically)."""
        point = _point(speaker_id if speaker_id is not None else "")
        i = bisect.bisect_right(self._points, point)
        if i == len(self._points):  # wrap around the ring
            i = 0
        return self._owners[i]

    def assignments(self, speaker_ids: Iterable[str]) -> Dict[str, int]:
        """Route a batch of keys (for rebalancing / ownership reports)."""
        return {key: self.route(key) for key in speaker_ids}

    def resized(self, shards: int) -> "ConsistentHashRouter":
        """A router over a different shard count, same vnode density."""
        return ConsistentHashRouter(shards, vnodes=self.vnodes)
