"""A small thread-pool job scheduler (the APScheduler role).

The paper "leverage[s] the Advanced Python Scheduler (APScheduler) to
accelerate the process of defending against the machine-based voice
impersonation attack" — the three machine-detection components are
independent given a capture, so the backend fans them out and joins the
results.
"""

from __future__ import annotations

import threading
import queue
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError


@dataclass
class JobResult:
    """Outcome of one scheduled job."""

    name: str
    value: Any = None
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class JobScheduler:
    """Run named callables on a fixed pool of worker threads.

    The pool is created lazily on first use and torn down with
    :meth:`shutdown` (or by the context-manager protocol).  Jobs raising
    exceptions report them in their :class:`JobResult` instead of killing
    the worker.
    """

    def __init__(self, workers: int = 3):
        if workers <= 0:
            raise ConfigurationError("need at least one worker")
        self._workers = workers
        self._queue: "queue.Queue[Optional[Tuple[str, Callable[[], Any], List[JobResult], threading.Semaphore]]]" = (
            queue.Queue()
        )
        self._threads: List[threading.Thread] = []
        self._lock = threading.Lock()
        self._started = False

    def _ensure_started(self) -> None:
        with self._lock:
            if self._started:
                return
            for i in range(self._workers):
                t = threading.Thread(
                    target=self._worker, name=f"verify-worker-{i}", daemon=True
                )
                t.start()
                self._threads.append(t)
            self._started = True

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            name, fn, sink, done = item
            try:
                result = JobResult(name=name, value=fn())
            except BaseException as exc:  # noqa: BLE001 - reported, not rethrown
                result = JobResult(name=name, error=exc)
            sink.append(result)
            done.release()
            self._queue.task_done()

    def run_all(self, jobs: Dict[str, Callable[[], Any]]) -> Dict[str, JobResult]:
        """Run every job, block until all finish, return results by name."""
        if not jobs:
            return {}
        self._ensure_started()
        sink: List[JobResult] = []
        done = threading.Semaphore(0)
        for name, fn in jobs.items():
            self._queue.put((name, fn, sink, done))
        for _ in jobs:
            done.acquire()
        return {r.name: r for r in sink}

    def shutdown(self) -> None:
        """Stop the workers (idempotent)."""
        with self._lock:
            if not self._started:
                return
            for _ in self._threads:
                self._queue.put(None)
            for t in self._threads:
                t.join(timeout=5.0)
            self._threads.clear()
            self._started = False

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
