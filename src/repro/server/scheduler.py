"""A small thread-pool job scheduler (the APScheduler role).

The paper "leverage[s] the Advanced Python Scheduler (APScheduler) to
accelerate the process of defending against the machine-based voice
impersonation attack" — the three machine-detection components are
independent given a capture, so the backend fans them out and joins the
results.

The serving gateway additionally needs the pool to survive misbehaving
components: every job can carry a per-job execution timeout (a hung
component degrades to a :class:`JobResult` holding a
:class:`~repro.errors.ComponentTimeoutError` while a replacement worker
thread keeps the pool at capacity) and a bounded retry budget for jobs
that crash.  Timeouts are *not* retried — a component that hung once is
overwhelmingly likely to hang again, and retrying it would tie up another
worker for a full timeout window.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.analysis import lockset
from repro.errors import ComponentTimeoutError, ConfigurationError


@dataclass
class JobResult:
    """Outcome of one scheduled job."""

    name: str
    value: Any = None
    error: Optional[BaseException] = None
    #: How many times the job ran (1 + crash retries).
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def timed_out(self) -> bool:
        return isinstance(self.error, ComponentTimeoutError)


class _Job:
    """Internal per-attempt record shared between waiter and worker."""

    __slots__ = ("name", "fn", "started_evt", "done_evt", "started_at", "result", "abandoned")

    def __init__(self, name: str, fn: Callable[[], Any]):
        self.name = name
        self.fn = fn
        self.started_evt = threading.Event()
        self.done_evt = threading.Event()
        self.started_at: Optional[float] = None
        self.result: Optional[JobResult] = None
        #: Set by the waiter on timeout (or by shutdown(drain=False)).
        #: A queued abandoned job is skipped; a running one retires its
        #: worker when it eventually returns (a replacement was spawned).
        self.abandoned = False


class JobScheduler:
    """Run named callables on a fixed pool of worker threads.

    The pool is created lazily on first use and torn down with
    :meth:`shutdown` (or by the context-manager protocol, which drains
    in-flight jobs).  Jobs raising exceptions report them in their
    :class:`JobResult` instead of killing the worker.  Once shut down, the
    scheduler is closed for good: :meth:`run_all` raises
    :class:`~repro.errors.ConfigurationError`.
    """

    def __init__(
        self,
        workers: int = 3,
        default_timeout_s: Optional[float] = None,
        default_retries: int = 0,
    ):
        if workers <= 0:
            raise ConfigurationError("need at least one worker")
        if default_timeout_s is not None and default_timeout_s <= 0:
            raise ConfigurationError("default_timeout_s must be positive")
        if default_retries < 0:
            raise ConfigurationError("default_retries must be >= 0")
        self._workers = workers
        self._default_timeout_s = default_timeout_s
        self._default_retries = default_retries
        self._queue: "queue.Queue[Optional[_Job]]" = queue.Queue()
        self._threads: List[threading.Thread] = []  # guarded-by: _lock
        self._lock = threading.Lock()
        self._started = False  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._spawned = 0  # guarded-by: _lock
        lockset.register(self)

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _spawn_worker_locked(self) -> None:
        t = threading.Thread(
            target=self._worker, name=f"verify-worker-{self._spawned}", daemon=True
        )
        self._spawned += 1
        t.start()
        self._threads.append(t)

    def _ensure_started(self) -> None:
        with self._lock:
            if self._closed:
                raise ConfigurationError("scheduler has been shut down")
            if self._started:
                return
            for _ in range(self._workers):
                self._spawn_worker_locked()
            self._started = True

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                self._queue.task_done()
                return
            with self._lock:
                if job.abandoned:
                    # Timed out while still queued — never ran, skip it.
                    self._queue.task_done()
                    continue
                job.started_at = time.monotonic()
            job.started_evt.set()
            try:
                result = JobResult(name=job.name, value=job.fn())
            except BaseException as exc:  # noqa: BLE001 - reported, not rethrown
                result = JobResult(name=job.name, error=exc)
            with self._lock:
                retire = job.abandoned
                if not retire:
                    job.result = result
            job.done_evt.set()
            self._queue.task_done()
            if retire:
                # The waiter gave up on this job and spawned a replacement
                # worker; exit to keep the pool at its configured size.
                return

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _submit(self, name: str, fn: Callable[[], Any]) -> _Job:
        job = _Job(name, fn)
        self._queue.put(job)
        return job

    def _await(self, job: _Job, timeout_s: Optional[float]) -> JobResult:
        if timeout_s is None:
            job.done_evt.wait()
            assert job.result is not None
            return job.result
        # Phase 1: wait for a worker to pick the job up.  Replacement
        # workers keep the pool at capacity, so queue delay is transient;
        # a full timeout window with no pickup still counts as a timeout.
        if job.started_at is None and not job.started_evt.wait(timeout_s):
            with self._lock:
                if job.started_at is None:
                    job.abandoned = True
                    return JobResult(
                        name=job.name,
                        error=ComponentTimeoutError(
                            f"{job.name!r} was not scheduled within {timeout_s:.3f}s"
                        ),
                    )
        # Phase 2: the execution budget counts from the actual start.
        assert job.started_at is not None
        remaining = job.started_at + timeout_s - time.monotonic()
        if remaining > 0:
            job.done_evt.wait(remaining)
        with self._lock:
            if job.result is not None:
                return job.result
            job.abandoned = True
            # The worker is stuck inside job.fn; replace it so the pool
            # keeps serving other requests.
            self._spawn_worker_locked()
        return JobResult(
            name=job.name,
            error=ComponentTimeoutError(
                f"{job.name!r} exceeded its {timeout_s:.3f}s execution budget"
            ),
        )

    def run_all(
        self,
        jobs: Dict[str, Callable[[], Any]],
        timeout_s: Optional[float] = None,
        retries: Optional[int] = None,
    ) -> Dict[str, JobResult]:
        """Run every job, block until all finish, return results by name.

        ``timeout_s`` bounds each job's *execution* time (defaulting to the
        scheduler-wide default; ``None`` means wait forever).  ``retries``
        re-runs jobs that raised, up to that many extra attempts; timeouts
        are never retried.
        """
        with self._lock:
            if self._closed:
                raise ConfigurationError("scheduler has been shut down")
        if not jobs:
            return {}
        self._ensure_started()
        effective_timeout = (
            self._default_timeout_s if timeout_s is None else timeout_s
        )
        budget = self._default_retries if retries is None else retries
        attempts = {name: 1 for name in jobs}
        pending = {name: self._submit(name, fn) for name, fn in jobs.items()}
        results: Dict[str, JobResult] = {}
        while pending:
            name, job = next(iter(pending.items()))
            del pending[name]
            result = self._await(job, effective_timeout)
            result.attempts = attempts[name]
            if not result.ok and not result.timed_out and attempts[name] <= budget:
                attempts[name] += 1
                pending[name] = self._submit(name, jobs[name])
            else:
                results[name] = result
        return results

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, drain: bool = True) -> None:
        """Stop the workers (idempotent); the scheduler stays closed.

        With ``drain`` (the default, and what the context manager does)
        queued and in-flight jobs run to completion before the workers
        exit.  With ``drain=False`` queued-but-unstarted jobs are
        cancelled: their waiters receive a :class:`JobResult` carrying a
        :class:`~repro.errors.ConfigurationError`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            threads = list(self._threads)
        if not drain:
            while True:
                try:
                    job = self._queue.get_nowait()
                except queue.Empty:
                    break
                if job is not None:
                    with self._lock:
                        job.abandoned = True
                        job.result = JobResult(
                            name=job.name,
                            error=ConfigurationError("scheduler shut down"),
                        )
                    job.done_evt.set()
                self._queue.task_done()
        for _ in threads:
            self._queue.put(None)
        for t in threads:
            t.join(timeout=5.0)
        with self._lock:
            self._threads.clear()
            self._started = False

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown(drain=True)


class ShardSupervisor:
    """Lifecycle of the gateway's shard processes.

    Owns one bounded work queue per shard (per-shard backpressure) and
    one private result *pipe* per shard, forks the workers, and
    replaces dead ones.  Workers are forked — never pickled — so they
    inherit the trained system copy-on-write; replacements fork from
    the *current* parent, which in sharded mode never runs verification
    itself, so no component lock can be mid-acquisition at fork time.

    Results deliberately do **not** travel over a shared
    ``multiprocessing.Queue``: its write end is guarded by a POSIX
    semaphore that every shard's feeder thread takes, and a shard
    SIGKILLed inside that critical section leaves the semaphore held
    forever — wedging every *other* shard's replies too.  A one-way
    pipe per shard has a single writer, so no cross-process lock
    exists to poison; a shard dying mid-send surfaces as ``EOFError``/
    ``OSError`` on the parent's reader instead of a silent hang.  For
    that EOF to be prompt, exactly one process may hold a pipe's write
    end: the parent closes its copy right after each fork, and workers
    close the other shards' ends at startup.

    The supervisor is mechanism, not policy: the gateway decides *when*
    to replace a shard (its health monitor) and what to do with the
    requests a dead shard leaves behind.
    """

    def __init__(
        self,
        shards: int,
        target: Callable[..., None],
        target_args: tuple,
        queue_depth: int,
    ):
        if shards < 1:
            raise ConfigurationError("need at least one shard")
        self._ctx = multiprocessing.get_context("fork")
        self._target = target
        self._target_args = target_args
        self._queue_depth = queue_depth
        self.work_queues = [
            self._ctx.Queue(maxsize=queue_depth) for _ in range(shards)
        ]
        pipes = [self._ctx.Pipe(duplex=False) for _ in range(shards)]
        #: One reader per shard slot; swapped for a fresh one on
        #: replacement.  The collector is the sole reader and closes a
        #: reader once it sees EOF.
        self.result_readers = [reader for reader, _ in pipes]
        self._procs: List[Optional[multiprocessing.process.BaseProcess]] = [
            None
        ] * shards
        #: Bumped on every replacement; lets tests assert a respawn
        #: happened and telemetry report crash counts per slot.
        self.generations = [0] * shards
        writers = [writer for _, writer in pipes]
        for i in range(shards):
            self._spawn(i, writers[i], writers)
        for writer in writers:
            writer.close()

    @property
    def shards(self) -> int:
        return len(self.work_queues)

    def _spawn(
        self,
        shard_id: int,
        result_writer: "multiprocessing.connection.Connection",
        all_writers: List["multiprocessing.connection.Connection"],
    ) -> None:
        stray = [w for w in all_writers if w is not result_writer]
        proc = self._ctx.Process(
            target=self._target,
            args=(shard_id, *self._target_args,
                  self.work_queues[shard_id], result_writer, stray),
            name=f"shard-{shard_id}-gen{self.generations[shard_id]}",
            daemon=True,
        )
        proc.start()
        self._procs[shard_id] = proc

    # -- health / lifecycle --------------------------------------------
    def is_alive(self, shard_id: int) -> bool:
        proc = self._procs[shard_id]
        return proc is not None and proc.is_alive()

    def exitcode(self, shard_id: int) -> Optional[int]:
        proc = self._procs[shard_id]
        return None if proc is None else proc.exitcode

    def replace(self, shard_id: int) -> None:
        """Reap a dead shard and fork its replacement.

        The replacement gets a **fresh work queue**: a shard killed
        while blocked in ``get()`` dies holding the old queue's reader
        lock (POSIX semaphores do not release on process death), so a
        successor sharing that queue could deadlock forever.  Requests
        stranded on the abandoned queue are the caller's to fail closed
        — it tracks them in its pending map.  The result pipe is
        replaced for the same reason the work queue is: its old reader
        may hold a partial message from the death, and the abandoned
        objects carry no locks anyone can block on.
        """
        proc = self._procs[shard_id]
        if proc is not None:
            proc.join(timeout=5.0)
        # The abandoned queue's feeder thread may be blocked forever in
        # send() — its only consumer is dead, so a full pipe never
        # drains.  Cancel the interpreter-exit join of that feeder or
        # shutdown hangs in multiprocessing's _exit_function.  The queue
        # itself stays open: a submit racing with this replacement may
        # still put() onto it (harmless — the generation check retries
        # on the fresh queue, and the abandoned copy is never read).
        self.work_queues[shard_id].cancel_join_thread()
        self.work_queues[shard_id] = self._ctx.Queue(maxsize=self._queue_depth)
        reader, writer = self._ctx.Pipe(duplex=False)
        self.result_readers[shard_id] = reader
        self.generations[shard_id] += 1
        # Earlier writer copies were closed after their forks, so the
        # replacement inherits no stray write end but its own.
        self._spawn(shard_id, writer, [writer])
        writer.close()

    def kill(self, shard_id: int) -> None:
        """SIGKILL a shard (chaos/testing; no graceful drain)."""
        proc = self._procs[shard_id]
        if proc is not None:
            proc.kill()
            proc.join(timeout=5.0)

    def request_stop(self) -> None:
        """Ask every live shard to drain its queue and exit."""
        for shard_id in range(self.shards):
            if self.is_alive(shard_id):
                self.work_queues[shard_id].put(("stop",))

    def join(self, timeout_s: float = 30.0) -> None:
        """Wait for every shard to exit (killing stragglers)."""
        deadline = time.monotonic() + timeout_s
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=5.0)

    def close_queues(self) -> None:
        """Release queue resources — only after every consumer is done."""
        for wq in self.work_queues:
            # A straggler shard killed during join() can leave buffered
            # frames nobody will ever read; don't let interpreter exit
            # block joining that queue's feeder thread.
            wq.cancel_join_thread()
            wq.close()
        for reader in self.result_readers:
            if not reader.closed:
                reader.close()
