"""A small thread-pool job scheduler (the APScheduler role).

The paper "leverage[s] the Advanced Python Scheduler (APScheduler) to
accelerate the process of defending against the machine-based voice
impersonation attack" — the three machine-detection components are
independent given a capture, so the backend fans them out and joins the
results.

The serving gateway additionally needs the pool to survive misbehaving
components: every job can carry a per-job execution timeout (a hung
component degrades to a :class:`JobResult` holding a
:class:`~repro.errors.ComponentTimeoutError` while a replacement worker
thread keeps the pool at capacity) and a bounded retry budget for jobs
that crash.  Timeouts are *not* retried — a component that hung once is
overwhelmingly likely to hang again, and retrying it would tie up another
worker for a full timeout window.
"""

from __future__ import annotations

import threading
import time
import queue
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ComponentTimeoutError, ConfigurationError


@dataclass
class JobResult:
    """Outcome of one scheduled job."""

    name: str
    value: Any = None
    error: Optional[BaseException] = None
    #: How many times the job ran (1 + crash retries).
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def timed_out(self) -> bool:
        return isinstance(self.error, ComponentTimeoutError)


class _Job:
    """Internal per-attempt record shared between waiter and worker."""

    __slots__ = ("name", "fn", "started_evt", "done_evt", "started_at", "result", "abandoned")

    def __init__(self, name: str, fn: Callable[[], Any]):
        self.name = name
        self.fn = fn
        self.started_evt = threading.Event()
        self.done_evt = threading.Event()
        self.started_at: Optional[float] = None
        self.result: Optional[JobResult] = None
        #: Set by the waiter on timeout (or by shutdown(drain=False)).
        #: A queued abandoned job is skipped; a running one retires its
        #: worker when it eventually returns (a replacement was spawned).
        self.abandoned = False


class JobScheduler:
    """Run named callables on a fixed pool of worker threads.

    The pool is created lazily on first use and torn down with
    :meth:`shutdown` (or by the context-manager protocol, which drains
    in-flight jobs).  Jobs raising exceptions report them in their
    :class:`JobResult` instead of killing the worker.  Once shut down, the
    scheduler is closed for good: :meth:`run_all` raises
    :class:`~repro.errors.ConfigurationError`.
    """

    def __init__(
        self,
        workers: int = 3,
        default_timeout_s: Optional[float] = None,
        default_retries: int = 0,
    ):
        if workers <= 0:
            raise ConfigurationError("need at least one worker")
        if default_timeout_s is not None and default_timeout_s <= 0:
            raise ConfigurationError("default_timeout_s must be positive")
        if default_retries < 0:
            raise ConfigurationError("default_retries must be >= 0")
        self._workers = workers
        self._default_timeout_s = default_timeout_s
        self._default_retries = default_retries
        self._queue: "queue.Queue[Optional[_Job]]" = queue.Queue()
        self._threads: List[threading.Thread] = []  # guarded-by: _lock
        self._lock = threading.Lock()
        self._started = False  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._spawned = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _spawn_worker_locked(self) -> None:
        t = threading.Thread(
            target=self._worker, name=f"verify-worker-{self._spawned}", daemon=True
        )
        self._spawned += 1
        t.start()
        self._threads.append(t)

    def _ensure_started(self) -> None:
        with self._lock:
            if self._closed:
                raise ConfigurationError("scheduler has been shut down")
            if self._started:
                return
            for _ in range(self._workers):
                self._spawn_worker_locked()
            self._started = True

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                self._queue.task_done()
                return
            with self._lock:
                if job.abandoned:
                    # Timed out while still queued — never ran, skip it.
                    self._queue.task_done()
                    continue
                job.started_at = time.monotonic()
            job.started_evt.set()
            try:
                result = JobResult(name=job.name, value=job.fn())
            except BaseException as exc:  # noqa: BLE001 - reported, not rethrown
                result = JobResult(name=job.name, error=exc)
            with self._lock:
                retire = job.abandoned
                if not retire:
                    job.result = result
            job.done_evt.set()
            self._queue.task_done()
            if retire:
                # The waiter gave up on this job and spawned a replacement
                # worker; exit to keep the pool at its configured size.
                return

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _submit(self, name: str, fn: Callable[[], Any]) -> _Job:
        job = _Job(name, fn)
        self._queue.put(job)
        return job

    def _await(self, job: _Job, timeout_s: Optional[float]) -> JobResult:
        if timeout_s is None:
            job.done_evt.wait()
            assert job.result is not None
            return job.result
        # Phase 1: wait for a worker to pick the job up.  Replacement
        # workers keep the pool at capacity, so queue delay is transient;
        # a full timeout window with no pickup still counts as a timeout.
        if job.started_at is None and not job.started_evt.wait(timeout_s):
            with self._lock:
                if job.started_at is None:
                    job.abandoned = True
                    return JobResult(
                        name=job.name,
                        error=ComponentTimeoutError(
                            f"{job.name!r} was not scheduled within {timeout_s:.3f}s"
                        ),
                    )
        # Phase 2: the execution budget counts from the actual start.
        assert job.started_at is not None
        remaining = job.started_at + timeout_s - time.monotonic()
        if remaining > 0:
            job.done_evt.wait(remaining)
        with self._lock:
            if job.result is not None:
                return job.result
            job.abandoned = True
            # The worker is stuck inside job.fn; replace it so the pool
            # keeps serving other requests.
            self._spawn_worker_locked()
        return JobResult(
            name=job.name,
            error=ComponentTimeoutError(
                f"{job.name!r} exceeded its {timeout_s:.3f}s execution budget"
            ),
        )

    def run_all(
        self,
        jobs: Dict[str, Callable[[], Any]],
        timeout_s: Optional[float] = None,
        retries: Optional[int] = None,
    ) -> Dict[str, JobResult]:
        """Run every job, block until all finish, return results by name.

        ``timeout_s`` bounds each job's *execution* time (defaulting to the
        scheduler-wide default; ``None`` means wait forever).  ``retries``
        re-runs jobs that raised, up to that many extra attempts; timeouts
        are never retried.
        """
        with self._lock:
            if self._closed:
                raise ConfigurationError("scheduler has been shut down")
        if not jobs:
            return {}
        self._ensure_started()
        effective_timeout = (
            self._default_timeout_s if timeout_s is None else timeout_s
        )
        budget = self._default_retries if retries is None else retries
        attempts = {name: 1 for name in jobs}
        pending = {name: self._submit(name, fn) for name, fn in jobs.items()}
        results: Dict[str, JobResult] = {}
        while pending:
            name, job = next(iter(pending.items()))
            del pending[name]
            result = self._await(job, effective_timeout)
            result.attempts = attempts[name]
            if not result.ok and not result.timed_out and attempts[name] <= budget:
                attempts[name] += 1
                pending[name] = self._submit(name, jobs[name])
            else:
                results[name] = result
        return results

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, drain: bool = True) -> None:
        """Stop the workers (idempotent); the scheduler stays closed.

        With ``drain`` (the default, and what the context manager does)
        queued and in-flight jobs run to completion before the workers
        exit.  With ``drain=False`` queued-but-unstarted jobs are
        cancelled: their waiters receive a :class:`JobResult` carrying a
        :class:`~repro.errors.ConfigurationError`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            threads = list(self._threads)
        if not drain:
            while True:
                try:
                    job = self._queue.get_nowait()
                except queue.Empty:
                    break
                if job is not None:
                    with self._lock:
                        job.abandoned = True
                        job.result = JobResult(
                            name=job.name,
                            error=ConfigurationError("scheduler shut down"),
                        )
                    job.done_evt.set()
                self._queue.task_done()
        for _ in threads:
            self._queue.put(None)
        for t in threads:
            t.join(timeout=5.0)
        with self._lock:
            self._threads.clear()
            self._started = False

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown(drain=True)
