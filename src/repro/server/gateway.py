"""Concurrent verification gateway (the production serving path).

The paper's prototype serves one request at a time; this module turns the
same cascade into a gateway that accepts many request frames at once:

- requests flow through a **bounded work queue** drained by a
  configurable pool of request workers (backpressure instead of
  unbounded memory growth);
- the machine-detection components of each request fan out on a shared
  :class:`~repro.server.scheduler.JobScheduler` with a **per-component
  execution timeout and bounded crash retry** — a hung or crashing
  component degrades to a scored rejection without stalling the request
  or its neighbours;
- identity-verification scoring is **batched across concurrent requests
  claiming the same speaker** (leader/follower micro-batching), which
  amortises the GMM/ISV likelihood evaluation while staying bitwise-equal
  to sequential scoring;
- per-user sound-field models come from the
  :class:`~repro.core.pipeline.DefenseSystem` LRU cache, so a hot user's
  model is rehydrated once, not per request;
- every stage records into a :class:`~repro.server.metrics.MetricsRegistry`
  (latency histograms, throughput and cache/batch/timeout counters) so
  the Fig. 15 auth-time bench can be rerun against the gateway.

Decisions are bitwise-equal to the sequential
:class:`~repro.server.backend.VerificationServer` for the same frames:
both paths share the cascade helpers and the batched scorer is
mean-per-slice over row-independent likelihoods.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import sanitize
from repro.core.decision import ComponentResult
from repro.core.identity import IdentityVerifier
from repro.core.pipeline import DefenseSystem
from repro.errors import ConfigurationError, ProtocolError
from repro.obs.drift import DriftRegistry
from repro.obs.exporters import AuditJsonlExporter, prometheus_exposition
from repro.obs.provenance import DecisionRecord
from repro.obs.trace import NULL_TRACER, Span, Tracer
from repro.server.backend import (
    collect_detection_results,
    machine_detection_jobs,
)
from repro.server.metrics import MetricsRegistry
from repro.server.protocol import (
    KIND_TELEMETRY_REQUEST,
    decode_request_full,
    decode_telemetry_request,
    encode_decision,
    encode_telemetry_response,
    frame_kind,
)
from repro.server.scheduler import JobScheduler
from repro.world.scene import SensorCapture


@dataclass
class GatewayConfig:
    """Knobs of the concurrent serving path."""

    #: Request-level concurrency: how many requests are in flight at once.
    request_workers: int = 4
    #: Workers of the shared component scheduler; ``None`` sizes the pool
    #: at three per request worker (one per machine-detection component).
    component_workers: Optional[int] = None
    #: Bound of the admission queue; a full queue rejects (backpressure).
    max_queue: int = 64
    #: Per-component execution budget; ``None`` waits forever.
    component_timeout_s: Optional[float] = 30.0
    #: Extra attempts for a component job that *crashed* (timeouts are
    #: never retried — see the scheduler docs).
    component_retries: int = 1
    #: How long the first request of an identity batch waits for peers.
    batch_window_s: float = 0.05
    #: Flush an identity batch as soon as it reaches this many requests.
    max_batch: int = 8
    #: Recent-sample window of the latency histograms.
    metrics_window: int = 4096
    #: Serve with the cost-ordered early-exit cascade: cheap stages run
    #: first and a confident rejection skips everything downstream
    #: (including identity scoring).  Decisions match the strict path —
    #: ACCEPT still requires every enabled component to pass — but
    #: rejected requests return after the cheap stages.  ``False`` keeps
    #: the run-everything behaviour bit-for-bit.
    cascade: bool = False

    def __post_init__(self) -> None:
        if self.request_workers <= 0:
            raise ConfigurationError("request_workers must be positive")
        if self.component_workers is not None and self.component_workers <= 0:
            raise ConfigurationError("component_workers must be positive")
        if self.max_queue <= 0:
            raise ConfigurationError("max_queue must be positive")
        if self.component_timeout_s is not None and self.component_timeout_s <= 0:
            raise ConfigurationError("component_timeout_s must be positive")
        if self.component_retries < 0:
            raise ConfigurationError("component_retries must be >= 0")
        if self.batch_window_s < 0:
            raise ConfigurationError("batch_window_s must be >= 0")
        if self.max_batch <= 0:
            raise ConfigurationError("max_batch must be positive")


class _BatchEntry:
    """One request's slot in an identity micro-batch.

    ``batch_span_id``/``batch_size`` are filled by the leader after the
    batch runs: followers belong to *other* traces, so they link to the
    leader's batch span by id (the span-link idiom) instead of nesting
    under it.
    """

    __slots__ = ("capture", "done", "result", "error", "batch_span_id", "batch_size")

    def __init__(self, capture: SensorCapture):
        self.capture = capture
        self.done = threading.Event()
        self.result: Optional[ComponentResult] = None
        self.error: Optional[BaseException] = None
        self.batch_span_id: str = ""
        self.batch_size: int = 0


class _Bucket:
    """Per-speaker gathering point for one micro-batch."""

    __slots__ = ("entries", "full")

    def __init__(self) -> None:
        self.entries: List[_BatchEntry] = []
        self.full = threading.Event()


class _IdentityBatcher:
    """Leader/follower micro-batching of same-speaker identity scoring.

    The first request to arrive for a claimed speaker becomes the batch
    leader: it waits up to ``window_s`` (or until ``max_batch`` peers have
    gathered), then scores the whole bucket with
    :meth:`IdentityVerifier.verify_batch` and hands each follower its
    result.  If batch scoring fails as a whole, every entry falls back to
    the sequential scorer so per-request semantics (including raised
    errors) match the sequential server exactly.
    """

    def __init__(
        self,
        identity: IdentityVerifier,
        window_s: float,
        max_batch: int,
        metrics: MetricsRegistry,
        tracer: Tracer = NULL_TRACER,
    ):
        self._identity = identity
        self._window_s = window_s
        self._max_batch = max_batch
        self._metrics = metrics
        self._tracer = tracer
        self._lock = threading.Lock()
        self._buckets: Dict[str, _Bucket] = {}  # guarded-by: _lock

    def score(
        self, claimed: str, capture: SensorCapture, span: Optional[Span] = None
    ) -> ComponentResult:
        entry = _BatchEntry(capture)
        with self._lock:
            bucket = self._buckets.get(claimed)
            leader = bucket is None
            if leader:
                bucket = self._buckets[claimed] = _Bucket()
            bucket.entries.append(entry)
            if len(bucket.entries) >= self._max_batch:
                bucket.full.set()
        if leader:
            bucket.full.wait(self._window_s)
            with self._lock:
                self._buckets.pop(claimed, None)
                entries = list(bucket.entries)
            self._run_batch(claimed, entries)
        else:
            entry.done.wait()
        if span is not None and self._tracer.enabled and entry.batch_size > 1:
            span.set_attrs(
                {
                    "batch_span_id": entry.batch_span_id,
                    "batch_size": entry.batch_size,
                    "batch_role": "leader" if leader else "follower",
                }
            )
        if entry.error is not None:
            raise entry.error
        assert entry.result is not None
        return entry.result

    def _run_batch(self, claimed: str, entries: List[_BatchEntry]) -> None:
        self._metrics.increment("identity_batches")
        self._metrics.observe("identity_batch_size", len(entries))
        if len(entries) > 1:
            self._metrics.increment("identity_batched_requests", len(entries))
        with self._tracer.span(
            "identity.batch",
            attrs=(
                {"batch_size": len(entries), "claimed_speaker": claimed}
                if self._tracer.enabled
                else None
            ),
        ) as batch_span:
            try:
                results = self._identity.verify_batch(
                    [e.capture for e in entries], claimed
                )
                for e, result in zip(entries, results):
                    e.result = result
            except BaseException:  # noqa: BLE001 - refuse collective failure
                for e in entries:
                    try:
                        e.result = self._identity.verify(e.capture, claimed)
                    except BaseException as exc:  # noqa: BLE001 - per entry
                        e.error = exc
            finally:
                for e in entries:
                    e.batch_span_id = batch_span.span_id
                    e.batch_size = len(entries)
                    e.done.set()


class Gateway:
    """Concurrent front door over a trained :class:`DefenseSystem`.

    Usage::

        with Gateway(system, GatewayConfig(request_workers=8)) as gw:
            futures = [gw.submit(frame) for frame in frames]
            decisions = [decode_decision(f.result()) for f in futures]

    :meth:`handle` keeps the one-call synchronous shape of
    :class:`VerificationServer`, so a :class:`MobileClient` can be bound
    to a gateway unchanged.
    """

    def __init__(
        self,
        system: DefenseSystem,
        config: Optional[GatewayConfig] = None,
        tracer: Optional[Tracer] = None,
        drift: Optional[DriftRegistry] = None,
        audit: Optional[AuditJsonlExporter] = None,
    ):
        self.system = system
        self.config = config or GatewayConfig()
        self.metrics = MetricsRegistry(window=self.config.metrics_window)
        #: Request tracer; the shared no-op by default, so serving pays
        #: nothing until a real tracer is attached.  An enabled tracer is
        #: also pushed into the system's components, so DSP kernel spans
        #: nest under the request's stage spans.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer.enabled:
            self.system.set_tracer(self.tracer)
        #: Per-stage score-drift monitors (always on: a record is a lock
        #: and a ring-buffer write).
        self.drift = drift if drift is not None else DriftRegistry()
        #: Optional decision audit log (one JSONL row per decision).
        self.audit = audit
        component_workers = (
            self.config.component_workers
            if self.config.component_workers is not None
            else 3 * self.config.request_workers
        )
        self._scheduler = JobScheduler(workers=component_workers)
        self._batcher = _IdentityBatcher(
            system.identity,
            self.config.batch_window_s,
            self.config.max_batch,
            self.metrics,
            tracer=self.tracer,
        )
        self._queue: (
            "queue.Queue[Optional[Tuple[bytes, Future, float, Optional[Span]]]]"
        ) = queue.Queue(maxsize=self.config.max_queue)
        self._lock = threading.Lock()
        self._closed = False  # guarded-by: _lock
        self._threads = [
            threading.Thread(
                target=self._request_worker, name=f"gateway-worker-{i}", daemon=True
            )
            for i in range(self.config.request_workers)
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request_frame: bytes, block: bool = True) -> "Future[bytes]":
        """Enqueue one request frame; resolves to the decision frame.

        With ``block=False`` a full admission queue raises
        :class:`~repro.errors.ConfigurationError` immediately instead of
        applying backpressure.

        Telemetry-request frames (see
        :func:`~repro.server.protocol.encode_telemetry_request`) are
        answered immediately from the registry — a metrics scrape never
        queues behind verification work and resolves to a telemetry
        response frame instead of a decision frame.
        """
        with self._lock:
            if self._closed:
                raise ConfigurationError("gateway has been closed")
        try:
            kind = frame_kind(request_frame)
        except ProtocolError:
            kind = 0  # malformed header: let the worker surface the error
        future: "Future[bytes]" = Future()
        if kind == KIND_TELEMETRY_REQUEST:
            try:
                future.set_result(self._handle_telemetry(request_frame))
            except ProtocolError as exc:
                self.metrics.increment("protocol_errors")
                future.set_exception(exc)
            return future
        root = self.tracer.begin("request") if self.tracer.enabled else None
        item = (request_frame, future, time.monotonic(), root)
        try:
            self._queue.put(item, block=block)
        except queue.Full:
            if root is not None:
                root.set_attr("error", "queue full")
                self.tracer.end(root, status="error")
            self.metrics.increment("rejected_queue_full")
            raise ConfigurationError(
                f"gateway queue is full ({self.config.max_queue} requests)"
            ) from None
        self.metrics.increment("requests_submitted")
        return future

    def handle(self, request_frame: bytes) -> bytes:
        """Synchronous convenience wrapper (drop-in for the server)."""
        return self.submit(request_frame).result()

    def handle_many(self, request_frames: Sequence[bytes]) -> List[bytes]:
        """Submit a burst of frames; decision frames in request order."""
        futures = [self.submit(frame) for frame in request_frames]
        return [f.result() for f in futures]

    # ------------------------------------------------------------------
    # Request pipeline
    # ------------------------------------------------------------------
    def _request_worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            frame, future, submitted_at, root = item
            try:
                waited = time.monotonic() - submitted_at
                self.metrics.observe("queue_s", waited)
                if root is not None:
                    self._retro_span(root, "queue", waited)
                self._process(frame, future, root)
            finally:
                self._queue.task_done()

    def _retro_span(
        self,
        parent: Span,
        name: str,
        duration_s: float,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record an already-elapsed interval as a child span.

        The queue wait cannot run a span's own clock (no code executes
        while the request sits in the queue), so the measured duration is
        written in after the fact and the start is backdated to match.
        """
        span = self.tracer.child(parent, name, attrs)
        self.tracer.end(span)
        span.duration_s = duration_s
        span.start_wall -= duration_s

    def _run_detection(self, jobs) -> Dict[str, ComponentResult]:
        """Scheduler fan-out + fail-closed folding for detection jobs."""
        job_results = self._scheduler.run_all(
            jobs,
            timeout_s=self.config.component_timeout_s,
            retries=self.config.component_retries,
        )
        for jr in job_results.values():
            if jr.timed_out:
                self.metrics.increment("component_timeouts")
            if jr.attempts > 1:
                self.metrics.increment("component_retries", jr.attempts - 1)
        return collect_detection_results(job_results)

    def _traced_job(self, name: str, fn, parent: Optional[Span]):
        """Wrap a component job so its stage span opens in the *executing*
        thread — DSP kernel spans then nest under it via the thread-local
        stack even though the job runs on a scheduler worker."""

        def call():
            with self.tracer.span(f"stage.{name}", parent=parent) as span:
                result = fn()
                span.set_attrs({"passed": result.passed, "score": result.score})
                return result

        return call

    def _record_drift(self, results: Dict[str, ComponentResult]) -> None:
        for name, result in results.items():
            self.drift.record(name, result.score)  # non-finite are filtered

    def _finalize(
        self,
        root: Optional[Span],
        accepted: bool,
        results: Dict[str, ComponentResult],
        claimed: Optional[str],
        request_id: Optional[str],
        mode: str,
        skipped: Tuple[str, ...] = (),
        early_exit: Optional[str] = None,
    ) -> None:
        """Audit-log the decision and close the request's root span."""
        if self.audit is not None:
            self.audit.write(
                DecisionRecord.build(
                    accepted=accepted,
                    components=results,
                    claimed_speaker=claimed,
                    mode=mode,
                    skipped=skipped,
                    early_exit_stage=early_exit,
                    cascade_plan=self.system.cascade_plan,
                    request_id=request_id or "",
                    trace_id=root.trace_id if root is not None else "",
                )
            )
        if root is not None:
            root.set_attr("decision", "accept" if accepted else "reject")
            if early_exit is not None:
                root.set_attr("early_exit_stage", early_exit)
            self.tracer.end(root)

    def _process(
        self, frame: bytes, future: "Future[bytes]", root: Optional[Span] = None
    ) -> None:
        t0 = time.perf_counter()
        try:
            with self.tracer.span("decode", parent=root):
                capture, claimed, request_id = decode_request_full(frame)
        except ProtocolError as exc:
            self.metrics.increment("protocol_errors")
            if root is not None:
                root.set_attr("error", repr(exc))
                self.tracer.end(root, status="error")
            future.set_exception(exc)
            return
        t_decoded = time.perf_counter()
        if root is not None:
            root.set_attrs(
                {
                    "request_id": request_id,
                    "claimed_speaker": claimed,
                    "mode": "cascade" if self.config.cascade else "strict",
                }
            )

        if self.config.cascade:
            self._process_cascade(
                capture, claimed, request_id, future, t0, t_decoded, root
            )
            return

        jobs = machine_detection_jobs(self.system, capture, claimed)
        if self.tracer.enabled:
            jobs = {
                name: self._traced_job(name, fn, root)
                for name, fn in jobs.items()
            }
        results = self._run_detection(jobs)
        t_detection = time.perf_counter()

        if "identity" in self.system.enabled_components and claimed is not None:
            try:
                with self.tracer.span("stage.identity", parent=root) as ispan:
                    result = self._batcher.score(claimed, capture, span=ispan)
                    ispan.set_attrs(
                        {"passed": result.passed, "score": result.score}
                    )
                results["identity"] = result
            except BaseException as exc:  # noqa: BLE001 - surfaced via the future
                self.metrics.increment("identity_errors")
                if root is not None:
                    self.tracer.end(root, status="error")
                future.set_exception(exc)
                return
        t_identity = time.perf_counter()

        self._record_drift(results)
        sanitize.check_results(results)
        accepted = all(r.passed for r in results.values())
        payload: Dict[str, Tuple[bool, float, str]] = {
            name: (r.passed, r.score, r.detail) for name, r in results.items()
        }
        evidence = {name: dict(r.evidence) for name, r in results.items()}
        decision_frame = encode_decision(
            accepted, payload, request_id=request_id, evidence=evidence
        )
        t_done = time.perf_counter()

        self.metrics.observe("decode_s", t_decoded - t0)
        self.metrics.observe("detection_s", t_detection - t_decoded)
        self.metrics.observe("identity_s", t_identity - t_detection)
        self.metrics.observe("encode_s", t_done - t_identity)
        self.metrics.observe("total_s", t_done - t0)
        self.metrics.increment("requests_completed")
        self.metrics.increment("accepted" if accepted else "rejected")
        self._finalize(root, accepted, results, claimed, request_id, mode="strict")
        future.set_result(decision_frame)

    def _cascade_order(self, claimed: Optional[str]) -> Tuple[str, ...]:
        """Enabled stages cheapest-first; claim-dependent stages only with
        a claim (matching the strict path, which skips them too)."""
        order = self.system.cascade_plan.order(self.system.enabled_components)
        if claimed is None:
            order = tuple(n for n in order if n not in ("identity", "soundfield"))
        return order

    def _process_cascade(
        self,
        capture: SensorCapture,
        claimed: Optional[str],
        request_id: Optional[str],
        future: "Future[bytes]",
        t0: float,
        t_decoded: float,
        root: Optional[Span] = None,
    ) -> None:
        """Cost-ordered serving: cheap gates sequentially, expensive tail
        in parallel, early exit on any confident rejection.

        The final decision is identical to the strict path: ACCEPT needs
        every enabled stage to pass, and a stage is only skipped after an
        upstream stage has already rejected.
        """
        order = self._cascade_order(claimed)
        gates = order[:-2] if len(order) > 2 else ()
        tail = order[len(gates):]
        jobs = machine_detection_jobs(self.system, capture, claimed)
        results: Dict[str, ComponentResult] = {}
        skipped: Tuple[str, ...] = ()
        early_exit: Optional[str] = None

        def run_stage(name: str) -> ComponentResult:
            with self.metrics.time(f"stage_{name}_s"):
                if name == "identity":
                    with self.tracer.span("stage.identity", parent=root) as span:
                        result = self._batcher.score(claimed, capture, span=span)
                        span.set_attrs(
                            {"passed": result.passed, "score": result.score}
                        )
                    return result
                job = jobs[name]
                if self.tracer.enabled:
                    job = self._traced_job(name, job, root)
                return self._run_detection({name: job})[name]

        for i, name in enumerate(gates):
            try:
                result = run_stage(name)
            except BaseException as exc:  # noqa: BLE001 - surfaced via the future
                self.metrics.increment("identity_errors")
                if root is not None:
                    self.tracer.end(root, status="error")
                future.set_exception(exc)
                return
            results[name] = result
            if self.system.cascade_plan.confident_reject(result, self.system.config):
                skipped = order[i + 1 :]
                early_exit = name
                break
        if not skipped and tail:

            def timed_job(name: str, fn):
                traced = (
                    self._traced_job(name, fn, root)
                    if self.tracer.enabled
                    else fn
                )

                def call():
                    with self.metrics.time(f"stage_{name}_s"):
                        return traced()

                return call

            tail_jobs = {
                name: timed_job(name, jobs[name])
                for name in tail
                if name != "identity"
            }
            if tail_jobs:
                results.update(self._run_detection(tail_jobs))
            if "identity" in tail:
                try:
                    results["identity"] = run_stage("identity")
                except BaseException as exc:  # noqa: BLE001
                    self.metrics.increment("identity_errors")
                    if root is not None:
                        self.tracer.end(root, status="error")
                    future.set_exception(exc)
                    return

        for name in skipped:
            self.metrics.increment(f"stage_skipped_{name}")
            if self.tracer.enabled:
                self.tracer.event(
                    f"stage.{name}",
                    parent=root,
                    status="skipped",
                    attrs={
                        "skip_reason": (
                            f"upstream stage {early_exit!r} rejected confidently"
                        ),
                        "cost_saved_ms": self.system.cascade_plan.estimated_cost_ms(
                            (name,)
                        ),
                    },
                )
        if skipped:
            self.metrics.increment("cascade_early_exits")

        self._record_drift(results)
        sanitize.check_results(results)
        accepted = all(r.passed for r in results.values())
        payload: Dict[str, Tuple[bool, float, str]] = {
            name: (r.passed, r.score, r.detail) for name, r in results.items()
        }
        evidence = {name: dict(r.evidence) for name, r in results.items()}
        decision_frame = encode_decision(
            accepted, payload, request_id=request_id, evidence=evidence
        )
        t_done = time.perf_counter()

        self.metrics.observe("decode_s", t_decoded - t0)
        self.metrics.observe("total_s", t_done - t0)
        self.metrics.increment("requests_completed")
        self.metrics.increment("accepted" if accepted else "rejected")
        self._finalize(
            root,
            accepted,
            results,
            claimed,
            request_id,
            mode="cascade",
            skipped=skipped,
            early_exit=early_exit,
        )
        future.set_result(decision_frame)

    # ------------------------------------------------------------------
    # Reporting / lifecycle
    # ------------------------------------------------------------------
    def _handle_telemetry(self, frame: bytes) -> bytes:
        """Answer a telemetry-scrape frame from the live registry."""
        sections, request_id = decode_telemetry_request(frame)
        telemetry: Dict[str, object] = {}
        for section in sections:
            if section == "summary":
                telemetry["summary"] = self.metrics_summary()
            elif section == "prometheus":
                telemetry["prometheus"] = prometheus_exposition(self.metrics)
            elif section == "stages":
                telemetry["stages"] = self.metrics.stage_report()
            elif section == "drift":
                telemetry["drift"] = {
                    "stages": self.drift.snapshot(),
                    "alerts": [str(a) for a in self.drift.alerts()],
                }
            # Unknown sections are omitted so old clients can probe.
        self.metrics.increment("telemetry_scrapes")
        return encode_telemetry_response(telemetry, request_id)

    def metrics_summary(self) -> Dict[str, object]:
        """Registry summary plus cache counters, throughput and drift."""
        summary = self.metrics.summary()
        cache = self.system.soundfield_cache_stats
        summary["soundfield_cache"] = {
            "hits": cache.hits,
            "misses": cache.misses,
            "evictions": cache.evictions,
        }
        summary["throughput_rps"] = self.metrics.throughput()
        summary["windowed_throughput_rps"] = self.metrics.windowed_throughput()
        summary["drift"] = {
            "stages": self.drift.snapshot(),
            "alerts": [str(a) for a in self.drift.alerts()],
        }
        if self.config.cascade:
            summary["stages"] = self.metrics.stage_report()
        return summary

    def close(self) -> None:
        """Drain queued requests, stop the workers, free the scheduler."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        for t in self._threads:
            t.join(timeout=30.0)
        self._scheduler.shutdown()

    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
