"""Concurrent verification gateway (the production serving path).

The paper's prototype serves one request at a time; this module turns the
same cascade into a gateway that accepts many request frames at once:

- requests flow through a **bounded work queue** drained by a
  configurable pool of request workers (backpressure instead of
  unbounded memory growth);
- the machine-detection components of each request fan out on a shared
  :class:`~repro.server.scheduler.JobScheduler` with a **per-component
  execution timeout and bounded crash retry** — a hung or crashing
  component degrades to a scored rejection without stalling the request
  or its neighbours;
- identity-verification scoring is **batched across concurrent requests
  claiming the same speaker** (leader/follower micro-batching), which
  amortises the GMM/ISV likelihood evaluation while staying bitwise-equal
  to sequential scoring;
- per-user sound-field models come from the
  :class:`~repro.core.pipeline.DefenseSystem` LRU cache, so a hot user's
  model is rehydrated once, not per request;
- every stage records into a :class:`~repro.server.metrics.MetricsRegistry`
  (latency histograms, throughput and cache/batch/timeout counters) so
  the Fig. 15 auth-time bench can be rerun against the gateway.

Decisions are bitwise-equal to the sequential
:class:`~repro.server.backend.VerificationServer` for the same frames:
both paths share the cascade helpers and the batched scorer is
mean-per-slice over row-independent likelihoods.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import Future
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis import lockset, sanitize
from repro.core.cascade import stage_scope
from repro.core.config import GatewayConfig
from repro.core.decision import ComponentResult
from repro.core.identity import IdentityVerifier
from repro.core.pipeline import DefenseSystem
from repro.errors import ConfigurationError, ProtocolError
from repro.obs.abuse import AbuseDetector
from repro.obs.drift import DriftRegistry
from repro.obs.events import WideEvent, WideEventRecorder
from repro.obs.exporters import AuditJsonlExporter, prometheus_exposition
from repro.obs.provenance import DecisionRecord
from repro.obs.slo import SLOEngine
from repro.obs.trace import NULL_TRACER, Span, Tracer
from repro.server.backend import (
    cascade_order,
    cascade_split,
    collect_detection_results,
    machine_detection_jobs,
)
from repro.server.metrics import MetricsRegistry
from repro.server.protocol import (
    KIND_TELEMETRY_REQUEST,
    decode_request_full,
    decode_telemetry_request,
    encode_decision,
    encode_telemetry_response,
    frame_kind,
    peek_request_meta,
)
from repro.server.router import ConsistentHashRouter
from repro.server.scheduler import JobScheduler, ShardSupervisor
from repro.server.shard import shard_main
from repro.world.scene import SensorCapture

__all__ = [
    "Gateway",
    "GatewayConfig",
    "ShardedGateway",
    "create_gateway",
]


def _events_section(recorder: WideEventRecorder) -> Dict[str, object]:
    """The ``events`` telemetry payload: stats + the recent kept rows."""
    section = recorder.stats()
    section["recent"] = [e.to_dict() for e in recorder.recent()]
    return section


class _BatchEntry:
    """One request's slot in an identity micro-batch.

    ``batch_span_id``/``batch_size`` are filled by the leader after the
    batch runs: followers belong to *other* traces, so they link to the
    leader's batch span by id (the span-link idiom) instead of nesting
    under it.
    """

    __slots__ = (
        "capture",
        "claimed",
        "done",
        "result",
        "error",
        "batch_span_id",
        "batch_size",
    )

    def __init__(self, capture: SensorCapture, claimed: str):
        self.capture = capture
        self.claimed = claimed
        self.done = threading.Event()
        self.result: Optional[ComponentResult] = None
        self.error: Optional[BaseException] = None
        self.batch_span_id: str = ""
        self.batch_size: int = 0


class _Bucket:
    """Per-speaker gathering point for one micro-batch."""

    __slots__ = ("entries", "full")

    def __init__(self) -> None:
        self.entries: List[_BatchEntry] = []
        self.full = threading.Event()


#: Shared-bucket key used when cross-speaker batching is enabled: every
#: concurrent request gathers in one bucket regardless of claimed speaker.
_CROSS_BUCKET = "\x00cross"


class _IdentityBatcher:
    """Leader/follower micro-batching of identity scoring.

    The first request to arrive for a bucket becomes the batch leader: it
    waits up to ``window_s`` (or until ``max_batch`` peers have gathered),
    then scores the whole bucket and hands each follower its result.  By
    default a bucket holds one claimed speaker and scoring runs through
    :meth:`IdentityVerifier.verify_batch`; with ``cross_speaker=True``
    every concurrent request shares a single bucket and the batch runs
    through :meth:`IdentityVerifier.verify_multi`, which fuses the UBM
    likelihood pass across *all* users' frames instead of one speaker's.
    If batch scoring fails as a whole, every entry falls back to the
    sequential scorer so per-request semantics (including raised errors)
    match the sequential server exactly.
    """

    def __init__(
        self,
        identity: IdentityVerifier,
        window_s: float,
        max_batch: int,
        metrics: MetricsRegistry,
        tracer: Tracer = NULL_TRACER,
        cross_speaker: bool = False,
    ):
        self._identity = identity
        self._window_s = window_s
        self._max_batch = max_batch
        self._metrics = metrics
        self._tracer = tracer
        self._cross_speaker = cross_speaker
        self._lock = threading.Lock()
        self._buckets: Dict[str, _Bucket] = {}  # guarded-by: _lock
        lockset.register(self)

    def score(
        self, claimed: str, capture: SensorCapture, span: Optional[Span] = None
    ) -> ComponentResult:
        entry = _BatchEntry(capture, claimed)
        key = _CROSS_BUCKET if self._cross_speaker else claimed
        with self._lock:
            bucket = self._buckets.get(key)
            leader = bucket is None
            if leader:
                bucket = self._buckets[key] = _Bucket()
            bucket.entries.append(entry)
            if len(bucket.entries) >= self._max_batch:
                bucket.full.set()
        if leader:
            bucket.full.wait(self._window_s)
            with self._lock:
                self._buckets.pop(key, None)
                entries = list(bucket.entries)
            self._run_batch(claimed, entries)
        else:
            entry.done.wait()
        if span is not None and self._tracer.enabled and entry.batch_size > 1:
            span.set_attrs(
                {
                    "batch_span_id": entry.batch_span_id,
                    "batch_size": entry.batch_size,
                    "batch_role": "leader" if leader else "follower",
                }
            )
        if entry.error is not None:
            raise entry.error
        assert entry.result is not None
        return entry.result

    def _run_batch(self, claimed: str, entries: List[_BatchEntry]) -> None:
        distinct = len({e.claimed for e in entries})
        self._metrics.increment("identity_batches")
        self._metrics.observe("identity_batch_size", len(entries))
        self._metrics.observe("identity_batch_speakers", distinct)
        if len(entries) > 1:
            self._metrics.increment("identity_batched_requests", len(entries))
        if distinct > 1:
            self._metrics.increment("identity_cross_batches")
        attrs: Optional[Dict[str, object]] = None
        if self._tracer.enabled:
            attrs = {"batch_size": len(entries), "distinct_speakers": distinct}
            if not self._cross_speaker:
                attrs["claimed_speaker"] = claimed
        with self._tracer.span("identity.batch", attrs=attrs) as batch_span, stage_scope("identity"):
            try:
                if self._cross_speaker:
                    results = self._identity.verify_multi(
                        [e.capture for e in entries],
                        [e.claimed for e in entries],
                    )
                else:
                    results = self._identity.verify_batch(
                        [e.capture for e in entries], claimed
                    )
                for e, result in zip(entries, results):
                    e.result = result
            except BaseException:  # noqa: BLE001 - refuse collective failure
                for e in entries:
                    try:
                        e.result = self._identity.verify(e.capture, e.claimed)
                    except BaseException as exc:  # noqa: BLE001 - per entry
                        e.error = exc
            finally:
                for e in entries:
                    e.batch_span_id = batch_span.span_id
                    e.batch_size = len(entries)
                    e.done.set()


class Gateway:
    """Concurrent front door over a trained :class:`DefenseSystem`.

    Usage::

        with Gateway(system, GatewayConfig(request_workers=8)) as gw:
            futures = [gw.submit(frame) for frame in frames]
            decisions = [decode_decision(f.result()) for f in futures]

    :meth:`handle` keeps the one-call synchronous shape of
    :class:`VerificationServer`, so a :class:`MobileClient` can be bound
    to a gateway unchanged.
    """

    def __init__(
        self,
        system: DefenseSystem,
        config: Optional[GatewayConfig] = None,
        tracer: Optional[Tracer] = None,
        drift: Optional[DriftRegistry] = None,
        audit: Optional[AuditJsonlExporter] = None,
        slo: Optional[SLOEngine] = None,
        abuse: Optional[AbuseDetector] = None,
        events: Optional[WideEventRecorder] = None,
    ):
        self.system = system
        self.config = config or GatewayConfig()
        if self.config.enable_magliveness:
            # A/B flag for the MagLive-style fifth stage: applied once,
            # before any request worker starts, so every request this
            # gateway serves sees the same component set.
            self.system.enable_component("magliveness")
        self.metrics = MetricsRegistry(window=self.config.metrics_window)
        #: SLO burn-rate engine (evaluated at scrape time; per-request
        #: cost is two counter bumps for the latency objective).
        self.slo = slo if slo is not None else SLOEngine()
        #: Per-speaker probe detection (sticky flags, never decisions).
        self.abuse = abuse if abuse is not None else AbuseDetector()
        #: Tail-sampled wide events; in-memory by default, pass a
        #: recorder with a path to persist JSONL.
        self.events = (
            events
            if events is not None
            else WideEventRecorder(
                slow_threshold_s=self.config.slo_latency_threshold_s,
                alert_probe=lambda: self.abuse.has_alerts,
            )
        )
        #: Request tracer; the shared no-op by default, so serving pays
        #: nothing until a real tracer is attached.  An enabled tracer is
        #: also pushed into the system's components, so DSP kernel spans
        #: nest under the request's stage spans.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer.enabled:
            self.system.set_tracer(self.tracer)
        #: Per-stage score-drift monitors (always on: a record is a lock
        #: and a ring-buffer write).
        self.drift = drift if drift is not None else DriftRegistry()
        #: Optional decision audit log (one JSONL row per decision).
        self.audit = audit
        component_workers = (
            self.config.component_workers
            if self.config.component_workers is not None
            else 3 * self.config.request_workers
        )
        self._scheduler = JobScheduler(workers=component_workers)
        self._batcher = _IdentityBatcher(
            system.identity,
            self.config.batch_window_s,
            self.config.max_batch,
            self.metrics,
            tracer=self.tracer,
            cross_speaker=self.config.cross_speaker_batching,
        )
        self._queue: (
            "queue.Queue[Optional[Tuple[bytes, Future, float, Optional[Span]]]]"
        ) = queue.Queue(maxsize=self.config.max_queue)
        self._lock = threading.Lock()
        self._closed = False  # guarded-by: _lock
        # Instrument BEFORE the workers start: the lockset detector must
        # see every cross-thread access from the first request on.
        lockset.register(self)
        self._threads = [
            threading.Thread(
                target=self._request_worker, name=f"gateway-worker-{i}", daemon=True
            )
            for i in range(self.config.request_workers)
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request_frame: bytes, block: bool = True) -> "Future[bytes]":
        """Enqueue one request frame; resolves to the decision frame.

        With ``block=False`` a full admission queue raises
        :class:`~repro.errors.ConfigurationError` immediately instead of
        applying backpressure.

        Telemetry-request frames (see
        :func:`~repro.server.protocol.encode_telemetry_request`) are
        answered immediately from the registry — a metrics scrape never
        queues behind verification work and resolves to a telemetry
        response frame instead of a decision frame.
        """
        with self._lock:
            if self._closed:
                raise ConfigurationError("gateway has been closed")
        try:
            kind = frame_kind(request_frame)
        except ProtocolError:
            kind = 0  # malformed header: let the worker surface the error
        future: "Future[bytes]" = Future()
        if kind == KIND_TELEMETRY_REQUEST:
            try:
                future.set_result(self._handle_telemetry(request_frame))
            except ProtocolError as exc:
                self.metrics.increment("protocol_errors")
                future.set_exception(exc)
            return future
        root = self.tracer.begin("request") if self.tracer.enabled else None
        item = (request_frame, future, time.monotonic(), root)
        try:
            self._queue.put(item, block=block)
        except queue.Full:
            if root is not None:
                root.set_attr("error", "queue full")
                self.tracer.end(root, status="error")
            self.metrics.increment("rejected_queue_full")
            raise ConfigurationError(
                f"gateway queue is full ({self.config.max_queue} requests)"
            ) from None
        self.metrics.increment("requests_submitted")
        return future

    def handle(self, request_frame: bytes) -> bytes:
        """Synchronous convenience wrapper (drop-in for the server)."""
        return self.submit(request_frame).result()

    def handle_many(self, request_frames: Sequence[bytes]) -> List[bytes]:
        """Submit a burst of frames; decision frames in request order."""
        futures = [self.submit(frame) for frame in request_frames]
        return [f.result() for f in futures]

    # ------------------------------------------------------------------
    # Request pipeline
    # ------------------------------------------------------------------
    def _request_worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            frame, future, submitted_at, root = item
            try:
                waited = time.monotonic() - submitted_at
                self.metrics.observe("queue_s", waited)
                if root is not None:
                    self._retro_span(root, "queue", waited)
                self._process(frame, future, root)
            finally:
                self._queue.task_done()

    def _retro_span(
        self,
        parent: Span,
        name: str,
        duration_s: float,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record an already-elapsed interval as a child span.

        The queue wait cannot run a span's own clock (no code executes
        while the request sits in the queue), so the measured duration is
        written in after the fact and the start is backdated to match.
        """
        span = self.tracer.child(parent, name, attrs)
        self.tracer.end(span)
        span.duration_s = duration_s
        span.start_wall -= duration_s

    def _run_detection(
        self, jobs: Dict[str, Callable[[], ComponentResult]]
    ) -> Dict[str, ComponentResult]:
        """Scheduler fan-out + fail-closed folding for detection jobs."""
        job_results = self._scheduler.run_all(
            jobs,
            timeout_s=self.config.component_timeout_s,
            retries=self.config.component_retries,
        )
        for jr in job_results.values():
            if jr.timed_out:
                self.metrics.increment("component_timeouts")
            if jr.attempts > 1:
                self.metrics.increment("component_retries", jr.attempts - 1)
        return collect_detection_results(job_results)

    def _traced_job(
        self,
        name: str,
        fn: Callable[[], ComponentResult],
        parent: Optional[Span],
    ) -> Callable[[], ComponentResult]:
        """Wrap a component job so its stage span opens in the *executing*
        thread — DSP kernel spans then nest under it via the thread-local
        stack even though the job runs on a scheduler worker."""

        def call() -> ComponentResult:
            with self.tracer.span(f"stage.{name}", parent=parent) as span:
                result = fn()
                span.set_attrs({"passed": result.passed, "score": result.score})
                return result

        return call

    def _record_drift(self, results: Dict[str, ComponentResult]) -> None:
        for name, result in results.items():
            self.drift.record(name, result.score)  # non-finite are filtered

    def _observe_request(
        self,
        duration_s: float,
        accepted: bool,
        results: Dict[str, ComponentResult],
        claimed: Optional[str],
        request_id: Optional[str],
        root: Optional[Span],
        mode: str,
        skipped: Tuple[str, ...] = (),
        early_exit: Optional[str] = None,
    ) -> None:
        """Per-request telemetry fan-out: latency SLO counters, abuse
        observation, the tail-sampled wide event, and the ``total_s``
        observation (with an exemplar trace id when the event was kept,
        so Prometheus buckets link to real requests)."""
        self.metrics.increment(
            "slo_latency_good"
            if duration_s < self.config.slo_latency_threshold_s
            else "slo_latency_bad"
        )
        identity = results.get("identity")
        self.abuse.observe(
            claimed, identity.score if identity is not None else None
        )
        statuses = {
            name: ("pass" if r.passed else "reject")
            for name, r in results.items()
        }
        for name in skipped:
            statuses[name] = "skipped"
        event = WideEvent(
            request_id=request_id or "",
            trace_id=root.trace_id if root is not None else "",
            claimed_speaker=claimed,
            mode=mode,
            decision="accept" if accepted else "reject",
            duration_s=duration_s,
            early_exit_stage=early_exit,
            stage_scores={n: r.score for n, r in results.items()},
            stage_statuses=statuses,
        )
        kept = self.events.record(event)
        exemplar = (
            (event.trace_id or event.request_id or None)
            if kept is not None
            else None
        )
        self.metrics.observe("total_s", duration_s, exemplar=exemplar)

    def _finalize(
        self,
        root: Optional[Span],
        accepted: bool,
        results: Dict[str, ComponentResult],
        claimed: Optional[str],
        request_id: Optional[str],
        mode: str,
        skipped: Tuple[str, ...] = (),
        early_exit: Optional[str] = None,
    ) -> None:
        """Audit-log the decision and close the request's root span."""
        if self.audit is not None:
            self.audit.write(
                DecisionRecord.build(
                    accepted=accepted,
                    components=results,
                    claimed_speaker=claimed,
                    mode=mode,
                    skipped=skipped,
                    early_exit_stage=early_exit,
                    cascade_plan=self.system.cascade_plan,
                    request_id=request_id or "",
                    trace_id=root.trace_id if root is not None else "",
                )
            )
        if root is not None:
            root.set_attr("decision", "accept" if accepted else "reject")
            if early_exit is not None:
                root.set_attr("early_exit_stage", early_exit)
            self.tracer.end(root)

    def _process(
        self, frame: bytes, future: "Future[bytes]", root: Optional[Span] = None
    ) -> None:
        t0 = time.perf_counter()
        try:
            with self.tracer.span("decode", parent=root):
                capture, claimed, request_id = decode_request_full(frame)
        except ProtocolError as exc:
            self.metrics.increment("protocol_errors")
            if root is not None:
                root.set_attr("error", repr(exc))
                self.tracer.end(root, status="error")
            future.set_exception(exc)
            return
        t_decoded = time.perf_counter()
        if root is not None:
            root.set_attrs(
                {
                    "request_id": request_id,
                    "claimed_speaker": claimed,
                    "mode": "cascade" if self.config.cascade else "strict",
                }
            )

        if self.config.cascade:
            self._process_cascade(
                capture, claimed, request_id, future, t0, t_decoded, root
            )
            return

        jobs = machine_detection_jobs(self.system, capture, claimed)
        if self.tracer.enabled:
            jobs = {
                name: self._traced_job(name, fn, root)
                for name, fn in jobs.items()
            }
        results = self._run_detection(jobs)
        t_detection = time.perf_counter()

        if "identity" in self.system.enabled_components and claimed is not None:
            try:
                with self.tracer.span("stage.identity", parent=root) as ispan:
                    result = self._batcher.score(claimed, capture, span=ispan)
                    ispan.set_attrs(
                        {"passed": result.passed, "score": result.score}
                    )
                results["identity"] = result
            except BaseException as exc:  # noqa: BLE001 - surfaced via the future
                self.metrics.increment("identity_errors")
                if root is not None:
                    self.tracer.end(root, status="error")
                future.set_exception(exc)
                return
        t_identity = time.perf_counter()

        self._record_drift(results)
        sanitize.check_results(results)
        accepted = all(r.passed for r in results.values())
        payload: Dict[str, Tuple[bool, float, str]] = {
            name: (r.passed, r.score, r.detail) for name, r in results.items()
        }
        evidence = {name: dict(r.evidence) for name, r in results.items()}
        decision_frame = encode_decision(
            accepted, payload, request_id=request_id, evidence=evidence
        )
        t_done = time.perf_counter()

        self.metrics.observe("decode_s", t_decoded - t0)
        self.metrics.observe("detection_s", t_detection - t_decoded)
        self.metrics.observe("identity_s", t_identity - t_detection)
        self.metrics.observe("encode_s", t_done - t_identity)
        self.metrics.increment("requests_completed")
        self.metrics.increment("accepted" if accepted else "rejected")
        self._observe_request(
            t_done - t0, accepted, results, claimed, request_id, root,
            mode="strict",
        )
        self._finalize(root, accepted, results, claimed, request_id, mode="strict")
        future.set_result(decision_frame)

    def _process_cascade(
        self,
        capture: SensorCapture,
        claimed: Optional[str],
        request_id: Optional[str],
        future: "Future[bytes]",
        t0: float,
        t_decoded: float,
        root: Optional[Span] = None,
    ) -> None:
        """Cost-ordered serving: cheap gates sequentially, expensive tail
        in parallel, early exit on any confident rejection.

        The final decision is identical to the strict path: ACCEPT needs
        every enabled stage to pass, and a stage is only skipped after an
        upstream stage has already rejected.
        """
        order = cascade_order(self.system, claimed)
        gates, tail = cascade_split(order)
        jobs = machine_detection_jobs(self.system, capture, claimed)
        results: Dict[str, ComponentResult] = {}
        skipped: Tuple[str, ...] = ()
        early_exit: Optional[str] = None

        def run_stage(name: str) -> ComponentResult:
            with self.metrics.time(f"stage_{name}_s"):
                if name == "identity":
                    with self.tracer.span("stage.identity", parent=root) as span:
                        result = self._batcher.score(claimed, capture, span=span)
                        span.set_attrs(
                            {"passed": result.passed, "score": result.score}
                        )
                    return result
                job = jobs[name]
                if self.tracer.enabled:
                    job = self._traced_job(name, job, root)
                return self._run_detection({name: job})[name]

        for i, name in enumerate(gates):
            try:
                result = run_stage(name)
            except BaseException as exc:  # noqa: BLE001 - surfaced via the future
                self.metrics.increment("identity_errors")
                if root is not None:
                    self.tracer.end(root, status="error")
                future.set_exception(exc)
                return
            results[name] = result
            if self.system.cascade_plan.confident_reject(result, self.system.config):
                skipped = order[i + 1 :]
                early_exit = name
                break
        if not skipped and tail:

            def timed_job(
                name: str, fn: Callable[[], ComponentResult]
            ) -> Callable[[], ComponentResult]:
                traced = (
                    self._traced_job(name, fn, root)
                    if self.tracer.enabled
                    else fn
                )

                def call() -> ComponentResult:
                    with self.metrics.time(f"stage_{name}_s"):
                        return traced()

                return call

            tail_jobs = {
                name: timed_job(name, jobs[name])
                for name in tail
                if name != "identity"
            }
            if tail_jobs:
                results.update(self._run_detection(tail_jobs))
            if "identity" in tail:
                try:
                    results["identity"] = run_stage("identity")
                except BaseException as exc:  # noqa: BLE001
                    self.metrics.increment("identity_errors")
                    if root is not None:
                        self.tracer.end(root, status="error")
                    future.set_exception(exc)
                    return

        for name in skipped:
            self.metrics.increment(f"stage_skipped_{name}")
            if self.tracer.enabled:
                self.tracer.event(
                    f"stage.{name}",
                    parent=root,
                    status="skipped",
                    attrs={
                        "skip_reason": (
                            f"upstream stage {early_exit!r} rejected confidently"
                        ),
                        "cost_saved_ms": self.system.cascade_plan.estimated_cost_ms(
                            (name,)
                        ),
                    },
                )
        if skipped:
            self.metrics.increment("cascade_early_exits")

        self._record_drift(results)
        sanitize.check_results(results)
        accepted = all(r.passed for r in results.values())
        payload: Dict[str, Tuple[bool, float, str]] = {
            name: (r.passed, r.score, r.detail) for name, r in results.items()
        }
        evidence = {name: dict(r.evidence) for name, r in results.items()}
        decision_frame = encode_decision(
            accepted, payload, request_id=request_id, evidence=evidence
        )
        t_done = time.perf_counter()

        self.metrics.observe("decode_s", t_decoded - t0)
        self.metrics.increment("requests_completed")
        self.metrics.increment("accepted" if accepted else "rejected")
        self._observe_request(
            t_done - t0, accepted, results, claimed, request_id, root,
            mode="cascade", skipped=skipped, early_exit=early_exit,
        )
        self._finalize(
            root,
            accepted,
            results,
            claimed,
            request_id,
            mode="cascade",
            skipped=skipped,
            early_exit=early_exit,
        )
        future.set_result(decision_frame)

    # ------------------------------------------------------------------
    # Reporting / lifecycle
    # ------------------------------------------------------------------
    def _handle_telemetry(self, frame: bytes) -> bytes:
        """Answer a telemetry-scrape frame from the live registry."""
        sections, request_id = decode_telemetry_request(frame)
        telemetry: Dict[str, object] = {}
        for section in sections:
            if section == "summary":
                telemetry["summary"] = self.metrics_summary()
            elif section == "prometheus":
                telemetry["prometheus"] = prometheus_exposition(self.metrics)
            elif section == "stages":
                telemetry["stages"] = self.metrics.stage_report()
            elif section == "drift":
                telemetry["drift"] = {
                    "stages": self.drift.snapshot(),
                    "alerts": [str(a) for a in self.drift.alerts()],
                }
            elif section == "slo":
                telemetry["slo"] = self.slo.evaluate(self.metrics)
            elif section == "abuse":
                telemetry["abuse"] = self.abuse.snapshot()
            elif section == "events":
                telemetry["events"] = _events_section(self.events)
            # Unknown sections are omitted so old clients can probe.
        self.metrics.increment("telemetry_scrapes")
        return encode_telemetry_response(telemetry, request_id)

    def metrics_summary(self) -> Dict[str, object]:
        """Registry summary plus cache counters, throughput and drift."""
        summary = self.metrics.summary()
        cache = self.system.soundfield_cache_stats
        summary["soundfield_cache"] = {
            "hits": cache.hits,
            "misses": cache.misses,
            "evictions": cache.evictions,
        }
        summary["throughput_rps"] = self.metrics.throughput()
        summary["windowed_throughput_rps"] = self.metrics.windowed_throughput()
        summary["drift"] = {
            "stages": self.drift.snapshot(),
            "alerts": [str(a) for a in self.drift.alerts()],
        }
        if self.config.cascade:
            summary["stages"] = self.metrics.stage_report()
        return summary

    def close(self) -> None:
        """Drain queued requests, stop the workers, free the scheduler."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        for t in self._threads:
            t.join(timeout=30.0)
        self._scheduler.shutdown()

    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _PendingRequest:
    """Parent-side bookkeeping for one request handed to a shard."""

    __slots__ = ("future", "shard_id", "request_id", "claimed", "submitted_at", "root")

    def __init__(
        self,
        future: "Future[bytes]",
        shard_id: int,
        request_id: str,
        claimed: Optional[str],
        root: Optional[Span],
    ):
        self.future = future
        self.shard_id = shard_id
        self.request_id = request_id
        self.claimed = claimed
        self.submitted_at = time.monotonic()
        self.root = root


class ShardedGateway:
    """Shared-nothing process-shard serving tier.

    ``GatewayConfig(shards=N)`` forks N :mod:`~repro.server.shard`
    worker processes, each owning the speakers the consistent-hash
    router assigns to it — a speaker's sound-field LRU entry and ASV
    traffic live in exactly one process, so shards share no model state
    and the GIL stops being the scaling ceiling.

    The parent process never verifies anything: it peeks the claimed
    speaker off each request frame (cheap JSON-only decode), routes the
    frame bytes verbatim onto the owning shard's bounded queue
    (pickled once, by the queue itself), and collects decision frames,
    provenance rows, and trace fragments off each shard's private
    result pipe (single writer, no cross-process lock — a dying shard
    cannot wedge its peers' replies).  A health monitor replaces dead
    shards and fails their in-flight requests **closed** with a
    provenance-carrying rejection frame.

    Decisions are bitwise-equal to every other serving mode — the shard
    runs the same shared stage helpers — which
    ``tests/test_shard_equivalence.py`` enforces.
    """

    def __init__(
        self,
        system: DefenseSystem,
        config: Optional[GatewayConfig] = None,
        tracer: Optional[Tracer] = None,
        drift: Optional[DriftRegistry] = None,
        audit: Optional[AuditJsonlExporter] = None,
        slo: Optional[SLOEngine] = None,
        abuse: Optional[AbuseDetector] = None,
        events: Optional[WideEventRecorder] = None,
    ):
        self.system = system
        self.config = config if config is not None else GatewayConfig(shards=1)
        if self.config.enable_magliveness:
            # Applied to the parent's system BEFORE the shards fork, so
            # every shard inherits the extended component set and the
            # cross-mode decision equivalence holds with the flag on.
            self.system.enable_component("magliveness")
        if self.config.shards < 1:
            raise ConfigurationError(
                "ShardedGateway needs GatewayConfig(shards >= 1); "
                "shards=0 selects the threaded Gateway"
            )
        self.metrics = MetricsRegistry(window=self.config.metrics_window)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Parent-side drift registry: shard-local scores stay in the
        #: shards (scorer state must not cross the fork boundary).
        self.drift = drift if drift is not None else DriftRegistry()
        self.audit = audit
        #: SLO engine evaluates over the *merged* registry at scrape
        #: time; the per-request latency counters live in the shards
        #: (where ``total_s`` is measured), so merging never
        #: double-counts.
        self.slo = slo if slo is not None else SLOEngine()
        #: Abuse detection runs parent-side: the parent sees the whole
        #: query stream per speaker regardless of shard placement.
        self.abuse = abuse if abuse is not None else AbuseDetector()
        self.events = (
            events
            if events is not None
            else WideEventRecorder(
                slow_threshold_s=self.config.slo_latency_threshold_s,
                alert_probe=lambda: self.abuse.has_alerts,
            )
        )
        self.router = ConsistentHashRouter(self.config.shards)
        # Fork the shards FIRST, while this process is still
        # single-threaded: forking after the collector/monitor threads
        # exist risks copying a lock mid-acquisition into the child.
        self._supervisor = ShardSupervisor(
            self.config.shards,
            shard_main,
            (system, self.config),
            self.config.shard_queue_depth,
        )
        self._lock = threading.Lock()
        self._closed = False  # guarded-by: _lock
        self._seq = itertools.count(1)
        self._pending: Dict[int, _PendingRequest] = {}  # guarded-by: _lock
        #: Control-message waiters: seq -> (event, reply holder).
        self._controls: Dict[int, Tuple[threading.Event, List[object]]] = {}  # guarded-by: _lock
        self._stop = threading.Event()
        #: Set once every shard has exited during close(); the
        #: collector drains the remaining pipe messages, then returns.
        self._drain = threading.Event()
        # Instrument before the collector/monitor threads exist, for the
        # same reason the shards fork first: complete observation.
        lockset.register(self)
        self._collector = threading.Thread(
            target=self._collect_loop, name="shard-collector", daemon=True
        )
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="shard-monitor", daemon=True
        )
        self._collector.start()
        self._monitor.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request_frame: bytes, block: bool = True) -> "Future[bytes]":
        """Route one frame to its owning shard; resolves to the decision.

        Telemetry frames are answered from the merged registries without
        queueing behind verification work, like the threaded gateway.
        """
        with self._lock:
            if self._closed:
                raise ConfigurationError("gateway has been closed")
        try:
            kind = frame_kind(request_frame)
        except ProtocolError:
            kind = 0
        future: "Future[bytes]" = Future()
        if kind == KIND_TELEMETRY_REQUEST:
            try:
                future.set_result(self._handle_telemetry(request_frame))
            except ProtocolError as exc:
                self.metrics.increment("protocol_errors")
                future.set_exception(exc)
            return future
        try:
            claimed, request_id = peek_request_meta(request_frame)
        except ProtocolError as exc:
            self.metrics.increment("protocol_errors")
            future.set_exception(exc)
            return future
        shard_id = self.router.route(claimed)
        root: Optional[Span] = None
        if self.tracer.enabled:
            root = self.tracer.begin(
                "request",
                attrs={
                    "request_id": request_id,
                    "claimed_speaker": claimed,
                    "mode": "sharded",
                    "shard_id": shard_id,
                },
            )
        trace_ctx = (
            (root.trace_id, root.span_id) if root is not None else None
        )
        seq = next(self._seq)
        entry = _PendingRequest(future, shard_id, request_id, claimed, root)
        message = ("request", seq, request_frame, trace_ctx)
        # A shard can die between us reading its queue and finishing the
        # put, in which case the frame sits on an abandoned queue.  The
        # generation counter detects that: retry on the replacement's
        # fresh queue (decisions are deterministic, so a retried frame
        # can never double-count — the abandoned copy is never read).
        for _ in range(5):
            with self._lock:
                if self._closed:
                    raise ConfigurationError("gateway has been closed")
                generation = self._supervisor.generations[shard_id]
                work_queue = self._supervisor.work_queues[shard_id]
                self._pending[seq] = entry
            try:
                work_queue.put(message, block=block)
            except queue.Full:
                with self._lock:
                    self._pending.pop(seq, None)
                if root is not None:
                    root.set_attr("error", "queue full")
                    self.tracer.end(root, status="error")
                self.metrics.increment("rejected_queue_full")
                raise ConfigurationError(
                    f"shard {shard_id} queue is full "
                    f"({self.config.shard_queue_depth} requests)"
                ) from None
            with self._lock:
                if future.done():
                    # The crash handler failed this request closed (or a
                    # very fast shard already answered).
                    break
                if self._supervisor.generations[shard_id] == generation:
                    break
                # Shard replaced mid-put: reclaim and retry.
                self._pending.pop(seq, None)
        else:
            self._fail_closed(
                entry,
                shard_id,
                f"shard {shard_id} kept crashing during submission",
            )
        self.metrics.increment("requests_submitted")
        return future

    def handle(self, request_frame: bytes) -> bytes:
        """Synchronous convenience wrapper (drop-in for the server)."""
        return self.submit(request_frame).result()

    def handle_many(self, request_frames: Sequence[bytes]) -> List[bytes]:
        """Submit a burst of frames; decision frames in request order."""
        futures = [self.submit(frame) for frame in request_frames]
        return [f.result() for f in futures]

    # ------------------------------------------------------------------
    # Result collection
    # ------------------------------------------------------------------
    def _collect_loop(self) -> None:
        """Multiplex every shard's result pipe (and their successors').

        The collector is the sole reader: it closes a pipe when the
        shard's death (or drain) EOFs it, and picks up a replacement's
        fresh pipe on the next snapshot of the supervisor's reader
        list.  Crash *policy* stays with the health monitor — EOF here
        only retires the transport.
        """
        while True:
            readers = [
                conn
                for conn in self._supervisor.result_readers
                if not conn.closed
            ]
            if not readers:
                if self._drain.is_set():
                    return
                # Every live pipe EOFed at once (mass crash); wait for
                # the monitor to fork replacements.
                time.sleep(self.config.health_check_interval_s)
                continue
            for conn in _connection_wait(readers, timeout=0.2):
                try:
                    message = conn.recv()  # type: ignore[union-attr]
                except (EOFError, OSError):
                    # Shard exited (possibly mid-send). The monitor
                    # handles replacement; we just retire the pipe.
                    conn.close()  # type: ignore[union-attr]
                    continue
                self._dispatch(message)

    def _dispatch(self, message: Tuple) -> None:
        kind = message[0]
        if kind == "decision":
            _, seq, shard_id, frame, record_row, span_rows = message
            with self._lock:
                entry = self._pending.pop(seq, None)
            if entry is None:
                return  # already failed closed by the crash handler
            rtt = time.monotonic() - entry.submitted_at
            exemplar: Optional[str] = None
            if record_row:
                identity_score: Optional[float] = None
                for stage in record_row.get("stages", []) or ():
                    if stage.get("name") == "identity":
                        identity_score = stage.get("score")
                        break
                self.abuse.observe(entry.claimed, identity_score)
                event = WideEvent.from_record_row(
                    record_row, duration_s=rtt, shard_id=shard_id
                )
                if self.events.record(event) is not None:
                    exemplar = (
                        event.trace_id or event.request_id or None
                    )
            self.metrics.observe("shard_rtt_s", rtt, exemplar=exemplar)
            self.metrics.increment("requests_collected")
            if span_rows:
                self.tracer.ingest(span_rows)
            if self.audit is not None and record_row:
                self.audit.write(DecisionRecord.from_dict(record_row))
            if entry.root is not None:
                self.tracer.end(entry.root)
            entry.future.set_result(frame)
        elif kind == "decision_error":
            _, seq, shard_id, err_kind, detail = message
            with self._lock:
                entry = self._pending.pop(seq, None)
            if entry is None:
                return
            if err_kind == "protocol":
                self.metrics.increment("protocol_errors")
                exc: Exception = ProtocolError(detail)
            else:
                self.metrics.increment("shard_errors")
                exc = ConfigurationError(
                    f"shard {shard_id} failed internally: {detail}"
                )
            if entry.root is not None:
                entry.root.set_attr("error", detail)
                self.tracer.end(entry.root, status="error")
            entry.future.set_exception(exc)
        elif kind == "metrics":
            _, seq, shard_id, snapshot = message
            with self._lock:
                control = self._controls.pop(seq, None)
            if control is not None:
                control[1].append(snapshot)
                control[0].set()
        # "pong"/"stopped" need no parent-side action.

    # ------------------------------------------------------------------
    # Health / crash handling
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.config.health_check_interval_s):
            for shard_id in range(self._supervisor.shards):
                if self._stop.is_set():
                    return
                if not self._supervisor.is_alive(shard_id):
                    self._handle_crash(shard_id)

    def _handle_crash(self, shard_id: int) -> None:
        exit_code = self._supervisor.exitcode(shard_id)
        with self._lock:
            if self._closed:
                return
            stranded = [
                (seq, entry)
                for seq, entry in self._pending.items()
                if entry.shard_id == shard_id
            ]
            for seq, _ in stranded:
                del self._pending[seq]
            # Replace under the lock so submit()'s generation check and
            # the queue swap are atomic with the pending sweep.
            self._supervisor.replace(shard_id)
        self.metrics.increment("shard_crashes")
        detail = (
            f"shard {shard_id} crashed (exit code {exit_code}) with the "
            f"request in flight; failing closed"
        )
        for _, entry in stranded:
            self._fail_closed(entry, shard_id, detail)

    def _fail_closed(
        self, entry: _PendingRequest, shard_id: int, detail: str
    ) -> None:
        """Resolve a stranded request with a provenance-carrying
        rejection frame (never an exception: fail *closed*, not open)."""
        if entry.future.done():
            return
        result = ComponentResult(
            name="shard",
            passed=False,
            score=float("-inf"),
            detail=detail,
            evidence={"shard_id": float(shard_id)},
        )
        frame = encode_decision(
            False,
            {"shard": (result.passed, result.score, result.detail)},
            request_id=entry.request_id,
            evidence={"shard": dict(result.evidence)},
        )
        if self.audit is not None:
            self.audit.write(
                DecisionRecord.build(
                    accepted=False,
                    components={"shard": result},
                    claimed_speaker=entry.claimed,
                    mode="sharded",
                    cascade_plan=self.system.cascade_plan,
                    request_id=entry.request_id,
                    trace_id=(
                        entry.root.trace_id if entry.root is not None else ""
                    ),
                )
            )
        if entry.root is not None:
            entry.root.set_attr("error", detail)
            self.tracer.end(entry.root, status="error")
        self.metrics.increment("requests_failed_closed")
        self.metrics.increment("rejected")
        self.events.record(
            WideEvent(
                request_id=entry.request_id,
                trace_id=(
                    entry.root.trace_id if entry.root is not None else ""
                ),
                claimed_speaker=entry.claimed,
                mode="sharded",
                decision="reject",
                duration_s=time.monotonic() - entry.submitted_at,
                shard_id=shard_id,
                stage_statuses={"shard": "error"},
            )
        )
        entry.future.set_result(frame)

    def kill_shard(self, shard_id: int) -> None:
        """SIGKILL one shard (chaos testing); the health monitor detects
        the death, fails its in-flight requests closed, and forks the
        replacement."""
        self._supervisor.kill(shard_id)

    @property
    def shard_generations(self) -> List[int]:
        """Replacement count per shard slot (0 = original process)."""
        return list(self._supervisor.generations)

    # ------------------------------------------------------------------
    # Metrics / telemetry
    # ------------------------------------------------------------------
    def _gather_shard_snapshots(
        self, timeout_s: float = 30.0
    ) -> List[Dict[str, object]]:
        """Ask every live shard for a metrics snapshot (in-band control
        message, so a snapshot reflects a consistent drain point)."""
        waiters: List[Tuple[threading.Event, List[object]]] = []
        with self._lock:
            for shard_id in range(self._supervisor.shards):
                if not self._supervisor.is_alive(shard_id):
                    continue
                seq = next(self._seq)
                control: Tuple[threading.Event, List[object]] = (
                    threading.Event(),
                    [],
                )
                self._controls[seq] = control
                try:
                    self._supervisor.work_queues[shard_id].put_nowait(
                        ("metrics", seq)
                    )
                except queue.Full:
                    del self._controls[seq]
                    continue
                waiters.append(control)
        deadline = time.monotonic() + timeout_s
        snapshots: List[Dict[str, object]] = []
        for event, holder in waiters:
            if event.wait(max(0.0, deadline - time.monotonic())) and holder:
                snapshots.append(holder[0])  # type: ignore[arg-type]
        return snapshots

    def merged_metrics(self) -> MetricsRegistry:
        """Whole-system registry: parent-side series + every shard's."""
        return self.metrics.merged(*self._gather_shard_snapshots())

    def _handle_telemetry(self, frame: bytes) -> bytes:
        sections, request_id = decode_telemetry_request(frame)
        merged = self.merged_metrics()
        telemetry: Dict[str, object] = {}
        for section in sections:
            if section == "summary":
                telemetry["summary"] = self._summarize(merged)
            elif section == "prometheus":
                telemetry["prometheus"] = prometheus_exposition(merged)
            elif section == "stages":
                telemetry["stages"] = merged.stage_report()
            elif section == "drift":
                telemetry["drift"] = {
                    "stages": self.drift.snapshot(),
                    "alerts": [str(a) for a in self.drift.alerts()],
                }
            elif section == "slo":
                # Evaluated over the merged registry: the latency
                # good/bad events live in the shards' rings, and
                # windowed_count over their sorted union equals a
                # single registry that saw everything.
                telemetry["slo"] = self.slo.evaluate(merged)
            elif section == "abuse":
                telemetry["abuse"] = self.abuse.snapshot()
            elif section == "events":
                telemetry["events"] = _events_section(self.events)
        self.metrics.increment("telemetry_scrapes")
        return encode_telemetry_response(telemetry, request_id)

    def _summarize(self, merged: MetricsRegistry) -> Dict[str, object]:
        summary = merged.summary()
        summary["throughput_rps"] = merged.throughput()
        summary["windowed_throughput_rps"] = merged.windowed_throughput()
        summary["shards"] = {
            "count": self.config.shards,
            "generations": self.shard_generations,
            "alive": [
                self._supervisor.is_alive(i)
                for i in range(self._supervisor.shards)
            ],
        }
        if self.config.cascade:
            summary["stages"] = merged.stage_report()
        return summary

    def metrics_summary(self) -> Dict[str, object]:
        """Merged registry summary plus shard liveness/generations."""
        return self._summarize(self.merged_metrics())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain every shard queue, stop the workers and the threads."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        # Stop the monitor first: shard exits during shutdown must not
        # read as crashes (which would fork pointless replacements).
        self._stop.set()
        self._monitor.join(timeout=30.0)
        self._supervisor.request_stop()
        self._supervisor.join(timeout_s=30.0)
        # Every shard has exited, so every result pipe either holds
        # buffered messages or is at EOF: the collector drains the
        # former, closes on the latter, then observes the drain flag.
        self._drain.set()
        self._collector.join(timeout=30.0)
        self._supervisor.close_queues()
        # Anything still pending after the drain fails closed.
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
        for entry in leftovers:
            if not entry.future.done():
                self._fail_closed(
                    entry, entry.shard_id, "gateway closed with request in flight"
                )

    def __enter__(self) -> "ShardedGateway":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def create_gateway(
    system: DefenseSystem,
    config: Optional[GatewayConfig] = None,
    tracer: Optional[Tracer] = None,
    drift: Optional[DriftRegistry] = None,
    audit: Optional[AuditJsonlExporter] = None,
    slo: Optional[SLOEngine] = None,
    abuse: Optional[AbuseDetector] = None,
    events: Optional[WideEventRecorder] = None,
) -> Union[Gateway, "ShardedGateway"]:
    """The serving tier a config asks for: ``shards=0`` → threaded
    :class:`Gateway`, ``shards>=1`` → :class:`ShardedGateway`."""
    if config is not None and config.shards > 0:
        return ShardedGateway(
            system,
            config,
            tracer=tracer,
            drift=drift,
            audit=audit,
            slo=slo,
            abuse=abuse,
            events=events,
        )
    return Gateway(
        system,
        config,
        tracer=tracer,
        drift=drift,
        audit=audit,
        slo=slo,
        abuse=abuse,
        events=events,
    )
