"""Wire protocol between the mobile client and the verification server.

The paper's clients "send zipped data to the Tornado server via a secure
web socket protocol".  We reproduce the data plane: a verification request
carries the claimed identity plus every sensor stream of a capture,
serialised to a compact binary frame — zlib-compressed and CRC-protected.
(Transport security is out of scope for an in-process prototype; the
frame format leaves a version byte for negotiating it.)

Frame layout (all integers little-endian):

    magic   2 bytes  b"RV"
    version 1 byte
    kind    1 byte   (1 = request, 2 = decision,
                      3 = telemetry request, 4 = telemetry response)
    length  4 bytes  payload length
    crc32   4 bytes  of the compressed payload
    payload zlib-compressed body

Telemetry frames let a client scrape the serving side's metrics over the
same channel it authenticates on (the in-process analogue of hitting a
``/metrics`` endpoint): the request names the sections it wants, the
response carries them as a JSON object (and the Prometheus text
exposition as a string field).
"""

from __future__ import annotations

import base64
import hashlib
import json
import struct
import zlib
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.errors import ProtocolError
from repro.sensors.base import SensorSeries
from repro.world.scene import SensorCapture
from repro.physics.geometry import Pose, SampledPath

_MAGIC = b"RV"
_VERSION = 1
_KIND_REQUEST = 1
_KIND_DECISION = 2
_KIND_TELEMETRY_REQUEST = 3
_KIND_TELEMETRY_RESPONSE = 4
_HEADER = struct.Struct("<2sBBLL")

#: Public frame-kind values (the return values of :func:`frame_kind`).
KIND_REQUEST = _KIND_REQUEST
KIND_DECISION = _KIND_DECISION
KIND_TELEMETRY_REQUEST = _KIND_TELEMETRY_REQUEST
KIND_TELEMETRY_RESPONSE = _KIND_TELEMETRY_RESPONSE

#: Upper bound on the (compressed) payload a peer may declare.  A capture
#: is a few hundred kB; anything near this limit is malformed or hostile
#: (zlib decompression bombs), and the guard rejects it before the
#: payload is decompressed or even sliced.
MAX_PAYLOAD_BYTES = 32 * 1024 * 1024


def _pack_array(x: np.ndarray) -> Dict[str, object]:
    arr = np.asarray(x, dtype=np.float32)
    return {
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def _unpack_array(obj: Dict[str, object]) -> np.ndarray:
    try:
        data = base64.b64decode(obj["data"], validate=True)
        shape = tuple(int(s) for s in obj["shape"])  # type: ignore[union-attr]
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed array field: {exc}") from exc
    # The float32 here is the *wire format*, not a decision-path cast:
    # every serving mode decodes the identical frame bytes, so the
    # quantization is applied once, symmetrically, before any mode
    # diverges — the equivalence harness pins this
    # (tests/test_shard_equivalence.py).
    return np.frombuffer(  # repro: ignore[taint-flow]: float32 is the wire contract; all modes decode the same frame bytes, so the narrowing is mode-invariant by construction
        data, dtype=np.float32
    ).reshape(shape).astype(float)


def _frame(kind: int, body: dict) -> bytes:
    payload = zlib.compress(json.dumps(body).encode("utf-8"), level=6)
    header = _HEADER.pack(
        _MAGIC, _VERSION, kind, len(payload), zlib.crc32(payload) & 0xFFFFFFFF
    )
    return header + payload


def _unframe(frame: bytes, expected_kind: int) -> dict:
    if len(frame) < _HEADER.size:
        raise ProtocolError("frame shorter than header")
    magic, version, kind, length, crc = _HEADER.unpack(frame[: _HEADER.size])
    if magic != _MAGIC:
        raise ProtocolError("bad magic")
    if version != _VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if kind != expected_kind:
        raise ProtocolError(f"expected frame kind {expected_kind}, got {kind}")
    if length > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte limit"
        )
    payload = frame[_HEADER.size :]
    if len(payload) != length:
        raise ProtocolError("frame length mismatch")
    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
        raise ProtocolError("payload checksum mismatch")
    try:
        return json.loads(zlib.decompress(payload).decode("utf-8"))
    except (zlib.error, json.JSONDecodeError) as exc:
        raise ProtocolError(f"payload decode failed: {exc}") from exc


def frame_kind(frame: bytes) -> int:
    """Peek at a frame's kind byte without decoding the payload.

    Lets a server demultiplex verification and telemetry traffic on the
    same channel.  Validates only the header prefix (length + magic +
    version); full integrity checks happen when the frame is decoded.
    """
    if len(frame) < _HEADER.size:
        raise ProtocolError("frame shorter than header")
    magic, version, kind, _, _ = _HEADER.unpack(frame[: _HEADER.size])
    if magic != _MAGIC:
        raise ProtocolError("bad magic")
    if version != _VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    return int(kind)


def peek_request_meta(frame: bytes) -> Tuple[Optional[str], str]:
    """(claimed_speaker, request_id) of a request frame, nothing else.

    The sharded gateway routes on the claimed speaker but must not pay
    for array unpacking in the routing thread — the frame bytes are
    forwarded verbatim to the owning shard, which does the full decode.
    This decompresses and parses the JSON body (full integrity checks
    included) but touches none of the array fields, which is where the
    real decode cost lives.
    """
    body = _unframe(frame, _KIND_REQUEST)
    claimed = body.get("claimed_speaker")
    return (
        None if claimed is None else str(claimed),
        str(body.get("request_id", "")),
    )


def encode_request(
    capture: SensorCapture,
    claimed_speaker: Optional[str],
    request_id: str = "",
) -> bytes:
    """Serialise a verification request (capture + claim).

    ``request_id`` is an opaque client-chosen correlation token; the
    server echoes it into the decision frame so concurrent clients can
    match responses to requests.
    """
    body = {
        "claimed_speaker": claimed_speaker,
        "request_id": request_id,
        "audio": _pack_array(capture.audio),
        "audio_secondary": (
            _pack_array(capture.audio_secondary)
            if capture.audio_secondary is not None
            else None
        ),
        "audio_sample_rate": capture.audio_sample_rate,
        "pilot_hz": capture.pilot_hz,
        "magnetometer_t": _pack_array(capture.magnetometer.times),
        "magnetometer_v": _pack_array(capture.magnetometer.values),
        "accelerometer_t": _pack_array(capture.accelerometer.times),
        "accelerometer_v": _pack_array(capture.accelerometer.values),
        "gyroscope_t": _pack_array(capture.gyroscope.times),
        "gyroscope_v": _pack_array(capture.gyroscope.values),
        "source_kind": capture.source_kind,
        "environment": capture.environment_name,
        "metadata": capture.metadata,
    }
    return _frame(_KIND_REQUEST, body)


def decode_request(frame: bytes) -> Tuple[SensorCapture, Optional[str]]:
    """Parse a request frame back into a capture + claimed identity."""
    capture, claimed, _ = decode_request_full(frame)
    return capture, claimed


def decode_request_full(
    frame: bytes,
) -> Tuple[SensorCapture, Optional[str], str]:
    """Parse a request frame into capture, claimed identity, request id.

    The trajectory ground truth is not transmitted (the phone does not
    know it); a trivial two-pose placeholder path is attached because the
    capture type requires one — server-side components never read it.
    """
    body = _unframe(frame, _KIND_REQUEST)
    audio = _unpack_array(body["audio"]).ravel()
    secondary_field = body.get("audio_secondary")
    audio_secondary = (
        _unpack_array(secondary_field).ravel()
        if secondary_field is not None
        else None
    )
    times = _unpack_array(body["magnetometer_t"]).ravel()
    placeholder = SampledPath(
        [0.0, max(float(times[-1]), 1e-3)],
        [Pose(np.zeros(3), np.eye(3)), Pose(np.zeros(3), np.eye(3))],
    )
    capture = SensorCapture(
        audio=audio,
        audio_sample_rate=int(body["audio_sample_rate"]),
        pilot_hz=float(body["pilot_hz"]),
        magnetometer=SensorSeries(times, _unpack_array(body["magnetometer_v"])),
        accelerometer=SensorSeries(
            _unpack_array(body["accelerometer_t"]).ravel(),
            _unpack_array(body["accelerometer_v"]),
        ),
        gyroscope=SensorSeries(
            _unpack_array(body["gyroscope_t"]).ravel(),
            _unpack_array(body["gyroscope_v"]),
        ),
        path=placeholder,
        source_kind=str(body.get("source_kind", "unknown")),
        environment_name=str(body.get("environment", "unknown")),
        metadata=dict(body.get("metadata", {})),
        audio_secondary=audio_secondary,
    )
    return capture, body.get("claimed_speaker"), str(body.get("request_id", ""))


def encode_decision(
    accepted: bool,
    component_results: Dict[str, Tuple[bool, float, str]],
    request_id: str = "",
    evidence: Optional[Dict[str, Dict[str, float]]] = None,
) -> bytes:
    """Serialise the server's decision.

    ``evidence`` optionally attaches each component's structured
    measurement-vs-threshold mapping (see
    :attr:`repro.core.decision.ComponentResult.evidence`) so a client can
    audit the decision offline without access to server logs.
    """
    components: Dict[str, Dict[str, object]] = {}
    for name, (passed, score, detail) in component_results.items():
        entry: Dict[str, object] = {
            "passed": passed,
            "score": score,
            "detail": detail,
        }
        if evidence is not None:
            entry["evidence"] = dict(evidence.get(name, {}))
        components[name] = entry
    body = {
        "accepted": accepted,
        "request_id": request_id,
        "components": components,
    }
    return _frame(_KIND_DECISION, body)


def decode_decision(frame: bytes) -> dict:
    """Parse a decision frame."""
    return _unframe(frame, _KIND_DECISION)


def decision_fingerprint(decision: dict) -> str:
    """Canonical sha256 of one decoded decision body.

    Serialisation is key-sorted compact JSON, so two decisions hash
    equal iff their decoded dictionaries are equal — float scores
    compare at full ``repr`` precision, making this a *bitwise*
    equivalence check across serving modes.
    """
    canonical = json.dumps(
        decision, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()


def decisions_checksum(decisions: "Iterable[dict]") -> str:
    """Order-insensitive checksum over a set of decoded decisions.

    Hashes each decision with :func:`decision_fingerprint`, sorts the
    digests, and hashes the concatenation — so serving modes that
    complete requests in different orders (threaded, sharded) still
    produce identical checksums when and only when every individual
    decision matches.  Benchmarks persist this next to throughput
    numbers so the bench diff CLI catches silent decision drift.
    """
    digests = sorted(decision_fingerprint(d) for d in decisions)
    return hashlib.sha256("".join(digests).encode("ascii")).hexdigest()


#: Telemetry sections a scrape may request.
TELEMETRY_SECTIONS = (
    "summary",
    "prometheus",
    "stages",
    "drift",
    "slo",
    "abuse",
    "events",
)


def encode_telemetry_request(
    sections: Tuple[str, ...] = ("summary", "prometheus"),
    request_id: str = "",
) -> bytes:
    """Serialise a metrics-scrape request.

    ``sections`` selects what the server should include (see
    :data:`TELEMETRY_SECTIONS`); unknown sections are silently omitted
    from the response, which lets clients probe newer servers safely.
    """
    for section in sections:
        if not isinstance(section, str):
            raise ProtocolError("telemetry sections must be strings")
    body = {"sections": list(sections), "request_id": request_id}
    return _frame(_KIND_TELEMETRY_REQUEST, body)


def decode_telemetry_request(frame: bytes) -> Tuple[Tuple[str, ...], str]:
    """Parse a telemetry request into (sections, request_id)."""
    body = _unframe(frame, _KIND_TELEMETRY_REQUEST)
    sections = body.get("sections", [])
    if not isinstance(sections, list):
        raise ProtocolError("telemetry sections must be a list")
    return tuple(str(s) for s in sections), str(body.get("request_id", ""))


def encode_telemetry_response(telemetry: dict, request_id: str = "") -> bytes:
    """Serialise a telemetry response (section name → JSON value)."""
    body = {"request_id": request_id, "telemetry": telemetry}
    return _frame(_KIND_TELEMETRY_RESPONSE, body)


def decode_telemetry_response(frame: bytes) -> dict:
    """Parse a telemetry response frame."""
    return _unframe(frame, _KIND_TELEMETRY_RESPONSE)
