"""Client-server prototype (paper §V) and the concurrent serving path.

The paper's prototype is an Android app talking to a Tornado backend over
a secure web socket: the app records acoustic + inertial data, zips it,
and uploads; the server unzips, runs the verification cascade (with a
scheduler parallelising the machine-detection components), and returns
the decision.

This subpackage reproduces that architecture in-process and scales it:

- :mod:`repro.server.protocol` — framed, zlib-compressed, checksummed
  message encoding for captures and decisions;
- :mod:`repro.server.scheduler` — a small APScheduler-style job pool that
  runs the verification components concurrently, with per-job execution
  timeouts and bounded crash retries;
- :mod:`repro.server.backend` — the sequential request handler wrapping a
  :class:`repro.core.pipeline.DefenseSystem`;
- :mod:`repro.server.gateway` — the concurrent verification gateway:
  bounded admission queue, request-worker pool, same-speaker identity
  micro-batching, and per-stage metrics; plus the shared-nothing
  :class:`~repro.server.gateway.ShardedGateway` process tier
  (``GatewayConfig(shards=N)``);
- :mod:`repro.server.router` — consistent-hash speaker → shard routing;
- :mod:`repro.server.shard` — the forked shard worker's serving loop;
- :mod:`repro.server.metrics` — latency histograms and throughput
  counters shared by the serving paths, with cross-process snapshot
  merging for the shard tier;
- :mod:`repro.server.client` — the mobile-app side: packs captures,
  submits them, and measures round-trip authentication time (Fig. 15),
  plus a concurrent load generator for gateway benches.

Observability (tracing, decision provenance, drift monitors, JSONL and
Prometheus exporters) lives in :mod:`repro.obs`; the gateway accepts a
tracer/drift registry/audit log and serves telemetry-scrape frames.
"""

from repro.server.protocol import (
    KIND_DECISION,
    KIND_REQUEST,
    KIND_TELEMETRY_REQUEST,
    KIND_TELEMETRY_RESPONSE,
    decode_decision,
    decode_request,
    decode_request_full,
    decode_telemetry_request,
    decode_telemetry_response,
    encode_decision,
    encode_request,
    encode_telemetry_request,
    encode_telemetry_response,
    frame_kind,
    peek_request_meta,
    decision_fingerprint,
    decisions_checksum,
)
from repro.server.scheduler import JobResult, JobScheduler, ShardSupervisor
from repro.server.metrics import Histogram, MetricsRegistry, RequestStats
from repro.server.backend import VerificationServer
from repro.server.router import ConsistentHashRouter
from repro.server.gateway import (
    Gateway,
    GatewayConfig,
    ShardedGateway,
    create_gateway,
)
from repro.server.client import (
    LoadGenerator,
    MobileClient,
    TimingReport,
    summarize_trials,
)

__all__ = [
    "KIND_DECISION",
    "KIND_REQUEST",
    "KIND_TELEMETRY_REQUEST",
    "KIND_TELEMETRY_RESPONSE",
    "decode_decision",
    "decode_request",
    "decode_request_full",
    "decode_telemetry_request",
    "decode_telemetry_response",
    "encode_decision",
    "encode_request",
    "encode_telemetry_request",
    "encode_telemetry_response",
    "frame_kind",
    "peek_request_meta",
    "decision_fingerprint",
    "decisions_checksum",
    "JobResult",
    "JobScheduler",
    "ShardSupervisor",
    "Histogram",
    "MetricsRegistry",
    "RequestStats",
    "VerificationServer",
    "ConsistentHashRouter",
    "Gateway",
    "GatewayConfig",
    "ShardedGateway",
    "create_gateway",
    "LoadGenerator",
    "MobileClient",
    "TimingReport",
    "summarize_trials",
]
