"""Client-server prototype (paper §V).

The paper's prototype is an Android app talking to a Tornado backend over
a secure web socket: the app records acoustic + inertial data, zips it,
and uploads; the server unzips, runs the verification cascade (with a
scheduler parallelising the machine-detection components), and returns
the decision.

This subpackage reproduces that architecture in-process:

- :mod:`repro.server.protocol` — framed, zlib-compressed, checksummed
  message encoding for captures and decisions;
- :mod:`repro.server.scheduler` — a small APScheduler-style job pool that
  runs the verification components concurrently;
- :mod:`repro.server.backend` — the request handler wrapping a
  :class:`repro.core.pipeline.DefenseSystem`;
- :mod:`repro.server.client` — the mobile-app side: packs captures,
  submits them, and measures round-trip authentication time (Fig. 15).
"""

from repro.server.protocol import (
    decode_decision,
    decode_request,
    encode_decision,
    encode_request,
)
from repro.server.scheduler import JobScheduler
from repro.server.backend import VerificationServer
from repro.server.client import MobileClient, TimingReport

__all__ = [
    "decode_decision",
    "decode_request",
    "encode_decision",
    "encode_request",
    "JobScheduler",
    "VerificationServer",
    "MobileClient",
    "TimingReport",
]
