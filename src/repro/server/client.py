"""The mobile-app side of the prototype, plus authentication timing.

:class:`MobileClient` packs a capture into a request frame, submits it to
any verification handler (the sequential
:class:`~repro.server.backend.VerificationServer` or the concurrent
:class:`~repro.server.gateway.Gateway`), and parses the decision —
measuring the round trip the way the paper's Fig. 15 experiment does
("we stop the time counter only when the authentication result is sent
back").

A simulated network latency can be injected to model the local-server
redirection of the paper's setup.  :class:`LoadGenerator` drives a
gateway from many client threads at once to measure the concurrent
serving path's throughput and per-stage latency.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.server.protocol import (
    decode_decision,
    decode_telemetry_response,
    encode_request,
    encode_telemetry_request,
)
from repro.world.scene import SensorCapture


class VerificationHandler(Protocol):
    """Anything that turns a request frame into a decision frame."""

    def handle(self, request_frame: bytes) -> bytes: ...


@dataclass(frozen=True)
class TimingReport:
    """Round-trip timing of one authentication attempt (seconds)."""

    capture_s: float
    encode_s: float
    network_s: float
    server_s: float
    decode_s: float
    accepted: bool

    @property
    def total_s(self) -> float:
        """Interaction-to-decision time (what Fig. 15 plots)."""
        return (
            self.capture_s
            + self.encode_s
            + self.network_s
            + self.server_s
            + self.decode_s
        )


@dataclass
class MobileClient:
    """Client endpoint bound to one verification handler."""

    server: VerificationHandler
    network_latency_s: float = 0.012

    def authenticate(
        self,
        capture: SensorCapture,
        claimed_speaker: Optional[str],
        interaction_time_s: Optional[float] = None,
    ) -> TimingReport:
        """Submit one capture and time every stage of the round trip.

        ``interaction_time_s`` is the user-facing recording time (the
        capture's duration by default) — it dominates the total, exactly
        as in the paper's comparison against WeChat voice print.
        """
        capture_s = (
            capture.duration_s if interaction_time_s is None else interaction_time_s
        )
        t0 = time.perf_counter()
        request = encode_request(capture, claimed_speaker)
        t_encoded = time.perf_counter()
        server_frame = self.server.handle(request)
        t_served = time.perf_counter()
        decision = decode_decision(server_frame)
        t_done = time.perf_counter()
        return TimingReport(
            capture_s=capture_s,
            encode_s=t_encoded - t0,
            network_s=2.0 * self.network_latency_s,
            server_s=t_served - t_encoded,
            decode_s=t_done - t_served,
            accepted=bool(decision["accepted"]),
        )

    def authenticate_many(
        self,
        captures: List[SensorCapture],
        claimed_speaker: Optional[str],
    ) -> List[TimingReport]:
        """Authenticate a batch (one trial per capture)."""
        return [self.authenticate(c, claimed_speaker) for c in captures]

    def scrape_metrics(
        self,
        sections: Tuple[str, ...] = ("summary", "prometheus"),
    ) -> dict:
        """Fetch the serving side's telemetry over the wire protocol.

        Sends a telemetry-request frame through the same handler used for
        verification (the gateway answers it without queueing) and
        returns the section name → value mapping; the ``"prometheus"``
        section is the text exposition, parseable with
        :func:`repro.obs.exporters.parse_prometheus`.
        """
        response = self.server.handle(encode_telemetry_request(sections))
        return dict(decode_telemetry_response(response).get("telemetry", {}))


@dataclass
class LoadGenerator:
    """Concurrent client fleet for gateway load tests.

    Spawns one thread per in-flight request, each running a full
    :class:`MobileClient` round trip; returns the reports in submission
    order plus the burst's wall-clock time.
    """

    handler: VerificationHandler
    network_latency_s: float = 0.012

    def run(
        self,
        workload: Sequence[Tuple[SensorCapture, Optional[str]]],
    ) -> Tuple[List[TimingReport], float]:
        """Fire every (capture, claimed) pair concurrently; join them all."""
        client = MobileClient(self.handler, self.network_latency_s)
        reports: List[Optional[TimingReport]] = [None] * len(workload)
        errors: List[BaseException] = []

        def one(i: int, capture: SensorCapture, claimed: Optional[str]) -> None:
            try:
                reports[i] = client.authenticate(capture, claimed)
            except BaseException as exc:  # noqa: BLE001 - re-raised after join
                errors.append(exc)

        threads = [
            threading.Thread(target=one, args=(i, capture, claimed), daemon=True)
            for i, (capture, claimed) in enumerate(workload)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall_s = time.perf_counter() - t0
        if errors:
            raise errors[0]
        return [r for r in reports if r is not None], wall_s


def summarize_trials(reports: List[TimingReport]) -> dict:
    """Mean/percentile totals for a batch of trials (Fig. 15 rows)."""
    totals = np.array([r.total_s for r in reports])
    return {
        "trials": len(reports),
        "mean_s": float(totals.mean()),
        "p50_s": float(np.percentile(totals, 50)),
        "p90_s": float(np.percentile(totals, 90)),
        "p95_s": float(np.percentile(totals, 95)),
        "success_rate": float(np.mean([r.accepted for r in reports])),
    }
