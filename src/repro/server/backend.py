"""The verification server backend.

Wraps a trained :class:`repro.core.pipeline.DefenseSystem` behind the
wire protocol: decode request → fan the machine-detection components out
on the scheduler → run identity verification → encode decision.  The
"network" is an in-process call, which keeps the Fig. 15 timing bench
about compute rather than transport (the paper likewise redirected all
traffic to a local server to minimise network influence).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.decision import ComponentResult, Decision
from repro.core.pipeline import DefenseSystem
from repro.errors import ProtocolError
from repro.server.protocol import decode_request, encode_decision
from repro.server.scheduler import JobScheduler


@dataclass
class RequestStats:
    """Server-side timing for one request (seconds)."""

    decode_s: float
    detection_s: float
    identity_s: float
    total_s: float


@dataclass
class VerificationServer:
    """In-process stand-in for the paper's Tornado backend."""

    system: DefenseSystem
    scheduler: JobScheduler = field(default_factory=lambda: JobScheduler(workers=3))
    last_stats: Optional[RequestStats] = None

    def handle(self, request_frame: bytes) -> bytes:
        """Process one verification request frame; returns a decision frame."""
        t0 = time.perf_counter()
        capture, claimed = decode_request(request_frame)
        t_decoded = time.perf_counter()

        enabled = self.system.enabled_components
        jobs = {}
        if "distance" in enabled:
            jobs["distance"] = lambda: self.system.distance.verify(capture)
        if "magnetic" in enabled:
            jobs["magnetic"] = lambda: self.system.magnetic.verify(capture)
        if "soundfield" in enabled and claimed is not None:
            jobs["soundfield"] = lambda: self.system.soundfield_for(claimed).verify(
                capture
            )
        job_results = self.scheduler.run_all(jobs)
        results: Dict[str, ComponentResult] = {}
        for name, job in job_results.items():
            if job.ok:
                results[name] = job.value
            else:
                results[name] = ComponentResult(
                    name=name,
                    passed=False,
                    score=float("-inf"),
                    detail=f"component error: {job.error}",
                )
        t_detection = time.perf_counter()

        if "identity" in enabled and claimed is not None:
            results["identity"] = self.system.identity.verify(capture, claimed)
        t_identity = time.perf_counter()

        accepted = all(r.passed for r in results.values())
        payload: Dict[str, Tuple[bool, float, str]] = {
            name: (r.passed, r.score, r.detail) for name, r in results.items()
        }
        frame = encode_decision(accepted, payload)
        self.last_stats = RequestStats(
            decode_s=t_decoded - t0,
            detection_s=t_detection - t_decoded,
            identity_s=t_identity - t_detection,
            total_s=time.perf_counter() - t0,
        )
        return frame

    def close(self) -> None:
        self.scheduler.shutdown()
