"""The verification server backend.

Wraps a trained :class:`repro.core.pipeline.DefenseSystem` behind the
wire protocol: decode request → fan the machine-detection components out
on the scheduler → run identity verification → encode decision.  The
"network" is an in-process call, which keeps the Fig. 15 timing bench
about compute rather than transport (the paper likewise redirected all
traffic to a local server to minimise network influence).

The module-level helpers (:func:`machine_detection_jobs`,
:func:`collect_detection_results`) are shared with the concurrent
:class:`~repro.server.gateway.Gateway`, so the one-request-at-a-time
server and the gateway run byte-identical cascades.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.core.cascade import stage_scope
from repro.core.decision import ComponentResult
from repro.core.pipeline import DefenseSystem
from repro.server.metrics import MetricsRegistry, RequestStats
from repro.server.protocol import decode_request_full, encode_decision
from repro.server.scheduler import JobResult, JobScheduler
from repro.world.scene import SensorCapture

__all__ = [
    "RequestStats",
    "VerificationServer",
    "machine_detection_jobs",
    "collect_detection_results",
    "cascade_order",
    "cascade_split",
]


def cascade_order(
    system: DefenseSystem, claimed: Optional[str]
) -> Tuple[str, ...]:
    """Enabled stages cheapest-first; claim-dependent stages only with a
    claim (matching the strict path, which skips them too)."""
    order = system.cascade_plan.order(system.enabled_components)
    if claimed is None:
        order = tuple(n for n in order if n not in ("identity", "soundfield"))
    return order


def cascade_split(
    order: Tuple[str, ...],
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Split a cost order into sequential gates and a parallel tail.

    The gateway's cascade runs the cheap leading stages one at a time
    (each may exit early) and the two most expensive stages together.
    Every serving mode — threaded gateway and process shards — must use
    this exact split, because the gate set determines which stages can
    early-exit and therefore which downstream stages get *skipped*;
    a different split would produce different skip sets and break the
    bitwise cross-mode decision equivalence the test harness enforces.
    """
    gates = order[:-2] if len(order) > 2 else ()
    return gates, order[len(gates) :]


def _staged(
    name: str, fn: Callable[[], ComponentResult]
) -> Callable[[], ComponentResult]:
    """Wrap a component job so it executes inside the cascade's
    :func:`~repro.core.cascade.stage_scope` (per-stage profiler
    attribution), whichever scheduler thread picks it up."""

    def run() -> ComponentResult:
        with stage_scope(name):
            return fn()

    return run


def machine_detection_jobs(
    system: DefenseSystem, capture: SensorCapture, claimed: Optional[str]
) -> Dict[str, Callable[[], ComponentResult]]:
    """The independent machine-detection component jobs for one request."""
    enabled = system.enabled_components
    jobs: Dict[str, Callable[[], ComponentResult]] = {}
    if "distance" in enabled:
        jobs["distance"] = _staged(
            "distance", lambda: system.distance.verify(capture)
        )
    if "magnetic" in enabled:
        jobs["magnetic"] = _staged(
            "magnetic", lambda: system.magnetic.verify(capture)
        )
    if "magliveness" in enabled:
        jobs["magliveness"] = _staged(
            "magliveness", lambda: system.magliveness.verify(capture)
        )
    if "soundfield" in enabled and claimed is not None:
        jobs["soundfield"] = _staged(
            "soundfield", lambda: system.soundfield_for(claimed).verify(capture)
        )
    return jobs


def collect_detection_results(
    job_results: Dict[str, JobResult],
) -> Dict[str, ComponentResult]:
    """Fold scheduler outcomes into component results (fail closed).

    A crashed or timed-out component degrades to a scored rejection —
    the safe default for an authentication system.
    """
    results: Dict[str, ComponentResult] = {}
    for name, job in job_results.items():
        if job.ok:
            results[name] = job.value
        else:
            results[name] = ComponentResult(
                name=name,
                passed=False,
                score=float("-inf"),
                detail=f"component error: {job.error}",
            )
    return results


@dataclass
class VerificationServer:
    """In-process stand-in for the paper's Tornado backend.

    Handles exactly one request at a time; the concurrent serving path is
    :class:`~repro.server.gateway.Gateway`, which produces bitwise-equal
    decisions for the same frames.
    """

    system: DefenseSystem
    scheduler: JobScheduler = field(default_factory=lambda: JobScheduler(workers=3))
    #: Per-component execution budget (None = wait forever, the historical
    #: behaviour) and crash-retry budget, passed through to the scheduler.
    component_timeout_s: Optional[float] = None
    component_retries: int = 0
    metrics: Optional[MetricsRegistry] = None
    last_stats: Optional[RequestStats] = None

    def handle(self, request_frame: bytes) -> bytes:
        """Process one verification request frame; returns a decision frame."""
        t0 = time.perf_counter()
        capture, claimed, request_id = decode_request_full(request_frame)
        t_decoded = time.perf_counter()

        jobs = machine_detection_jobs(self.system, capture, claimed)
        job_results = self.scheduler.run_all(
            jobs, timeout_s=self.component_timeout_s, retries=self.component_retries
        )
        results = collect_detection_results(job_results)
        t_detection = time.perf_counter()

        if "identity" in self.system.enabled_components and claimed is not None:
            with stage_scope("identity"):
                results["identity"] = self.system.identity.verify(
                    capture, claimed
                )
        t_identity = time.perf_counter()

        accepted = all(r.passed for r in results.values())
        payload: Dict[str, Tuple[bool, float, str]] = {
            name: (r.passed, r.score, r.detail) for name, r in results.items()
        }
        evidence = {name: dict(r.evidence) for name, r in results.items()}
        frame = encode_decision(
            accepted, payload, request_id=request_id, evidence=evidence
        )
        t_done = time.perf_counter()
        self.last_stats = RequestStats(
            decode_s=t_decoded - t0,
            detection_s=t_detection - t_decoded,
            identity_s=t_identity - t_detection,
            total_s=t_done - t0,
        )
        if self.metrics is not None:
            self.metrics.observe("decode_s", t_decoded - t0)
            self.metrics.observe("detection_s", t_detection - t_decoded)
            self.metrics.observe("identity_s", t_identity - t_detection)
            self.metrics.observe("total_s", t_done - t0)
            self.metrics.increment("requests_completed")
            self.metrics.increment("accepted" if accepted else "rejected")
        return frame

    def close(self) -> None:
        self.scheduler.shutdown()
