"""Serving-path metrics: latency histograms and throughput counters.

The single-request :class:`RequestStats` of the original prototype kept
one number per stage; a concurrent gateway needs distributions.  A
:class:`Histogram` keeps running aggregates (count/sum/min/max) over the
full stream plus a bounded window of recent samples for percentiles, and
a :class:`MetricsRegistry` names a thread-safe collection of histograms
and counters — enough to rerun the Fig. 15 auth-time bench against the
gateway and read off p50/p95 per stage.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis import lockset
from repro.errors import ConfigurationError

#: Cumulative-bucket upper bounds (seconds) used for the Prometheus
#: ``_bucket{le=...}`` exposition and for exemplar attachment.  The
#: final implicit bucket is ``+Inf``.  The decade-ish spacing matches
#: the serving path's dynamic range: 0.2 ms magnetometer rejections up
#: to multi-second timeout tails.
LATENCY_BUCKET_BOUNDS_S: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)


@dataclass
class RequestStats:
    """Server-side timing for one request (seconds)."""

    decode_s: float
    detection_s: float
    identity_s: float
    total_s: float


class Histogram:
    """Streaming histogram of float samples.

    Aggregates (count, sum, min, max) cover every recorded sample;
    percentiles are computed over a sliding window of the most recent
    ``window`` samples, which bounds memory for a long-lived gateway.
    Fixed cumulative buckets (:data:`LATENCY_BUCKET_BOUNDS_S`) cover the
    whole stream and can carry one **exemplar** each — the trace id of a
    real request that landed in that bucket, the hook a Grafana panel
    uses to jump from a latency spike to its trace.
    """

    def __init__(self, window: int = 4096):
        if window <= 0:
            raise ConfigurationError("window must be positive")
        self._window = window
        self._samples = np.empty(window, dtype=float)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._buckets = [0] * (len(LATENCY_BUCKET_BOUNDS_S) + 1)
        #: bucket index -> (value, exemplar label, wall-clock ts)
        self._exemplars: Dict[int, Tuple[float, str, float]] = {}

    def record(self, value: float, exemplar: Optional[str] = None) -> None:
        value = float(value)
        self._samples[self._count % self._window] = value
        self._count += 1
        self._sum += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        idx = bisect.bisect_left(LATENCY_BUCKET_BOUNDS_S, value)
        self._buckets[idx] += 1
        if exemplar is not None:
            self._exemplars[idx] = (value, exemplar, time.time())

    def __len__(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Percentile over the recent-sample window (p in [0, 100])."""
        if self._count == 0:
            return 0.0
        filled = self._samples[: min(self._count, self._window)]
        return float(np.percentile(filled, p))

    @property
    def bucket_counts(self) -> Tuple[int, ...]:
        """Non-cumulative counts per bucket (last bucket is +Inf)."""
        return tuple(self._buckets)

    def exemplars(self) -> Dict[int, Tuple[float, str, float]]:
        """Latest exemplar per bucket index: (value, label, wall ts)."""
        return dict(self._exemplars)

    # -- cross-process merge -------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Picklable full state: aggregates plus the recent window in
        chronological order (shard → parent metrics handoff)."""
        filled = min(self._count, self._window)
        if self._count <= self._window:
            recent = self._samples[:filled]
        else:
            pivot = self._count % self._window
            recent = np.concatenate(
                (self._samples[pivot:], self._samples[:pivot])
            )
        return {
            "window": self._window,
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "recent": [float(v) for v in recent],
            "buckets": list(self._buckets),
            "exemplars": {
                str(idx): list(row) for idx, row in self._exemplars.items()
            },
        }

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold another histogram's :meth:`state_dict` into this one.

        Aggregates add exactly; the recent windows are concatenated
        (ours first, theirs second) and truncated to the newest
        ``window`` samples, preserving the invariant that percentiles
        see ``min(count, window)`` samples.  After a merge the ring's
        eviction order is approximate — acceptable, since the window
        only feeds order-insensitive percentiles.
        """
        count = int(state["count"])  # type: ignore[arg-type]
        if count == 0:
            return
        self._sum += float(state["sum"])  # type: ignore[arg-type]
        if state["min"] is not None:
            self._min = min(self._min, float(state["min"]))  # type: ignore[arg-type]
        if state["max"] is not None:
            self._max = max(self._max, float(state["max"]))  # type: ignore[arg-type]
        ours = min(self._count, self._window)
        combined = list(self._samples[:ours]) + list(state["recent"])  # type: ignore[arg-type]
        kept = combined[-self._window :]
        self._samples[: len(kept)] = kept
        self._count += count
        for idx, n in enumerate(state.get("buckets", ())):  # type: ignore[arg-type]
            self._buckets[idx] += int(n)
        for key, row in dict(state.get("exemplars", {})).items():  # type: ignore[arg-type]
            idx = int(key)
            value, label, wall = float(row[0]), str(row[1]), float(row[2])
            ours_row = self._exemplars.get(idx)
            # Keep the newest exemplar per bucket across the merge.
            if ours_row is None or wall >= ours_row[2]:
                self._exemplars[idx] = (value, label, wall)

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "Histogram":
        hist = cls(int(state["window"]))  # type: ignore[arg-type]
        hist.merge_state(state)
        return hist

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self._count),
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
        }


class MetricsRegistry:
    """Thread-safe named histograms + monotonic counters."""

    #: Recent-increment events kept per counter for windowed rates.
    EVENT_WINDOW = 4096

    def __init__(self, window: int = 4096):
        self._window = window
        self._lock = threading.Lock()
        self._histograms: Dict[str, Histogram] = {}  # guarded-by: _lock
        self._counters: Dict[str, int] = {}  # guarded-by: _lock
        self._events: Dict[str, Deque[Tuple[float, int]]] = {}  # guarded-by: _lock
        self._started_at = time.monotonic()
        lockset.register(self)

    # -- histograms ----------------------------------------------------
    def observe(
        self, name: str, value: float, exemplar: Optional[str] = None
    ) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(self._window)
            hist.record(value, exemplar=exemplar)

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(self._window)
            return hist

    def time(self, name: str) -> "_Timer":
        """Context manager recording a duration into histogram ``name``."""
        return _Timer(self, name)

    # -- counters ------------------------------------------------------
    def increment(
        self, name: str, by: int = 1, at: Optional[float] = None
    ) -> None:
        """Bump a counter, recording the increment event for windowed
        rates.  ``at`` overrides the event timestamp (monotonic-clock
        domain) — used by tests and replayed streams; live serving code
        leaves it ``None``."""
        now = time.monotonic() if at is None else float(at)
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by
            events = self._events.get(name)
            if events is None:
                events = self._events[name] = deque(maxlen=self.EVENT_WINDOW)
            events.append((now, by))

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    # -- reporting -----------------------------------------------------
    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started_at

    def throughput(self, counter_name: str = "requests_completed") -> float:
        """Completed requests per second since the registry was created."""
        elapsed = self.uptime_s
        return self.counter(counter_name) / elapsed if elapsed > 0 else 0.0

    def windowed_throughput(
        self,
        counter_name: str = "requests_completed",
        window_s: float = 60.0,
    ) -> float:
        """Rate of a counter over (at most) the last ``window_s`` seconds.

        Unlike :meth:`throughput`, which averages over the registry's whole
        lifetime, this reflects the *current* load: an idle gateway decays
        to zero within one window.  The rate is computed from a bounded
        ring of recent increment events, so a burst larger than
        ``EVENT_WINDOW`` increments under-counts (the lifetime counter
        never does).
        """
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        now = time.monotonic()
        cutoff = now - window_s
        with self._lock:
            events = self._events.get(counter_name)
            total = (
                sum(by for ts, by in events if ts >= cutoff) if events else 0
            )
        span = min(window_s, max(now - self._started_at, 1e-9))
        return total / span

    def windowed_count(
        self,
        counter_name: str,
        window_s: float,
        now: Optional[float] = None,
    ) -> int:
        """Sum of a counter's increments inside the last ``window_s``
        seconds (monotonic-clock domain; ``now`` defaults to the current
        monotonic time).

        This is the primitive the SLO burn-rate math runs on.  It is a
        pure function of the counter's event ring, so a merged N-shard
        registry (whose rings are the sorted union of the shards') gives
        the same answer as a single registry that saw every event —
        evaluated at the same ``now``.  Bursts larger than
        ``EVENT_WINDOW`` increments under-count, like
        :meth:`windowed_throughput`.
        """
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        if now is None:
            now = time.monotonic()
        cutoff = now - window_s
        with self._lock:
            events = self._events.get(counter_name)
            if not events:
                return 0
            total = 0
            # Newest-last ring: walk from the right, stop at the cutoff.
            for ts, by in reversed(events):
                if ts < cutoff:
                    break
                if ts <= now:
                    total += by
            return total

    def summary(self) -> Dict[str, object]:
        with self._lock:
            hists = {name: h.summary() for name, h in self._histograms.items()}
            counters = dict(self._counters)
        return {"histograms": hists, "counters": counters}

    # -- cross-process merge -------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Picklable point-in-time state of every series.

        Shard workers ship this over the result queue; the parent folds
        the snapshots together with :meth:`merge_snapshot` so
        ``stage_report()``/exposition stay whole-system.  Event
        timestamps are ``time.monotonic()`` values — comparable across
        processes on one host (CLOCK_MONOTONIC is system-wide on
        Linux), which is the only place shards exist.
        """
        with self._lock:
            return {
                "window": self._window,
                "started_at": self._started_at,
                "histograms": {
                    name: h.state_dict()
                    for name, h in self._histograms.items()
                },
                "counters": dict(self._counters),
                "events": {
                    name: list(events)
                    for name, events in self._events.items()
                },
            }

    def merge_snapshot(self, snap: Dict[str, object]) -> None:
        """Fold a :meth:`snapshot` (typically from another process) in."""
        with self._lock:
            for name, state in snap["histograms"].items():  # type: ignore[union-attr]
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = Histogram(self._window)
                hist.merge_state(state)
            for name, value in snap["counters"].items():  # type: ignore[union-attr]
                self._counters[name] = self._counters.get(name, 0) + value
            for name, rows in snap["events"].items():  # type: ignore[union-attr]
                events = self._events.get(name)
                if events is None:
                    events = self._events[name] = deque(
                        maxlen=self.EVENT_WINDOW
                    )
                merged = sorted(
                    list(events) + [(float(ts), int(by)) for ts, by in rows]
                )
                events.clear()
                events.extend(merged[-self.EVENT_WINDOW :])
            # Whole-system uptime starts at the oldest participant.
            self._started_at = min(
                self._started_at, float(snap["started_at"])  # type: ignore[arg-type]
            )

    def merged(self, *snapshots: Dict[str, object]) -> "MetricsRegistry":
        """A new registry combining this one with shard snapshots,
        leaving this registry untouched."""
        combined = MetricsRegistry(self._window)
        combined.merge_snapshot(self.snapshot())
        for snap in snapshots:
            combined.merge_snapshot(snap)
        return combined

    def stage_report(self) -> Dict[str, Dict[str, float]]:
        """Per-cascade-stage runs, skips, errors and latency percentiles.

        Aggregates the ``stage_<name>_s`` histograms plus the
        ``stage_skipped_<name>`` and ``stage_errors_<name>`` counters the
        gateway cascade maintains.  Error-path histograms
        (``stage_<name>_error_s``) are deliberately excluded from the
        ok-path percentiles.  Stages that never ran but were skipped
        still appear (run p50/p95 report 0.0).
        """
        with self._lock:
            hists = {
                name[len("stage_") : -len("_s")]: h
                for name, h in self._histograms.items()
                if name.startswith("stage_")
                and name.endswith("_s")
                and not name.endswith("_error_s")
            }
            skips = {
                name[len("stage_skipped_") :]: count
                for name, count in self._counters.items()
                if name.startswith("stage_skipped_")
            }
            errors = {
                name[len("stage_errors_") :]: count
                for name, count in self._counters.items()
                if name.startswith("stage_errors_")
            }
        report: Dict[str, Dict[str, float]] = {}
        for stage in sorted(set(hists) | set(skips) | set(errors)):
            hist = hists.get(stage)
            runs = hist.count if hist is not None else 0
            skipped = skips.get(stage, 0)
            total = runs + skipped
            report[stage] = {
                "runs": float(runs),
                "skipped": float(skipped),
                "skip_rate": skipped / total if total else 0.0,
                "errors": float(errors.get(stage, 0)),
                "p50_s": hist.percentile(50.0) if hist is not None else 0.0,
                "p95_s": hist.percentile(95.0) if hist is not None else 0.0,
            }
        return report


class _Timer:
    """Duration recorder that labels the outcome of the timed block.

    A block that exits cleanly records into the named histogram as
    before.  A block that raises records into a *separate* error
    histogram and bumps an error counter instead, so error latencies
    (often bimodal: instant validation failures vs full timeouts) never
    pollute the ok-path percentiles.  For a stage histogram
    ``stage_<x>_s`` the error series are ``stage_<x>_error_s`` and
    ``stage_errors_<x>``; any other name ``n`` gets ``n_error`` and
    ``errors_<n>``.  The exception always propagates.
    """

    def __init__(self, registry: MetricsRegistry, name: str):
        self._registry = registry
        self._name = name
        self._t0: Optional[float] = None

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: object,
    ) -> None:
        assert self._t0 is not None
        elapsed = time.perf_counter() - self._t0
        if exc_type is None:
            self._registry.observe(self._name, elapsed)
            return
        name = self._name
        if name.startswith("stage_") and name.endswith("_s"):
            stage = name[len("stage_") : -len("_s")]
            self._registry.observe(f"stage_{stage}_error_s", elapsed)
            self._registry.increment(f"stage_errors_{stage}")
        else:
            self._registry.observe(f"{name}_error", elapsed)
            self._registry.increment(f"errors_{name}")
