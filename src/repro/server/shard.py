"""Shard worker process: the verification loop of one gateway shard.

A :class:`~repro.server.gateway.ShardedGateway` forks N of these, each
owning the speakers a :class:`~repro.server.router.ConsistentHashRouter`
assigns to it.  The worker inherits the trained
:class:`~repro.core.pipeline.DefenseSystem` by fork copy-on-write (the
models are never pickled or re-trained) and builds **all of its mutable
serving state after the fork** — metrics registry, job scheduler, drift
registry, tracer — so no parent-held lock, RNG, or cache is ever shared
across the process boundary.  The ``fork-safety`` static-analysis rule
enforces this shape.

Request frames arrive pickled-once over the shard's bounded work queue
and are decoded here; decisions travel back — as encoded decision
frames plus a provenance row and the shard's trace-span fragment —
over the shard's **private result pipe**.  Each pipe has exactly one
writer, so no cross-process lock guards it: a shard SIGKILLed mid-send
cannot poison a shared semaphore (the way a shared result queue's
write lock can), and the parent instead observes a clean EOF.  The
verification paths replicate the threaded gateway stage for stage
(shared helpers from :mod:`repro.server.backend`), so a shard's decision
frame is byte-identical to every other serving mode's.

Wire messages (tuples; the queues pickle them):

    work:    ("request", seq, frame, trace_ctx)   trace_ctx: (trace_id,
                                                  parent_span_id) | None
             ("metrics", seq)                     → metrics snapshot
             ("ping", seq)                        → liveness probe
             ("stop",)                            drain + exit
    result:  ("decision", seq, shard_id, frame, record_row, span_rows)
             ("decision_error", seq, shard_id, kind, message)
             ("metrics", seq, shard_id, snapshot)
             ("pong", seq, shard_id)
             ("stopped", shard_id)
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, Optional, Tuple

from repro.analysis import sanitize
from repro.core.cascade import stage_scope
from repro.core.config import GatewayConfig
from repro.core.decision import ComponentResult
from repro.core.pipeline import DefenseSystem
from repro.errors import ProtocolError
from repro.obs.drift import DriftRegistry
from repro.obs.provenance import DecisionRecord
from repro.obs.trace import NULL_TRACER, Span, Tracer
from repro.server.backend import (
    cascade_order,
    cascade_split,
    collect_detection_results,
    machine_detection_jobs,
)
from repro.server.metrics import MetricsRegistry
from repro.server.protocol import decode_request_full, encode_decision
from repro.server.scheduler import JobScheduler
from repro.world.scene import SensorCapture

__all__ = ["ShardWorker", "shard_main", "CHAOS_EXIT_CODE", "CHAOS_METADATA_KEY"]

#: Exit status of a chaos-killed shard (distinguishable from a real crash).
CHAOS_EXIT_CODE = 13

#: Request-metadata key that triggers the in-band chaos kill (only when
#: the gateway was built with ``GatewayConfig(chaos_hooks=True)``).
CHAOS_METADATA_KEY = "__chaos_exit__"


class ShardWorker:
    """Per-process serving state + the verification paths of one shard.

    Everything mutable is constructed in ``__init__``, which runs in the
    child process after the fork.
    """

    def __init__(self, shard_id: int, system: DefenseSystem, config: GatewayConfig):
        self.shard_id = shard_id
        self.system = system
        self.config = config
        self.metrics = MetricsRegistry(window=config.metrics_window)
        self.drift = DriftRegistry()
        #: Real tracer used only for requests that arrive with a trace
        #: context; untraced requests run against the shared no-op, so
        #: they pay nothing (``self.tracer`` is swapped per request —
        #: safe because a shard serves one request at a time).
        self._span_tracer = Tracer()
        self.tracer: Tracer = NULL_TRACER
        self.scheduler = JobScheduler(workers=3)

    # -- request processing --------------------------------------------
    def process(
        self, frame: bytes, trace_ctx: Optional[Tuple[str, str]]
    ) -> Tuple[bytes, Dict[str, object], list]:
        """One request frame → (decision frame, provenance row, spans)."""
        t0 = time.perf_counter()
        self.tracer = self._span_tracer if trace_ctx is not None else NULL_TRACER
        root: Optional[Span] = None
        if trace_ctx is not None:
            trace_id, parent_span_id = trace_ctx
            root = self.tracer.remote_child(
                trace_id,
                parent_span_id,
                "shard.process",
                attrs={"shard_id": self.shard_id},
            )
        try:
            try:
                capture, claimed, request_id = decode_request_full(frame)
            except ProtocolError:
                self.metrics.increment("protocol_errors")
                if root is not None:
                    self.tracer.end(root, status="error")
                raise
            if self.config.chaos_hooks and capture.metadata.get(CHAOS_METADATA_KEY):
                os._exit(CHAOS_EXIT_CODE)
            t_decoded = time.perf_counter()
            if root is not None:
                root.set_attrs(
                    {
                        "request_id": request_id,
                        "claimed_speaker": claimed,
                        "mode": "cascade" if self.config.cascade else "strict",
                    }
                )
            if self.config.cascade:
                out = self._process_cascade(
                    capture, claimed, request_id, t0, t_decoded, root
                )
            else:
                out = self._process_strict(
                    capture, claimed, request_id, t0, t_decoded, root
                )
        finally:
            spans = (
                [s.to_dict() for s in self.tracer.take_trace(trace_ctx[0])]
                if trace_ctx is not None
                else []
            )
        return out[0], out[1], spans

    def _traced_job(
        self,
        name: str,
        fn: Callable[[], ComponentResult],
        parent: Optional[Span],
    ) -> Callable[[], ComponentResult]:
        """Stage span opened in the executing thread (mirrors the
        threaded gateway), so kernel spans nest under it."""

        def call() -> ComponentResult:
            with self.tracer.span(f"stage.{name}", parent=parent) as span:
                result = fn()
                span.set_attrs({"passed": result.passed, "score": result.score})
                return result

        return call

    def _run_detection(
        self, jobs: Dict[str, Callable[[], ComponentResult]]
    ) -> Dict[str, ComponentResult]:
        job_results = self.scheduler.run_all(
            jobs,
            timeout_s=self.config.component_timeout_s,
            retries=self.config.component_retries,
        )
        for jr in job_results.values():
            if jr.timed_out:
                self.metrics.increment("component_timeouts")
            if jr.attempts > 1:
                self.metrics.increment("component_retries", jr.attempts - 1)
        return collect_detection_results(job_results)

    def _finish(
        self,
        accepted: bool,
        results: Dict[str, ComponentResult],
        claimed: Optional[str],
        request_id: Optional[str],
        mode: str,
        root: Optional[Span],
        skipped: Tuple[str, ...] = (),
        early_exit: Optional[str] = None,
    ) -> Tuple[bytes, Dict[str, object]]:
        self._record_drift(results)
        sanitize.check_results(results)
        payload: Dict[str, Tuple[bool, float, str]] = {
            name: (r.passed, r.score, r.detail) for name, r in results.items()
        }
        evidence = {name: dict(r.evidence) for name, r in results.items()}
        decision_frame = encode_decision(
            accepted, payload, request_id=request_id, evidence=evidence
        )
        record = DecisionRecord.build(
            accepted=accepted,
            components=results,
            claimed_speaker=claimed,
            mode=mode,
            skipped=skipped,
            early_exit_stage=early_exit,
            cascade_plan=self.system.cascade_plan,
            request_id=request_id or "",
            trace_id=root.trace_id if root is not None else "",
        )
        if root is not None:
            root.set_attr("decision", "accept" if accepted else "reject")
            if early_exit is not None:
                root.set_attr("early_exit_stage", early_exit)
            self.tracer.end(root)
        return decision_frame, record.to_dict()

    def _record_drift(self, results: Dict[str, ComponentResult]) -> None:
        for name, result in results.items():
            self.drift.record(name, result.score)

    def _process_strict(
        self,
        capture: SensorCapture,
        claimed: Optional[str],
        request_id: Optional[str],
        t0: float,
        t_decoded: float,
        root: Optional[Span],
    ) -> Tuple[bytes, Dict[str, object]]:
        jobs = machine_detection_jobs(self.system, capture, claimed)
        if self.tracer.enabled and root is not None:
            jobs = {
                name: self._traced_job(name, fn, root)
                for name, fn in jobs.items()
            }
        results = self._run_detection(jobs)
        t_detection = time.perf_counter()
        if "identity" in self.system.enabled_components and claimed is not None:
            with self.tracer.span("stage.identity", parent=root) as ispan:
                with stage_scope("identity"):
                    result = self.system.identity.verify(capture, claimed)
                ispan.set_attrs({"passed": result.passed, "score": result.score})
            results["identity"] = result
        t_identity = time.perf_counter()
        accepted = all(r.passed for r in results.values())
        out = self._finish(
            accepted, results, claimed, request_id, "strict", root
        )
        t_done = time.perf_counter()
        self.metrics.observe("decode_s", t_decoded - t0)
        self.metrics.observe("detection_s", t_detection - t_decoded)
        self.metrics.observe("identity_s", t_identity - t_detection)
        self.metrics.observe("encode_s", t_done - t_identity)
        self._observe_total(t_done - t0)
        self.metrics.increment("requests_completed")
        self.metrics.increment("accepted" if accepted else "rejected")
        return out

    def _process_cascade(
        self,
        capture: SensorCapture,
        claimed: Optional[str],
        request_id: Optional[str],
        t0: float,
        t_decoded: float,
        root: Optional[Span],
    ) -> Tuple[bytes, Dict[str, object]]:
        order = cascade_order(self.system, claimed)
        gates, tail = cascade_split(order)
        jobs = machine_detection_jobs(self.system, capture, claimed)
        results: Dict[str, ComponentResult] = {}
        skipped: Tuple[str, ...] = ()
        early_exit: Optional[str] = None

        def run_stage(name: str) -> ComponentResult:
            with self.metrics.time(f"stage_{name}_s"):
                if name == "identity":
                    with self.tracer.span("stage.identity", parent=root) as span:
                        with stage_scope("identity"):
                            result = self.system.identity.verify(
                                capture, claimed
                            )
                        span.set_attrs(
                            {"passed": result.passed, "score": result.score}
                        )
                    return result
                job = jobs[name]
                if self.tracer.enabled and root is not None:
                    job = self._traced_job(name, job, root)
                return self._run_detection({name: job})[name]

        for i, name in enumerate(gates):
            result = run_stage(name)
            results[name] = result
            if self.system.cascade_plan.confident_reject(result, self.system.config):
                skipped = order[i + 1 :]
                early_exit = name
                break
        if not skipped and tail:

            def timed_job(
                name: str, fn: Callable[[], ComponentResult]
            ) -> Callable[[], ComponentResult]:
                traced = (
                    self._traced_job(name, fn, root)
                    if self.tracer.enabled and root is not None
                    else fn
                )

                def call() -> ComponentResult:
                    with self.metrics.time(f"stage_{name}_s"):
                        return traced()

                return call

            tail_jobs = {
                name: timed_job(name, jobs[name])
                for name in tail
                if name != "identity"
            }
            if tail_jobs:
                results.update(self._run_detection(tail_jobs))
            if "identity" in tail:
                results["identity"] = run_stage("identity")

        for name in skipped:
            self.metrics.increment(f"stage_skipped_{name}")
            if self.tracer.enabled and root is not None:
                self.tracer.event(
                    f"stage.{name}",
                    parent=root,
                    status="skipped",
                    attrs={
                        "skip_reason": (
                            f"upstream stage {early_exit!r} rejected confidently"
                        ),
                        "cost_saved_ms": self.system.cascade_plan.estimated_cost_ms(
                            (name,)
                        ),
                    },
                )
        if skipped:
            self.metrics.increment("cascade_early_exits")
        accepted = all(r.passed for r in results.values())
        out = self._finish(
            accepted,
            results,
            claimed,
            request_id,
            "cascade",
            root,
            skipped=skipped,
            early_exit=early_exit,
        )
        t_done = time.perf_counter()
        self.metrics.observe("decode_s", t_decoded - t0)
        self._observe_total(t_done - t0)
        self.metrics.increment("requests_completed")
        self.metrics.increment("accepted" if accepted else "rejected")
        return out

    def _observe_total(self, duration_s: float) -> None:
        """Record the request's wall time plus its latency-SLO verdict.

        The good/bad counters live shard-side — where ``total_s`` is
        measured — so the parent's merged registry sees each request's
        verdict exactly once (:mod:`repro.obs.slo` reads the merged
        event rings)."""
        self.metrics.observe("total_s", duration_s)
        self.metrics.increment(
            "slo_latency_good"
            if duration_s < self.config.slo_latency_threshold_s
            else "slo_latency_bad"
        )

    def close(self) -> None:
        self.scheduler.shutdown()


def shard_main(
    shard_id: int,
    system: DefenseSystem,
    config: GatewayConfig,
    work_queue: "object",
    result_conn: "object",
    stray_writers: "object" = (),
) -> None:
    """Entry point of a shard process: serve until the drain sentinel.

    The work queue is single-consumer FIFO, so every message enqueued
    before the ``("stop",)`` sentinel is served before the shard exits —
    that *is* the drain protocol.

    Results go back over this shard's private one-way pipe.  Only this
    process may hold its write end (``stray_writers`` are the *other*
    shards' ends this fork inherited — closed immediately), so the pipe
    needs no cross-process lock and the parent sees a prompt EOF if the
    shard dies.
    """
    for writer in stray_writers:  # type: ignore[attr-defined]
        writer.close()
    # Re-arm the sanitizers from the environment before any worker
    # state exists: fork inherits the parent's in-process flag, but an
    # explicit re-read keeps the child correct under any start method
    # and lets tests arm the whole tree via the env alone.
    if os.environ.get("REPRO_SANITIZE", "").strip().lower() not in (
        "",
        "0",
        "false",
        "off",
    ):
        sanitize.enable()
    worker = ShardWorker(shard_id, system, config)
    if sanitize.enabled():
        # Visible proof that arming crossed the fork: the parent reads
        # this counter back through the metrics control message.
        worker.metrics.increment("sanitize_armed")
    send = result_conn.send  # type: ignore[attr-defined]
    try:
        while True:
            message = work_queue.get()  # type: ignore[attr-defined]
            kind = message[0]
            if kind == "stop":
                send(("stopped", shard_id))
                return
            if kind == "ping":
                send(("pong", message[1], shard_id))
                continue
            if kind == "metrics":
                send(("metrics", message[1], shard_id, worker.metrics.snapshot()))
                continue
            if kind != "request":  # pragma: no cover - future message kinds
                continue
            _, seq, frame, trace_ctx = message
            try:
                decision_frame, record_row, span_rows = worker.process(
                    frame, trace_ctx
                )
            except ProtocolError as exc:
                send(("decision_error", seq, shard_id, "protocol", str(exc)))
                continue
            except BaseException as exc:  # noqa: BLE001 - shipped to parent
                send(("decision_error", seq, shard_id, "internal", repr(exc)))
                continue
            send(("decision", seq, shard_id, decision_frame, record_row, span_rows))
    finally:
        result_conn.close()  # type: ignore[attr-defined]
        worker.close()
