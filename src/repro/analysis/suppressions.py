"""Per-line ``# repro: ignore[<rule>]`` suppressions.

Syntax (one per line, on the offending line)::

    risky_call()  # repro: ignore[<rule-id>]: <why this is safe>

The justification after the second colon is **mandatory**: an
unexplained suppression is itself a finding (``bare-suppression``), and
a suppression that matches nothing is reported as ``unused-suppression``
so stale escapes cannot accumulate.  ``ignore[*]`` suppresses every rule
on the line (same justification requirement).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*ignore\[(?P<rules>[a-z*][a-z0-9*,\- ]*)\]"
    r"(?::\s*(?P<why>.*))?"
)


@dataclass
class Suppression:
    """One parsed suppression comment."""

    line: int
    rules: Sequence[str]
    justification: str
    used: bool = field(default=False, compare=False)

    def matches(self, rule: str) -> bool:
        return "*" in self.rules or rule in self.rules


class SuppressionIndex:
    """All suppressions of one file, keyed by line."""

    def __init__(self, source: str) -> None:
        self._by_line: Dict[int, Suppression] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            m = _SUPPRESSION_RE.search(text)
            if m is None:
                continue
            rules = tuple(
                r.strip() for r in m.group("rules").split(",") if r.strip()
            )
            why = (m.group("why") or "").strip()
            self._by_line[lineno] = Suppression(lineno, rules, why)

    def lookup(self, line: int, rule: str) -> "Suppression | None":
        supp = self._by_line.get(line)
        if supp is not None and supp.matches(rule):
            supp.used = True
            return supp
        return None

    def all(self) -> List[Suppression]:
        return [self._by_line[k] for k in sorted(self._by_line)]

    def bare(self) -> List[Suppression]:
        """Suppressions missing the mandatory justification."""
        return [s for s in self.all() if not s.justification]

    def unused(self) -> List[Suppression]:
        return [s for s in self.all() if not s.used]
