"""Eraser-style dynamic lockset race detector (armed via ``REPRO_SANITIZE``).

The static ``guarded-by`` rule checks that annotated shared attributes
are *lexically* accessed under their declared lock.  This module checks
the same contract *dynamically*, the way Eraser (Savage et al., 1997)
does, and — critically — cross-checks the annotations themselves
against what actually happens at runtime, so annotation drift becomes a
hard failure instead of silently rotting documentation:

- every ``# guarded-by:``-declared lock on a registered instance is
  wrapped in a :class:`TrackedLock` proxy that maintains a per-thread
  held set;
- the instance's class is swapped for a generated recording subclass:
  attribute reads/writes update the Eraser state machine
  (Virgin → Exclusive(first thread) → Shared / Shared-Modified) with a
  per-attribute *candidate lockset* — the intersection of the locks
  held at every shared-phase access;
- an **annotated** attribute whose candidate set goes empty after a
  shared-phase write is a *race* (recorded immediately);
- at :func:`drain` time, an annotated attribute whose declared lock is
  not in its observed candidate set is a *stale annotation*, and an
  unannotated attribute that was consistently protected by one tracked
  lock under real concurrency is a *missing annotation* — both are
  findings, because a wrong annotation misleads both the static rule
  and the next maintainer.

Like :mod:`repro.analysis.sanitize` (whose ``REPRO_SANITIZE`` flag this
module shares), everything is **off by default**: the production
``__init__`` hooks call :func:`register`, which is a single flag check
when disarmed — no subclass generation, no proxies, no overhead.

Limits, by design: instrumentation is per-instance (registration-time
``__class__`` swap), ``__slots__`` classes are skipped, and findings in
forked shard children die with the child — the parent-side suites plus
the shard arming counter cover the fork path.
"""

from __future__ import annotations

import ast
import inspect
import re
import textwrap
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.analysis import sanitize
from repro.errors import SanitizerError

__all__ = [
    "register",
    "drain",
    "findings",
    "assert_clean",
    "reset",
    "TrackedLock",
    "LockFinding",
    "guarded_annotations",
]

_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*(?:self\.)?(\w+)")

#: Declarations documented as deliberately lock-free (atomic reads of a
#: bool/int, staleness acceptable) are exempt from the
#: missing-annotation drift check.  The marker is the comment wording
#: already used in the codebase, on the declaration or the line above.
_LOCK_FREE_RE = re.compile(r"lock-?free", re.IGNORECASE)

#: Attribute names never tracked: instrumentation internals and locks.
_INFRA_PREFIX = "_lockset"


@dataclass(frozen=True)
class LockFinding:
    """One dynamic race / annotation-drift observation."""

    kind: str  #: ``race`` | ``stale-annotation`` | ``missing-annotation``
    cls: str
    attr: str
    detail: str

    def render(self) -> str:
        return f"[{self.kind}] {self.cls}.{self.attr}: {self.detail}"


# ----------------------------------------------------------------------
# annotation parsing (runtime twin of the static rule's collector)
# ----------------------------------------------------------------------
_ANNOTATION_CACHE: Dict[type, Tuple[Dict[str, str], FrozenSet[str]]] = {}


def _parse_annotations(cls: type) -> Tuple[Dict[str, str], FrozenSet[str]]:
    """``(attr -> lock-attr, lock-free attrs)`` parsed from ``cls``.

    Both annotation styles are recognised: ``self._x = ...  # guarded-by:
    _lock`` inside a method and a dataclass-style class-level
    declaration.  Classes whose source is unavailable (REPL, exec) have
    no annotations.
    """
    cached = _ANNOTATION_CACHE.get(cls)
    if cached is not None:
        return cached
    out: Dict[str, str] = {}
    lock_free: Set[str] = set()
    for klass in reversed(cls.__mro__):
        if klass in (object,):
            continue
        try:
            source = textwrap.dedent(inspect.getsource(klass))
            tree = ast.parse(source)
        except (OSError, TypeError, SyntaxError, IndentationError):
            continue
        lines = source.splitlines()
        for node in ast.walk(tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            attr: Optional[str] = None
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attr = target.attr
                    break
                if isinstance(target, ast.Name):
                    attr = target.id
                    break
            if attr is None or not (1 <= node.lineno <= len(lines)):
                continue
            decl = lines[node.lineno - 1]
            above = lines[node.lineno - 2] if node.lineno >= 2 else ""
            m = _GUARDED_BY_RE.search(decl)
            if m is not None:
                out[attr] = m.group(1)
            elif _LOCK_FREE_RE.search(decl) or (
                above.lstrip().startswith("#") and _LOCK_FREE_RE.search(above)
            ):
                lock_free.add(attr)
    result = (out, frozenset(lock_free))
    _ANNOTATION_CACHE[cls] = result
    return result


def guarded_annotations(cls: type) -> Dict[str, str]:
    """``attr -> lock-attr`` from ``# guarded-by:`` comments on ``cls``."""
    return _parse_annotations(cls)[0]


# ----------------------------------------------------------------------
# tracked locks
# ----------------------------------------------------------------------
class TrackedLock:
    """Proxy over a real lock that maintains the per-thread held set."""

    def __init__(self, registry: "_Registry", inner: Any, name: str) -> None:
        self._lockset_registry = registry
        self._lockset_inner = inner
        self._lockset_name = name

    @property
    def name(self) -> str:
        return self._lockset_name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lockset_inner.acquire(blocking, timeout)
        if acquired:
            self._lockset_registry._push(self)
        return acquired

    def release(self) -> None:
        self._lockset_registry._pop(self)
        self._lockset_inner.release()

    def locked(self) -> bool:
        return bool(self._lockset_inner.locked())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()


# ----------------------------------------------------------------------
# per-attribute Eraser state
# ----------------------------------------------------------------------
@dataclass
class _AttrState:
    first_thread: int
    shared: bool = False
    modified_shared: bool = False
    #: None = universe (no shared-phase access yet).
    candidate: Optional[Set[TrackedLock]] = None
    raced: bool = False
    accesses: int = 0


@dataclass
class _InstanceState:
    cls_name: str
    #: attr -> declared lock attr name.
    declared: Dict[str, str]
    #: lock attr name -> proxy.
    locks: Dict[str, TrackedLock]
    #: attrs documented lock-free: exempt from missing-annotation drift.
    lock_free: FrozenSet[str] = frozenset()
    attrs: Dict[str, _AttrState] = field(default_factory=dict)


class _Registry:
    """Process-wide detector state (held sets, findings, instances)."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._states: List[_InstanceState] = []  # guarded-by: _lock
        self._races: List[LockFinding] = []  # guarded-by: _lock

    # -- held-set maintenance -----------------------------------------
    def _held(self) -> List[TrackedLock]:
        held = getattr(self._local, "held", None)
        if held is None:
            held = self._local.held = []
        return held

    def _push(self, lock: TrackedLock) -> None:
        self._held().append(lock)

    def _pop(self, lock: TrackedLock) -> None:
        held = self._held()
        # RLocks re-enter; remove the innermost matching acquisition.
        for i in range(len(held) - 1, -1, -1):
            if held[i] is lock:
                del held[i]
                return

    # -- the state machine --------------------------------------------
    def _access(self, state: _InstanceState, attr: str, is_write: bool) -> None:
        tid = threading.get_ident()
        held = frozenset(self._held())
        with self._lock:
            ast_ = state.attrs.get(attr)
            if ast_ is None:
                ast_ = state.attrs[attr] = _AttrState(first_thread=tid)
            ast_.accesses += 1
            if not ast_.shared:
                if tid == ast_.first_thread:
                    return  # Exclusive: single-thread init is exempt
                ast_.shared = True  # second thread: enter Shared
            if is_write:
                ast_.modified_shared = True
            cand: Set[TrackedLock] = (
                set(held)
                if ast_.candidate is None
                else ast_.candidate & held
            )
            ast_.candidate = cand
            if (
                ast_.modified_shared
                and not cand
                and not ast_.raced
                and attr in state.declared
            ):
                ast_.raced = True
                self._races.append(
                    LockFinding(
                        kind="race",
                        cls=state.cls_name,
                        attr=attr,
                        detail=(
                            f"shared-phase access with an empty lockset "
                            f"(declared guarded-by: "
                            f"{state.declared[attr]})"
                        ),
                    )
                )

    # -- registration --------------------------------------------------
    def track(self, state: _InstanceState) -> None:
        with self._lock:
            self._states.append(state)

    # -- reporting -----------------------------------------------------
    def drain(self) -> List[LockFinding]:
        """Races so far plus annotation-drift findings; clears state."""
        with self._lock:
            out = list(self._races)
            self._races.clear()
            states, self._states = self._states, []
        for state in states:
            for attr, ast_ in state.attrs.items():
                if not ast_.shared or ast_.candidate is None:
                    continue
                declared_lock = state.locks.get(state.declared.get(attr, ""))
                if attr in state.declared:
                    if ast_.raced:
                        continue  # already reported as a race
                    if declared_lock is not None and declared_lock not in ast_.candidate:
                        held_names = sorted(l.name for l in ast_.candidate)
                        out.append(
                            LockFinding(
                                kind="stale-annotation",
                                cls=state.cls_name,
                                attr=attr,
                                detail=(
                                    f"declared guarded-by "
                                    f"{state.declared[attr]} was never part "
                                    f"of the observed lockset "
                                    f"{held_names or '{}'} — fix the "
                                    "annotation or the locking"
                                ),
                            )
                        )
                elif (
                    ast_.modified_shared
                    and ast_.candidate
                    and attr not in state.lock_free
                ):
                    names = sorted(l.name for l in ast_.candidate)
                    out.append(
                        LockFinding(
                            kind="missing-annotation",
                            cls=state.cls_name,
                            attr=attr,
                            detail=(
                                f"consistently protected by {names} under "
                                "concurrency but carries no # guarded-by: "
                                "annotation — declare it"
                            ),
                        )
                    )
        return out

    def findings(self) -> List[LockFinding]:
        """Peek at race findings recorded so far (no drift, no clear)."""
        with self._lock:
            return list(self._races)

    def reset(self) -> None:
        with self._lock:
            self._races.clear()
            self._states.clear()
        self._local = threading.local()


_REGISTRY = _Registry()

# ----------------------------------------------------------------------
# instrumentation
# ----------------------------------------------------------------------
_SUBCLASS_CACHE: Dict[type, type] = {}


def _is_lock_like(value: Any) -> bool:
    """Duck-typed lock check: has ``acquire``/``release``, isn't tracked."""
    if isinstance(value, TrackedLock):
        return False
    return callable(getattr(value, "acquire", None)) and callable(
        getattr(value, "release", None)
    )


def _instrumented_subclass(cls: type) -> Optional[type]:
    cached = _SUBCLASS_CACHE.get(cls)
    if cached is not None:
        return cached
    if getattr(cls, "__slots__", None) is not None:
        return None  # no instance dict to record through

    class _Recorded(cls):  # type: ignore[misc, valid-type]
        def __getattribute__(self, name: str) -> Any:
            value = object.__getattribute__(self, name)
            if name.startswith("__") or name.startswith(_INFRA_PREFIX):
                return value
            d = object.__getattribute__(self, "__dict__")
            state = d.get("_lockset_state__")
            if (
                state is not None
                and name in d
                and name not in state.locks
                and not callable(value)
            ):
                _REGISTRY._access(state, name, is_write=False)
            return value

        def __setattr__(self, name: str, value: Any) -> None:
            object.__setattr__(self, name, value)
            if name.startswith("__") or name.startswith(_INFRA_PREFIX):
                return
            state = object.__getattribute__(self, "__dict__").get(
                "_lockset_state__"
            )
            if state is not None and name not in state.locks:
                _REGISTRY._access(state, name, is_write=True)

    _Recorded.__name__ = cls.__name__
    _Recorded.__qualname__ = cls.__qualname__
    _SUBCLASS_CACHE[cls] = _Recorded
    return _Recorded


def register(obj: Any, extra_locks: Optional[Mapping[str, Any]] = None) -> Any:
    """Instrument ``obj`` for lockset tracking (no-op when disarmed).

    Call at the end of ``__init__``/``__post_init__``, after the locks
    and the guarded attributes exist.  Locks named by the class's
    ``# guarded-by:`` annotations are wrapped in :class:`TrackedLock`
    proxies in place; ``extra_locks`` adds locks the annotations do not
    name.  Returns ``obj`` (for tail-call style).
    """
    if not sanitize.enabled():
        return obj
    cls = type(obj)
    declared, lock_free = _parse_annotations(cls)
    sub = _instrumented_subclass(cls)
    if sub is None:
        return obj
    locks: Dict[str, TrackedLock] = {}
    # Every lock-like attribute is proxied, not only the declared ones:
    # an attribute guarded by the *wrong* lock must yield a nonempty
    # candidate set so it surfaces as stale-annotation, not as a race.
    lock_names = set(declared.values()) | set(extra_locks or ())
    for attr_name, value in list(vars(obj).items()):
        if _is_lock_like(value):
            lock_names.add(attr_name)
    for lock_name in sorted(lock_names):
        inner = getattr(obj, lock_name, None)
        if inner is None and extra_locks:
            inner = extra_locks.get(lock_name)
        if inner is None:
            continue
        if isinstance(inner, TrackedLock):
            locks[lock_name] = inner
            continue
        if not _is_lock_like(inner):
            continue
        proxy = TrackedLock(
            _REGISTRY, inner, f"{cls.__name__}.{lock_name}"
        )
        object.__setattr__(obj, lock_name, proxy)
        locks[lock_name] = proxy
    state = _InstanceState(
        cls_name=cls.__name__,
        declared=dict(declared),
        locks=locks,
        lock_free=lock_free,
    )
    object.__setattr__(obj, "_lockset_state__", state)
    obj.__class__ = sub
    _REGISTRY.track(state)
    return obj


# ----------------------------------------------------------------------
# reporting API
# ----------------------------------------------------------------------
def drain() -> List[LockFinding]:
    """All findings (races + annotation drift); clears detector state."""
    return _REGISTRY.drain()


def findings() -> List[LockFinding]:
    """Race findings recorded so far, without draining."""
    return _REGISTRY.findings()


def reset() -> None:
    """Discard all detector state (test isolation)."""
    _REGISTRY.reset()


def assert_clean() -> None:
    """Raise :class:`SanitizerError` if any finding was recorded."""
    found = drain()
    if found:
        rendered = "\n  ".join(f.render() for f in found)
        raise SanitizerError(
            f"lockset detector recorded {len(found)} finding(s):\n  {rendered}"
        )
