"""Finding records and report rendering (human text + stable JSON)."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``suppressed`` findings were matched by a justified
    ``# repro: ignore[<rule>]`` comment: they do not fail the run but are
    counted in the report, so suppression debt stays visible.

    ``advisory`` findings are reported but do not fail the run either —
    the suppression-hygiene findings (``bare-suppression``,
    ``unused-suppression``) are advisory by default and promoted to
    blocking under ``--strict-suppressions``.
    """

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    justification: str = ""
    advisory: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
            "justification": self.justification,
            "advisory": self.advisory,
        }

    def render(self) -> str:
        tag = ""
        if self.suppressed:
            tag = " (suppressed)"
        elif self.advisory:
            tag = " (advisory)"
        return f"{self.path}:{self.line}: [{self.rule}]{tag} {self.message}"


@dataclass
class LintReport:
    """Aggregated outcome of one analysis run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: Tuple[str, ...] = ()

    @property
    def active(self) -> List[Finding]:
        """Findings that fail the run (not suppressed, not advisory)."""
        return [f for f in self.findings if not f.suppressed and not f.advisory]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def advisories(self) -> List[Finding]:
        """Reported-but-non-blocking findings (suppression hygiene)."""
        return [f for f in self.findings if f.advisory and not f.suppressed]

    def counts_by_rule(self) -> Dict[str, Dict[str, int]]:
        counts: Dict[str, Dict[str, int]] = {}
        for f in self.findings:
            row = counts.setdefault(
                f.rule, {"active": 0, "suppressed": 0, "advisory": 0}
            )
            if f.suppressed:
                row["suppressed"] += 1
            elif f.advisory:
                row["advisory"] += 1
            else:
                row["active"] += 1
        return counts

    @property
    def exit_code(self) -> int:
        """0 = clean (suppressions allowed), 1 = unsuppressed findings."""
        return 1 if self.active else 0

    def to_dict(self) -> Dict[str, object]:
        ordered = sorted(
            self.findings, key=lambda f: (f.path, f.line, f.rule, f.message)
        )
        return {
            "files_checked": self.files_checked,
            "rules_run": list(self.rules_run),
            "active_findings": len(self.active),
            "suppressed_findings": len(self.suppressed),
            "advisory_findings": len(self.advisories),
            "counts_by_rule": self.counts_by_rule(),
            "findings": [f.to_dict() for f in ordered],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self, verbose_suppressed: bool = False) -> str:
        lines: List[str] = []
        for f in sorted(
            self.active, key=lambda f: (f.path, f.line, f.rule, f.message)
        ):
            lines.append(f.render())
        for f in sorted(
            self.advisories, key=lambda f: (f.path, f.line, f.rule, f.message)
        ):
            lines.append(f.render())
        if verbose_suppressed:
            for f in sorted(
                self.suppressed, key=lambda f: (f.path, f.line, f.rule)
            ):
                lines.append(f.render())
        lines.append(self.summary_line())
        return "\n".join(lines)

    def summary_line(self) -> str:
        by_rule = self.counts_by_rule()
        suppressed_note = ""
        if self.suppressed:
            per_rule = ", ".join(
                f"{rule}={row['suppressed']}"
                for rule, row in sorted(by_rule.items())
                if row["suppressed"]
            )
            suppressed_note = f"; {len(self.suppressed)} suppressed ({per_rule})"
        advisory_note = ""
        if self.advisories:
            advisory_note = f"; {len(self.advisories)} advisory"
        return (
            f"repro.analysis: {len(self.active)} finding(s) in "
            f"{self.files_checked} file(s){suppressed_note}{advisory_note}"
        )


def report_from_dict(row: Mapping[str, object]) -> LintReport:
    """Rehydrate a report from its JSON form (for CI diff tooling)."""
    findings = [
        Finding(
            rule=str(f["rule"]),
            path=str(f["path"]),
            line=int(f["line"]),  # type: ignore[arg-type]
            message=str(f["message"]),
            suppressed=bool(f.get("suppressed", False)),
            justification=str(f.get("justification", "")),
            advisory=bool(f.get("advisory", False)),
        )
        for f in row.get("findings", [])  # type: ignore[union-attr]
    ]
    return LintReport(
        findings=findings,
        files_checked=int(row.get("files_checked", 0)),  # type: ignore[arg-type]
        rules_run=tuple(row.get("rules_run", ())),  # type: ignore[arg-type]
    )
