"""Rule registry: rules self-register under a stable kebab-case id."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Iterator, List

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import ModuleContext
    from repro.analysis.findings import Finding

#: A rule is a callable from one parsed module to its findings.
RuleFn = Callable[["ModuleContext"], Iterable["Finding"]]


@dataclass(frozen=True)
class Rule:
    """One registered checker."""

    id: str
    description: str
    check: RuleFn


class RuleRegistry:
    """Ordered, name-unique collection of rules."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def register(self, rule_id: str, description: str) -> Callable[[RuleFn], RuleFn]:
        """Decorator: ``@RULE_REGISTRY.register("my-rule", "...")``."""
        if not rule_id or rule_id != rule_id.lower():
            raise ConfigurationError(f"rule ids are kebab-case: {rule_id!r}")

        def deco(fn: RuleFn) -> RuleFn:
            if rule_id in self._rules:
                raise ConfigurationError(f"duplicate rule id {rule_id!r}")
            self._rules[rule_id] = Rule(rule_id, description, fn)
            return fn

        return deco

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise ConfigurationError(f"unknown rule {rule_id!r}") from None

    def select(self, rule_ids: "Iterable[str] | None" = None) -> List[Rule]:
        if rule_ids is None:
            return list(self._rules.values())
        return [self.get(r) for r in rule_ids]

    def ids(self) -> List[str]:
        return list(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)


#: The process-wide registry; importing :mod:`repro.analysis.rules`
#: populates it with the project rule set.
RULE_REGISTRY = RuleRegistry()
