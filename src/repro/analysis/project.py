"""The project model the rules are "aware" of.

Everything repo-specific lives here, in data:

- **Paper constants** — the guarded threshold family is read from the
  tree being linted: :func:`load_paper_constants` parses
  ``core/config.py`` (AST only, never imported) and maps each
  ``DefenseConfig`` numeric default to the concept tokens a re-hardcoded
  literal would sit next to (``Dt`` ↔ "distance", ``Mt`` ↔ "magnetic",
  ``βt`` ↔ "rate", …).  Physical constants with a canonical home in
  :mod:`repro.constants` (the 16 kHz audio rate, the pilot band edge)
  are appended the same way.
- **Layering DAG** — the architecture rank of every top-level package.
  A module may import (at module level) only packages of strictly lower
  rank or its own package; lazy imports (function-level or under
  ``TYPE_CHECKING``) are exempt because they cannot create import-time
  back-edges — this is exactly how ``obs`` reaches ``core``.
- **Guarded modules** — where the ``# guarded-by: <lock>`` annotation
  convention is enforced.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

#: Concept tokens per DefenseConfig field: a guarded literal is only an
#: error when it appears next to a name carrying one of its tokens, so a
#: coincidental 0.06 (a shimmer amount, a device spec) stays legal.
CONFIG_FIELD_TOKENS: Mapping[str, Tuple[str, ...]] = {
    "distance_threshold_m": ("distance", "dt"),
    "magnetic_threshold_ut": ("magnetic", "anomaly", "mt"),
    "rate_threshold_ut_s": ("rate", "beta"),
    "asv_threshold": ("asv", "llr"),
    "soundfield_threshold": ("soundfield",),
    "distance_margin": ("margin",),
    "magliveness_corr_threshold": ("magliveness", "corr"),
    "magliveness_min_fluctuation_ut": ("magliveness", "fluctuation"),
}

#: Same shape for module-level constants in ``repro/constants.py``.
PHYSICAL_CONSTANT_TOKENS: Mapping[str, Tuple[str, ...]] = {
    "DEFAULT_SAMPLE_RATE_HZ": ("sample_rate", "sample", "sr", "rate_hz", "target_rate"),
    "PILOT_BAND_MIN_HZ": ("pilot",),
}

#: Architecture rank of each top-level package under ``repro``; a
#: module-level import must point strictly downward.  ``obs`` sits below
#: ``core`` (core components carry tracers), so its own uses of core and
#: server types must stay lazy.  ``analysis`` sits at the bottom so that
#: DSP kernels and the pipeline can call the runtime sanitizers.
PACKAGE_RANKS: Mapping[str, int] = {
    "errors": 0,
    "constants": 0,
    "ckernel": 0,
    "analysis": 1,
    "physics": 1,
    "ml": 1,
    "dsp": 2,
    "voice": 3,
    "sensors": 3,
    "devices": 4,
    "world": 5,
    "asv": 6,
    "attacks": 6,
    "obs": 6,
    "core": 7,
    "server": 8,
    "experiments": 9,
}

#: Modules where every ``# guarded-by:`` annotated attribute must be
#: accessed under its declared lock (relative to the lint root).
GUARDED_MODULES: Tuple[str, ...] = (
    "server/gateway.py",
    "server/scheduler.py",
    "server/metrics.py",
    "obs/trace.py",
    "obs/drift.py",
    "core/pipeline.py",
)

#: Packages whose kernels must floor or ``np.errstate``-guard their logs
#: and divides (the numeric-discipline rule's scope).
NUMERIC_KERNEL_PACKAGES: FrozenSet[str] = frozenset({"core", "physics"})

#: Modules whose code runs inside forked shard processes.  Import-time
#: state they create — locks, RNGs, caches — is instantiated in the
#: *parent* and captured pre-fork into every child: a lock can be copied
#: mid-acquisition, an RNG stream duplicates across shards, and a cache
#: silently diverges per process.  The ``fork-safety`` rule bans such
#: state at module (and class-body) level in these files; mutable state
#: belongs in ``__init__``-built objects constructed after the fork.
FORK_SAFE_MODULES: Tuple[str, ...] = (
    "server/shard.py",
    "server/router.py",
)

#: Files allowed to carry the paper constants literally: the config
#: module that *defines* them and the constants module physical values
#: live in.
CONSTANT_HOME_FILES: Tuple[str, ...] = ("core/config.py", "constants.py")


# ----------------------------------------------------------------------
# determinism taint catalog (the taint-flow rule)
# ----------------------------------------------------------------------
#: Decision-path *sinks*: the functions that construct or score a
#: verification verdict.  A nondeterminism source whose value reaches
#: any of these (directly or through the call graph) breaks the
#: bitwise-equivalence invariant the serving tiers are gated on.
TAINT_SINKS: Mapping[str, Tuple[str, ...]] = {
    "core/pipeline.py": (
        "DefenseSystem.verify",
        "DefenseSystem.verify_cascade",
        "DefenseSystem.run_component",
        "DefenseSystem._dispatch_component",
    ),
    "core/cascade.py": ("pass_boundary", "CascadePlan.confident_reject"),
    "asv/scoring.py": (
        "llr_score",
        "llr_score_batch",
        "llr_score_multi",
        "zt_normalize",
    ),
    "server/gateway.py": (
        "Gateway._process",
        "Gateway._process_cascade",
        "Gateway._finalize",
        "_IdentityBatcher._run_batch",
        "ShardedGateway._fail_closed",
    ),
    "server/shard.py": ("ShardWorker.process", "ShardWorker._finish"),
}

#: Wall-clock / ambient-state reads (resolved external dotted names).
#: Any of these produces a value that differs run to run by definition.
WALLCLOCK_CALLS: FrozenSet[str] = frozenset({
    "time.time", "time.monotonic", "time.perf_counter",
    "time.time_ns", "time.monotonic_ns", "time.perf_counter_ns",
    "os.getenv", "os.environ.get",
    "uuid.uuid1", "uuid.uuid4",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
})

#: Unseeded RNG constructors (the global-rng rule already bans the
#: module-level numpy/random APIs; the taint engine additionally tracks
#: an unseeded Generator's values into the sinks).
RNG_CALLS: FrozenSet[str] = frozenset({
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "random.Random",
})

#: dtype names whose cast *narrows* float precision — the cast itself is
#: deterministic, but a narrowing on the decision path means the
#: reference (float64) pipeline and the serving lane quantize at
#: different points, which is exactly how bitwise divergence starts.
NARROWING_DTYPES: FrozenSet[str] = frozenset({"float32", "float16", "half"})

#: Call names that *absorb* telemetry values: a wall-clock read flowing
#: into one of these is latency accounting, not decision arithmetic.
TELEMETRY_CALL_NAMES: FrozenSet[str] = frozenset({
    "observe", "increment", "record", "emit", "annotate",
    "add_event", "set_gauge", "push_event", "record_event",
})

#: Modules whose whole job is telemetry: values passing through them
#: never feed a verdict, so their functions absorb taint entirely (and
#: generate none — a tracer *must* read the clock).
TELEMETRY_MODULE_PACKAGES: FrozenSet[str] = frozenset({"obs"})
TELEMETRY_MODULES: Tuple[str, ...] = (
    "server/metrics.py",
    "server/client.py",
)

#: Variable / parameter / keyword names that mark a value as telemetry:
#: assigning a clock read to ``t0`` or passing it as ``duration_s=`` is
#: the sanctioned latency-measurement idiom, not a decision input.
_TELEMETRY_NAME_RE = re.compile(
    r"(?:^t\d*$|^ts$|^now$|^t_|^at$"
    r"|latenc|duration|elapsed|deadline|timeout|uptime|wall"
    r"|timing|timestamp|started_at|submitted_at|created_at|age_s"
    r"|^rtt|waited|request_id|trace|span|exemplar)",
    re.IGNORECASE,
)

#: Order-fixing barriers: reducing through these makes the result
#: independent of the producing iteration order.
ORDER_BARRIER_CALLS: FrozenSet[str] = frozenset({"sorted", "fsum"})


def is_telemetry_name(name: str) -> bool:
    """Whether an identifier marks its value as telemetry-only."""
    return bool(_TELEMETRY_NAME_RE.search(name))


def is_telemetry_module(relpath: str) -> bool:
    rel = relpath.replace("\\", "/")
    return rel in TELEMETRY_MODULES or package_of(rel) in TELEMETRY_MODULE_PACKAGES


def sink_functions(relpath: str) -> Tuple[str, ...]:
    """Sink qualpaths declared for one module (empty for most)."""
    return TAINT_SINKS.get(relpath.replace("\\", "/"), ())


@dataclass(frozen=True)
class PaperConstant:
    """One guarded numeric value and the names that betray its meaning."""

    name: str
    value: float
    tokens: Tuple[str, ...]


def _numeric_default(node: ast.expr) -> Optional[float]:
    """The float value of a numeric literal default, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _numeric_default(node.operand)
        return None if inner is None else -inner
    return None


#: Fallback table used when the linted tree has no parseable
#: ``core/config.py`` (e.g. rule unit tests on fixture snippets).  Keep
#: in sync with :class:`repro.core.config.DefenseConfig`; the test suite
#: asserts the two agree.
FALLBACK_CONSTANTS: Tuple[PaperConstant, ...] = (
    PaperConstant("distance_threshold_m", 0.06, CONFIG_FIELD_TOKENS["distance_threshold_m"]),
    PaperConstant("magnetic_threshold_ut", 6.0, CONFIG_FIELD_TOKENS["magnetic_threshold_ut"]),
    PaperConstant("rate_threshold_ut_s", 60.0, CONFIG_FIELD_TOKENS["rate_threshold_ut_s"]),
    PaperConstant("asv_threshold", 0.5, CONFIG_FIELD_TOKENS["asv_threshold"]),
    PaperConstant("soundfield_threshold", -1.5, CONFIG_FIELD_TOKENS["soundfield_threshold"]),
    PaperConstant("distance_margin", 1.4, CONFIG_FIELD_TOKENS["distance_margin"]),
    PaperConstant("magliveness_corr_threshold", 0.35, CONFIG_FIELD_TOKENS["magliveness_corr_threshold"]),
    PaperConstant("magliveness_min_fluctuation_ut", 0.02, CONFIG_FIELD_TOKENS["magliveness_min_fluctuation_ut"]),
    PaperConstant("DEFAULT_SAMPLE_RATE_HZ", 16000.0, PHYSICAL_CONSTANT_TOKENS["DEFAULT_SAMPLE_RATE_HZ"]),
    PaperConstant("PILOT_BAND_MIN_HZ", 16000.0, PHYSICAL_CONSTANT_TOKENS["PILOT_BAND_MIN_HZ"]),
)


def _constants_from_config(path: Path) -> List[PaperConstant]:
    """DefenseConfig numeric defaults, by AST (the tree is never run)."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    out: List[PaperConstant] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef) and node.name == "DefenseConfig"):
            continue
        for stmt in node.body:
            if not (isinstance(stmt, ast.AnnAssign) and stmt.value is not None):
                continue
            if not isinstance(stmt.target, ast.Name):
                continue
            name = stmt.target.id
            tokens = CONFIG_FIELD_TOKENS.get(name)
            if tokens is None:
                continue
            value = _numeric_default(stmt.value)
            if value is not None:
                out.append(PaperConstant(name, value, tokens))
    return out


def _constants_from_constants_module(path: Path) -> List[PaperConstant]:
    tree = ast.parse(path.read_text(encoding="utf-8"))
    out: List[PaperConstant] = []
    for stmt in tree.body:
        target: Optional[str] = None
        value_node: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            if isinstance(stmt.targets[0], ast.Name):
                target = stmt.targets[0].id
                value_node = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                target = stmt.target.id
                value_node = stmt.value
        if target is None or value_node is None:
            continue
        tokens = PHYSICAL_CONSTANT_TOKENS.get(target)
        if tokens is None:
            continue
        value = _numeric_default(value_node)
        if value is not None:
            out.append(PaperConstant(target, value, tokens))
    return out


def load_paper_constants(root: Path) -> Tuple[PaperConstant, ...]:
    """The guarded-constant table for the tree rooted at ``root``.

    ``root`` is the lint root (typically ``src/repro``); when the tree
    carries no config module, the fallback table applies so fixture
    snippets still exercise the rule.
    """
    out: List[PaperConstant] = []
    config = root / "core" / "config.py"
    if config.is_file():
        out.extend(_constants_from_config(config))
    constants = root / "constants.py"
    if constants.is_file():
        out.extend(_constants_from_constants_module(constants))
    if not out:
        return FALLBACK_CONSTANTS
    # Physical constants may predate their canonical home; make sure the
    # sample-rate family is always guarded.
    have = {c.name for c in out}
    out.extend(c for c in FALLBACK_CONSTANTS if c.name not in have)
    return tuple(out)


def package_of(relpath: str) -> str:
    """Top-level package of a path relative to the lint root."""
    parts = relpath.replace("\\", "/").split("/")
    name = parts[0]
    if name.endswith(".py"):
        name = name[: -len(".py")]
    return name


def rank_of(package: str) -> Optional[int]:
    return PACKAGE_RANKS.get(package)


def is_constant_home(relpath: str) -> bool:
    return relpath.replace("\\", "/") in CONSTANT_HOME_FILES


def is_guarded_module(relpath: str) -> bool:
    return relpath.replace("\\", "/") in GUARDED_MODULES


def is_fork_safe_module(relpath: str) -> bool:
    return relpath.replace("\\", "/") in FORK_SAFE_MODULES


def in_numeric_kernel_scope(relpath: str) -> bool:
    return package_of(relpath) in NUMERIC_KERNEL_PACKAGES
