"""Command-line front end: ``python -m repro.analysis [paths...]``.

Exit codes are stable for CI: **0** — clean tree (justified suppressions
allowed), **1** — at least one unsuppressed finding, **2** — usage or
internal error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.engine import run_analysis
from repro.analysis.findings import LintReport
from repro.analysis.registry import RULE_REGISTRY
from repro.errors import ReproError

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-aware static analysis for the repro tree.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format on stdout",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the JSON report to FILE (any --format)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="ID[,ID...]",
        help="run only these rule ids (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in the human report",
    )
    parser.add_argument(
        "--strict-suppressions",
        action="store_true",
        help=(
            "treat bare/unused suppressions as blocking findings "
            "instead of advisories (the CI setting)"
        ),
    )
    return parser


def _merge(reports: Sequence[LintReport]) -> LintReport:
    merged = LintReport(rules_run=reports[0].rules_run if reports else ())
    for rep in reports:
        merged.findings.extend(rep.findings)
        merged.files_checked += rep.files_checked
    return merged


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        import repro.analysis.rules  # noqa: F401  (register the rule set)

        for rule in RULE_REGISTRY:
            print(f"{rule.id:<18s} {rule.description}")
        return EXIT_CLEAN

    rule_ids: Optional[List[str]] = None
    if args.rules is not None:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]

    try:
        reports = [
            run_analysis(
                Path(p), rule_ids, strict_suppressions=args.strict_suppressions
            )
            for p in args.paths
        ]
    except ReproError as exc:
        print(f"repro.analysis: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    report = _merge(reports)

    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render(verbose_suppressed=args.show_suppressed))
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(report.to_json() + "\n", encoding="utf-8")
    return EXIT_FINDINGS if report.active else EXIT_CLEAN
