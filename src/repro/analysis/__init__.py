"""Project-aware static analysis and runtime sanitizers.

Two halves share this package:

- **Static side** — an AST lint framework (:mod:`repro.analysis.engine`)
  carrying the project rules that keep the reproduction trustworthy:
  paper constants flow from :mod:`repro.core.config`, shared serving
  state is touched only under its declared lock (the ``guarded-by``
  convention), DSP stays deterministic (no global RNG) and NaN-safe
  (no global ``np.seterr``; floors or ``np.errstate`` around logs and
  divides), and the package DAG has no back-edges.  Run it with::

      python -m repro.analysis src/repro

- **Runtime side** — :mod:`repro.analysis.sanitize`: opt-in NaN/Inf
  guards over DSP kernel outputs and decision frames, plus the
  lock-order assertion harness the gateway tests use.  Disabled, the
  guards cost one module-flag check.

This ``__init__`` stays import-light on purpose: production modules
import :mod:`repro.analysis.sanitize`, and pulling the whole lint
framework (argparse, rule tables) into the serving path for that would
be waste.  The lint API is re-exported lazily instead.
"""

from __future__ import annotations

import importlib
from typing import Any

__all__ = [
    "Finding",
    "LintReport",
    "RULE_REGISTRY",
    "run_analysis",
    "sanitize",
]


def __getattr__(name: str) -> Any:
    if name in ("Finding", "LintReport"):
        from repro.analysis import findings

        return getattr(findings, name)
    if name == "RULE_REGISTRY":
        from repro.analysis.registry import RULE_REGISTRY

        return RULE_REGISTRY
    if name == "run_analysis":
        from repro.analysis.engine import run_analysis

        return run_analysis
    if name == "sanitize":
        # importlib, not ``from repro.analysis import sanitize``: the
        # from-import re-enters this __getattr__ before the submodule
        # attribute exists and recurses.
        return importlib.import_module("repro.analysis.sanitize")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
