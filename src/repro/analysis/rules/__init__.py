"""The project rule set.

Importing this package registers every rule on
:data:`repro.analysis.registry.RULE_REGISTRY`:

================== ====================================================
``paper-constant``  threshold/sample-rate literals outside their home
``guarded-by``      annotated shared attribute touched without its lock
``lock-blocking``   blocking call while a lock is held
``fork-safety``     import-time lock/RNG/cache state in shard modules
``global-rng``      global/unseeded RNG inside the library
``global-seterr``   process-wide ``np.seterr`` mutation
``numeric-errstate`` unguarded ``np.log``/``np.divide`` in kernels
``layering``        module-level import against the architecture DAG
``taint-flow``      nondeterminism source reaching a decision sink
================== ====================================================
"""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401  (import-for-effect)
    constants,
    determinism,
    layering,
    numerics,
    taintflow,
    threading_rules,
)

__all__ = [
    "constants",
    "determinism",
    "layering",
    "numerics",
    "taintflow",
    "threading_rules",
]
