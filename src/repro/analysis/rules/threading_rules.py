"""Thread-safety rules: ``guarded-by``, ``lock-blocking``, ``fork-safety``.

**guarded-by** — the serving path documents which lock protects each
piece of shared state with an annotation on the attribute's defining
assignment::

    self._buckets: Dict[str, _Bucket] = {}  # guarded-by: _lock

Within the modules listed in
:data:`repro.analysis.project.GUARDED_MODULES`, every ``self.<attr>``
access to an annotated attribute must sit lexically inside
``with self.<lock>:`` for the declared lock.  Exemptions, by
convention: ``__init__``/``__post_init__`` (no concurrent readers yet)
and methods whose name ends in ``_locked`` (the caller holds the lock —
the suffix is the contract).  Nested ``def``/``lambda`` bodies do *not*
inherit the enclosing ``with``: a closure outlives the critical section
that created it.

**lock-blocking** — while any lock is held (a ``with`` over an
expression whose name contains ``lock``), calls that can block
indefinitely are errors: ``time.sleep``, zero-argument ``.join()`` /
``.wait()`` / ``.get()`` / ``.result()`` (no timeout).  A bounded wait
(``.join(timeout=...)``) is fine.

**fork-safety** — in the modules listed in
:data:`repro.analysis.project.FORK_SAFE_MODULES` (code that runs inside
forked shard workers), no lock, RNG, queue, or mutable cache may be
created at import time: such state is instantiated once in the parent
and captured pre-fork into every child, where a copied lock can be held
by a thread that no longer exists, a duplicated RNG stream breaks shard
independence, and a shared-looking cache silently diverges per process.
Flagged at module and class-body level: synchronisation-primitive and
queue constructors, RNG constructors/seeding (``default_rng``,
``RandomState``, ``random.Random``, ``random.seed``), memoising
decorators (``lru_cache``/``cache``), and empty mutable container
literals (a module-level ``{}`` is a cache waiting to happen).  Mutable
state belongs on instances built *after* the fork.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.project import is_fork_safe_module, is_guarded_module
from repro.analysis.registry import RULE_REGISTRY

_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*(?:self\.)?(\w+)")

#: Methods whose bodies are exempt from the guarded-by check.
_EXEMPT_METHODS = ("__init__", "__post_init__")


def _guarded_by_on_line(ctx: ModuleContext, lineno: int) -> Optional[str]:
    lines = ctx.source.splitlines()
    if 1 <= lineno <= len(lines):
        m = _GUARDED_BY_RE.search(lines[lineno - 1])
        if m is not None:
            return m.group(1)
    return None


def _self_attr(node: ast.AST) -> Optional[str]:
    """The ``attr`` of a ``self.<attr>`` expression, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _collect_guarded_attrs(
    ctx: ModuleContext, cls: ast.ClassDef
) -> Dict[str, str]:
    """attr name -> lock name, from annotated defining assignments.

    Both styles are recognised: ``self._x = ...`` inside a method and a
    dataclass-style class-level ``_x: T = field(...)`` declaration.
    """
    guarded: Dict[str, str] = {}
    for node in ast.walk(cls):
        lock: Optional[str] = None
        attr: Optional[str] = None
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                attr = _self_attr(target)
                if attr is None and isinstance(target, ast.Name):
                    # class-level dataclass field
                    parent = ctx.parent(node)
                    attr = target.id if parent is cls else None
                if attr is not None:
                    break
            if attr is not None:
                lock = _guarded_by_on_line(ctx, node.lineno)
        if attr is not None and lock is not None:
            guarded[attr] = lock
    return guarded


def _with_locks(node: ast.With, known_locks: FrozenSet[str]) -> FrozenSet[str]:
    """Lock names acquired by one ``with`` statement."""
    held: List[str] = []
    for item in node.items:
        expr = item.context_expr
        attr = _self_attr(expr)
        name = attr if attr is not None else (
            expr.id if isinstance(expr, ast.Name) else None
        )
        if name is not None and (name in known_locks or "lock" in name.lower()):
            held.append(name)
    return frozenset(held)


def _iter_method_findings(
    ctx: ModuleContext,
    cls: ast.ClassDef,
    fn: ast.FunctionDef,
    guarded: Dict[str, str],
    known_locks: FrozenSet[str],
) -> Iterator[Finding]:
    def walk(node: ast.AST, held: FrozenSet[str]) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            if node is not fn:
                # A closure runs later, outside this critical section.
                for child in ast.iter_child_nodes(node):
                    yield from walk(child, frozenset())
                return
        if isinstance(node, ast.With):
            held = held | _with_locks(node, known_locks)
        attr = _self_attr(node)
        if attr is not None and attr in guarded and guarded[attr] not in held:
            yield ctx.finding(
                "guarded-by",
                node,
                (
                    f"{cls.name}.{attr} is guarded by "
                    f"self.{guarded[attr]} but accessed outside it "
                    f"(in {fn.name}); hold the lock or move the access "
                    "into a *_locked helper"
                ),
            )
        for child in ast.iter_child_nodes(node):
            yield from walk(child, held)

    yield from walk(fn, frozenset())


@RULE_REGISTRY.register(
    "guarded-by",
    "annotated shared attribute accessed without its declared lock",
)
def check_guarded_by(ctx: ModuleContext) -> Iterable[Finding]:
    if not is_guarded_module(ctx.relpath):
        return
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        guarded = _collect_guarded_attrs(ctx, cls)
        if not guarded:
            continue
        known_locks = frozenset(guarded.values())
        for fn in cls.body:
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if fn.name in _EXEMPT_METHODS or fn.name.endswith("_locked"):
                continue
            yield from _iter_method_findings(
                ctx, cls, fn, guarded, known_locks  # type: ignore[arg-type]
            )


# ----------------------------------------------------------------------
# lock-blocking
# ----------------------------------------------------------------------
def _has_timeout(call: ast.Call) -> bool:
    if call.args:
        return True  # positional timeout (join(5.0), wait(0.1))
    return any(kw.arg in ("timeout", "timeout_s") for kw in call.keywords)


def _is_nonblocking_get(call: ast.Call) -> bool:
    if call.args:
        return True  # dict.get(key, ...) / get(block, timeout)
    for kw in call.keywords:
        if kw.arg == "timeout":
            return True
        if kw.arg == "block" and isinstance(kw.value, ast.Constant):
            return kw.value.value is False
    return False


def _blocking_reason(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute):
        recv = func.value
        if isinstance(recv, ast.Name) and recv.id == "time" and func.attr == "sleep":
            return "time.sleep() while a lock is held"
        if func.attr == "join" and not _has_timeout(call):
            return ".join() without a timeout while a lock is held"
        if func.attr == "wait" and not _has_timeout(call):
            return ".wait() without a timeout while a lock is held"
        if func.attr == "get" and not _is_nonblocking_get(call):
            return ".get() without a timeout while a lock is held"
        if func.attr == "result" and not _has_timeout(call):
            return ".result() without a timeout while a lock is held"
    return None


@RULE_REGISTRY.register(
    "lock-blocking",
    "indefinitely-blocking call inside a lock-protected region",
)
def check_lock_blocking(ctx: ModuleContext) -> Iterable[Finding]:
    def walk(node: ast.AST, held: bool) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A callable body runs when called, not where it is defined.
            for child in ast.iter_child_nodes(node):
                yield from walk(child, False)
            return
        if isinstance(node, ast.With) and _with_locks(node, frozenset()):
            held = True
        if held and isinstance(node, ast.Call):
            reason = _blocking_reason(node)
            if reason is not None:
                yield ctx.finding("lock-blocking", node, reason)
        for child in ast.iter_child_nodes(node):
            yield from walk(child, held)

    for top in ctx.tree.body:
        yield from walk(top, False)


# ----------------------------------------------------------------------
# fork-safety
# ----------------------------------------------------------------------
#: Constructor names whose import-time instantiation is a fork hazard.
_FORK_HOSTILE_CONSTRUCTORS: FrozenSet[str] = frozenset({
    "Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore",
    "Barrier", "Queue", "SimpleQueue", "LifoQueue", "PriorityQueue",
    "default_rng", "RandomState", "Random", "Generator",
    "OrderedDict", "defaultdict", "deque", "Counter",
})

#: Call names that seed or memoise at import time.
_FORK_HOSTILE_CALLS: FrozenSet[str] = frozenset({"seed", "lru_cache", "cache"})


def _call_name(node: ast.AST) -> Optional[str]:
    """Trailing name of a ``Call``'s callee (``threading.Lock`` → Lock)."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _fork_hazard(node: ast.expr) -> Optional[str]:
    """Why an import-time value expression is fork-hostile, else None."""
    name = _call_name(node)
    if name in _FORK_HOSTILE_CONSTRUCTORS:
        return f"{name}() instantiated at import time"
    if name in _FORK_HOSTILE_CALLS:
        return f"{name}() called at import time"
    if (
        name in ("dict", "list", "set")
        and isinstance(node, ast.Call)
        and not node.args
        and not node.keywords
    ):
        return f"empty mutable {name}() at import time"
    if isinstance(node, (ast.Dict, ast.List, ast.Set)) and not (
        node.keys if isinstance(node, ast.Dict) else node.elts
    ):
        literal = {ast.Dict: "{}", ast.List: "[]", ast.Set: "set()"}[type(node)]
        return f"empty mutable {literal} at import time"
    return None


@RULE_REGISTRY.register(
    "fork-safety",
    "import-time lock/RNG/cache state in a module forked into shards",
)
def check_fork_safety(ctx: ModuleContext) -> Iterable[Finding]:
    if not is_fork_safe_module(ctx.relpath):
        return
    # Module body plus class bodies: both execute at import time, in the
    # parent, before any shard is forked.
    scopes: List[ast.AST] = [ctx.tree]
    scopes.extend(n for n in ast.walk(ctx.tree) if isinstance(n, ast.ClassDef))
    for scope in scopes:
        body = scope.body  # type: ignore[attr-defined]
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for deco in stmt.decorator_list:
                    name = _call_name(deco) or (
                        deco.attr if isinstance(deco, ast.Attribute)
                        else deco.id if isinstance(deco, ast.Name) else None
                    )
                    if name in _FORK_HOSTILE_CALLS:
                        yield ctx.finding(
                            "fork-safety",
                            deco,
                            (
                                f"@{name} memoises in the parent process; "
                                "every forked shard inherits (then forks "
                                "away from) that cache — memoise on a "
                                "post-fork instance instead"
                            ),
                        )
                continue
            values: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                values = [stmt.value]
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                values = [stmt.value]
            elif isinstance(stmt, ast.Expr):
                values = [stmt.value]
            for value in values:
                for node in ast.walk(value):
                    if not isinstance(node, ast.expr):
                        continue
                    reason = _fork_hazard(node)
                    if reason is not None:
                        yield ctx.finding(
                            "fork-safety",
                            node,
                            (
                                f"{reason} in a module forked into shard "
                                "processes: the state is captured pre-fork "
                                "(a copied lock may be held by a thread "
                                "that does not exist in the child, an RNG "
                                "stream duplicates across shards) — build "
                                "it after the fork, in __init__"
                            ),
                        )
