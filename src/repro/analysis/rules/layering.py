"""``layering``: module-level imports must respect the architecture DAG.

The bitwise-equivalence guarantees of the serving path rest on a clean
dependency order — ``physics``/``sensors``/``world`` feed ``core``,
``core`` feeds ``server``, and the observability package sits *below*
``core`` (components carry tracers) and therefore reaches back up to
``core``/``server`` types only lazily.  A top-level import against the
ranks in :data:`repro.analysis.project.PACKAGE_RANKS` is a back-edge:
it either creates an import cycle outright or quietly inverts a layer
so the next refactor does.

Lazy imports — inside a function body or an ``if TYPE_CHECKING:``
block — are exempt: they cannot run at import time.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.project import package_of, rank_of
from repro.analysis.registry import RULE_REGISTRY


def _imported_repro_package(node: ast.AST) -> Optional[str]:
    """Top-level ``repro`` subpackage named by an import, else ``None``."""
    if isinstance(node, ast.ImportFrom):
        if node.level:  # relative import; resolved by the caller's package
            return None
        mod = node.module or ""
        parts = mod.split(".")
        if parts[0] == "repro" and len(parts) >= 2:
            return parts[1]
        if parts[0] == "repro":
            return None  # "from repro import x" — ambiguous, skip
    elif isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split(".")
            if parts[0] == "repro" and len(parts) >= 2:
                return parts[1]
    return None


@RULE_REGISTRY.register(
    "layering",
    "module-level import that points up (or sideways) in the package DAG",
)
def check_layering(ctx: ModuleContext) -> Iterable[Finding]:
    own_pkg = package_of(ctx.relpath)
    own_rank = rank_of(own_pkg)
    if own_rank is None:
        return  # outside the mapped tree (fixtures, scratch files)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        target = _imported_repro_package(node)
        if target is None or target == own_pkg:
            continue
        target_rank = rank_of(target)
        if target_rank is None:
            yield ctx.finding(
                "layering",
                node,
                f"import of unmapped package repro.{target}; add it to "
                "repro.analysis.project.PACKAGE_RANKS",
            )
            continue
        if target_rank < own_rank:
            continue
        if ctx.is_lazy(node):
            continue  # function-level / TYPE_CHECKING back-edges are legal
        yield ctx.finding(
            "layering",
            node,
            (
                f"repro.{own_pkg} (rank {own_rank}) imports repro.{target} "
                f"(rank {target_rank}) at module level — a back-edge in the "
                "architecture DAG; move the import into the function that "
                "needs it or under TYPE_CHECKING"
            ),
        )
