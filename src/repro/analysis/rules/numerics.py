"""Numeric-discipline rules: ``global-seterr`` and ``numeric-errstate``.

**global-seterr** — ``np.seterr(...)`` mutates process-wide float-error
handling and silently changes behaviour for every other caller in the
process; it is banned everywhere in the library.  The scoped
``with np.errstate(...):`` context is the sanctioned tool.

**numeric-errstate** — inside the decision-making kernels
(:data:`repro.analysis.project.NUMERIC_KERNEL_PACKAGES`, i.e. ``core``
and ``physics``), a call to ``np.log`` / ``np.log10`` / ``np.log2`` /
``np.divide`` / ``np.true_divide`` must be visibly guarded: either its
first argument is floored/clamped in place (``np.maximum(x, floor)``,
``np.clip``, ``np.abs``) or the call sits inside a
``with np.errstate(...):`` block that states the intended handling.  An
unguarded log of a silently-zero power spectrum is exactly how NaN
reaches a decision frame.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.project import in_numeric_kernel_scope
from repro.analysis.registry import RULE_REGISTRY

_GUARDED_CALLS = frozenset({"maximum", "clip", "abs", "fmax", "exp"})
_LOG_FNS = frozenset({"log", "log10", "log2", "log1p", "divide", "true_divide"})


def _np_attr(node: ast.AST) -> Optional[str]:
    """``attr`` of an ``np.<attr>``/``numpy.<attr>`` expression."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    ):
        return node.attr
    return None


@RULE_REGISTRY.register(
    "global-seterr",
    "process-wide np.seterr mutation; use a scoped np.errstate context",
)
def check_global_seterr(ctx: ModuleContext) -> Iterable[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and _np_attr(node.func) == "seterr":
            yield ctx.finding(
                "global-seterr",
                node,
                "np.seterr mutates process-global error handling; wrap the "
                "computation in 'with np.errstate(...):' instead",
            )


def _first_arg_guarded(call: ast.Call) -> bool:
    """True when the log/divide input is visibly floored or clamped."""
    if not call.args:
        return False
    arg = call.args[0]
    if isinstance(arg, ast.Call):
        attr = _np_attr(arg.func)
        if attr in _GUARDED_CALLS:
            return True
    return False


def _inside_errstate(ctx: ModuleContext, node: ast.AST) -> bool:
    for anc in ctx.ancestors(node):
        if isinstance(anc, ast.With):
            for item in anc.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call) and _np_attr(expr.func) == "errstate":
                    return True
    return False


@RULE_REGISTRY.register(
    "numeric-errstate",
    "unguarded np.log/np.divide in a decision kernel (core/, physics/)",
)
def check_numeric_errstate(ctx: ModuleContext) -> Iterable[Finding]:
    if not in_numeric_kernel_scope(ctx.relpath):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        attr = _np_attr(node.func)
        if attr not in _LOG_FNS:
            continue
        if _first_arg_guarded(node) or _inside_errstate(ctx, node):
            continue
        yield ctx.finding(
            "numeric-errstate",
            node,
            (
                f"np.{attr} without a visible floor (np.maximum/np.clip on "
                "its input) or an enclosing 'with np.errstate(...):' — a "
                "zero/negative input would push NaN/-inf into a decision"
            ),
        )
