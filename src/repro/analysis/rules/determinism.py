"""``global-rng``: DSP and evaluation must be replayable bit-for-bit.

Every stochastic quantity in the library flows from an explicitly
seeded ``numpy.random.Generator`` threaded through call signatures.
Three ways of breaking that are errors anywhere under ``src/repro``:

- the legacy **global numpy RNG** (``np.random.normal`` and friends,
  ``np.random.seed``) — hidden cross-module state, order-dependent;
- the stdlib ``random`` module's **module-level functions**
  (``random.random``, ``random.seed``, …) — same hidden state;
- **wall-clock / OS-entropy seeding**: ``np.random.default_rng()``
  with no arguments, ``random.Random()`` with no arguments, or any RNG
  seeded from ``time.time()``.

Constructing a ``Generator`` from an explicit seed
(``np.random.default_rng(seed)``) is the sanctioned idiom and passes.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import RULE_REGISTRY

#: np.random attributes that do NOT touch the global RNG.
_NP_RANDOM_OK = frozenset({"Generator", "default_rng", "SeedSequence", "BitGenerator", "PCG64", "Philox"})


def _attr_chain(node: ast.AST) -> Optional[str]:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _seeded_from_wall_clock(call: ast.Call) -> bool:
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Call):
                chain = _attr_chain(sub.func)
                if chain in ("time.time", "time.time_ns", "time.monotonic"):
                    return True
    return False


@RULE_REGISTRY.register(
    "global-rng",
    "global or wall-clock-seeded RNG; thread an explicit Generator instead",
)
def check_global_rng(ctx: ModuleContext) -> Iterable[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if chain is None:
            continue
        parts = chain.split(".")
        # np.random.<fn> / numpy.random.<fn> module functions.
        if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            fn = parts[2]
            if fn == "default_rng":
                if not node.args and not node.keywords:
                    yield ctx.finding(
                        "global-rng",
                        node,
                        "np.random.default_rng() without a seed draws from "
                        "OS entropy; pass an explicit seed or Generator",
                    )
                elif _seeded_from_wall_clock(node):
                    yield ctx.finding(
                        "global-rng", node, "RNG seeded from the wall clock"
                    )
            elif fn not in _NP_RANDOM_OK:
                yield ctx.finding(
                    "global-rng",
                    node,
                    f"np.random.{fn} uses the hidden global RNG; thread an "
                    "explicit numpy.random.Generator through the call",
                )
        # stdlib random module functions.
        elif len(parts) == 2 and parts[0] == "random":
            fn = parts[1]
            if fn == "Random":
                if not node.args and not node.keywords:
                    yield ctx.finding(
                        "global-rng",
                        node,
                        "random.Random() without a seed is wall-clock seeded",
                    )
                elif _seeded_from_wall_clock(node):
                    yield ctx.finding(
                        "global-rng", node, "RNG seeded from the wall clock"
                    )
            elif fn not in ("Random", "SystemRandom"):
                yield ctx.finding(
                    "global-rng",
                    node,
                    f"random.{fn} uses the hidden module-level RNG; use a "
                    "seeded numpy.random.Generator",
                )
        elif chain in ("np.random.default_rng", "numpy.random.default_rng"):
            pass  # covered above
