"""Interprocedural determinism taint analysis (``taint-flow``).

The serving tiers are gated on one invariant: verification decisions are
**bitwise identical** across execution modes (DESIGN.md §14).  This rule
proves the invariant's preconditions at the source level by tracking
*nondeterminism sources* through the project call graph into the
*decision sinks*:

sources
    wall-clock/ambient reads (``time.*``, ``os.environ``, ``uuid``),
    unseeded RNG constructors, float-narrowing dtype casts
    (``np.float32``, ``.astype("float16")``, ``dtype=np.half``), and
    order-sensitive float accumulation over unordered iterables
    (``sum(d.values())``, ``+=`` inside ``for x in set``).

sinks
    the verdict-constructing functions declared in
    :data:`repro.analysis.project.TAINT_SINKS` — the pipeline, the
    cascade boundary, the LLR scorers, and the gateway/shard verdict
    builders.

barriers
    ``sorted()`` / ``math.fsum`` fix the order (clear iteration-order
    taint); values assigned to telemetry-named variables (``t0``,
    ``duration_s``…), passed via telemetry-named parameters, or flowing
    into the obs/metrics layers are latency accounting, not decision
    arithmetic, and are absorbed.  Float narrowing has **no** barrier:
    a narrowing on the decision path is either removed or explicitly
    suppressed with a justification that it is mode-invariant.

The engine computes per-function return-taint summaries over the
:mod:`repro.analysis.callgraph` structure to a fixpoint (recursion is
just a back-edge), then replays the sink functions recording which
source sites reach a verdict.  Findings are attributed to the *source*
line, so one suppression at the source covers every sink it reaches.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    attr_chain,
    build_call_graph,
)
from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.project import (
    NARROWING_DTYPES,
    ORDER_BARRIER_CALLS,
    RNG_CALLS,
    TAINT_SINKS,
    TELEMETRY_CALL_NAMES,
    WALLCLOCK_CALLS,
    is_telemetry_module,
    is_telemetry_name,
)
from repro.analysis.registry import RULE_REGISTRY

#: Taint kinds.  ``iter-latent`` marks a loop variable drawn from an
#: unordered iterable; it only becomes a reportable ``iter-order`` taint
#: when it feeds an order-sensitive accumulation (``+=``).
KIND_WALLCLOCK = "wallclock"
KIND_RNG = "rng"
KIND_DTYPE = "dtype-narrow"
KIND_ITER = "iter-order"
KIND_ITER_LATENT = "iter-latent"

#: Constructors whose call *is* the verdict being built inside a sink.
_DECISION_CONSTRUCTORS = frozenset({
    "VerificationReport", "DecisionRecord", "ComponentResult", "Decision",
    "encode_decision",
})

_REMEDIATION = {
    KIND_WALLCLOCK: (
        "route it through telemetry (metrics/trace) or drop it from the "
        "decision inputs"
    ),
    KIND_RNG: "seed it from config so every mode draws the same stream",
    KIND_DTYPE: (
        "decision arithmetic is float64 end-to-end; keep the narrowing "
        "off the decision path or suppress with a mode-invariance "
        "justification"
    ),
    KIND_ITER: "fix the order first (sorted()) or reduce with math.fsum",
}


@dataclass(frozen=True)
class TaintTag:
    """One nondeterminism source site, carried through the dataflow."""

    kind: str
    relpath: str
    line: int
    detail: str


def _real(tags: Iterable[TaintTag]) -> Set[TaintTag]:
    return {t for t in tags if t.kind != KIND_ITER_LATENT}


def _drop_kinds(tags: Iterable[TaintTag], kinds: FrozenSet[str]) -> Set[TaintTag]:
    return {t for t in tags if t.kind not in kinds}


def _is_narrowing_dtype_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in NARROWING_DTYPES
    chain = attr_chain(node)
    return chain is not None and chain[-1] in NARROWING_DTYPES


def _unordered_iterable(node: ast.expr) -> Optional[str]:
    """A human label when ``node`` iterates without a defined order."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}()"
        if isinstance(func, ast.Attribute) and func.attr in (
            "values", "keys", "items"
        ):
            recv = attr_chain(func.value)
            if recv is not None and any(is_telemetry_name(p) for p in recv):
                return None  # latency maps are telemetry, not decisions
            recv_txt = ".".join(recv) if recv else "<expr>"
            return f"{recv_txt}.{func.attr}()"
    if isinstance(node, ast.GeneratorExp) and node.generators:
        return _unordered_iterable(node.generators[0].iter)
    return None


class _BodyAnalyzer:
    """One intraprocedural pass over a function body.

    Name-level, flow-insensitive-per-iteration: statements are executed
    twice so taint introduced late in a loop body reaches uses earlier
    in it.  ``self.*`` attribute state is not tracked across methods
    (documented approximation); nested ``def`` bodies are folded into
    the enclosing scope — closures share its names — with their returns
    bound to the function's local name.
    """

    def __init__(
        self,
        graph: CallGraph,
        info: FunctionInfo,
        summaries: Dict[str, FrozenSet[TaintTag]],
    ) -> None:
        self.graph = graph
        self.info = info
        self.mod = graph.module(info.relpath)
        self.summaries = summaries
        self.env: Dict[str, Set[TaintTag]] = {}
        self.ret: Set[TaintTag] = set()
        self.record = False
        #: (tag, context) pairs observed flowing into a verdict.
        self.sink_hits: List[Tuple[TaintTag, str]] = []
        self._ret_stack: List[Set[TaintTag]] = []

    def run(self, record: bool = False) -> FrozenSet[TaintTag]:
        self.record = record
        for name in self.info.param_names():
            self.env.setdefault(name, set())
        for _ in range(2):
            for stmt in self.info.node.body:
                self._exec(stmt)
        return frozenset(_real(self.ret))

    # -- statements ----------------------------------------------------
    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, taint)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taint = self._eval(stmt.value) | self._eval(stmt.target)
            # Latent order taint becomes real on accumulation: the
            # reduction result now depends on the iteration order.
            promoted = {
                TaintTag(KIND_ITER, t.relpath, t.line, t.detail)
                for t in taint
                if t.kind == KIND_ITER_LATENT
            }
            self._assign(stmt.target, taint | promoted)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taint = self._eval(stmt.value)
                target = self._ret_stack[-1] if self._ret_stack else self.ret
                target |= taint
                if self.record and not self._ret_stack:
                    for tag in _real(taint):
                        self.sink_hits.append((tag, "the returned verdict"))
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test)
            for sub in stmt.body + stmt.orelse:
                self._exec(sub)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self._eval(stmt.iter)
            label = _unordered_iterable(stmt.iter)
            if label is not None:
                taint = taint | {
                    TaintTag(
                        KIND_ITER_LATENT,
                        self.info.relpath,
                        stmt.iter.lineno,
                        f"for-loop over {label}",
                    )
                }
            self._assign(stmt.target, taint)
            for sub in stmt.body + stmt.orelse:
                self._exec(sub)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, taint)
            for sub in stmt.body:
                self._exec(sub)
        elif isinstance(stmt, ast.Try):
            for sub in stmt.body + stmt.orelse + stmt.finalbody:
                self._exec(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._exec(sub)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Fold the closure into this scope; bind its return taint to
            # its local name so `results = run_stage(x)` keeps flowing.
            for p in stmt.args.args + stmt.args.kwonlyargs:
                self.env.setdefault(p.arg, set())
            nested_ret: Set[TaintTag] = set()
            self._ret_stack.append(nested_ret)
            try:
                for sub in stmt.body:
                    self._exec(sub)
            finally:
                self._ret_stack.pop()
            self.env.setdefault(stmt.name, set()).update(nested_ret)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
        # Delete / Pass / Import / Global / Nonlocal / ClassDef: no flow.

    def _assign(self, target: ast.expr, taint: Set[TaintTag]) -> None:
        if isinstance(target, ast.Name):
            if is_telemetry_name(target.id):
                # The latency-measurement idiom: `t0 = perf_counter()`.
                taint = _drop_kinds(
                    taint, frozenset({KIND_WALLCLOCK, KIND_RNG, KIND_ITER})
                )
            self.env.setdefault(target.id, set()).update(taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, taint)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, taint)
        elif isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name):
                self._assign(base, taint)
        # Attribute targets (self.x = …) are not tracked across methods.

    # -- expressions ---------------------------------------------------
    def _eval(self, node: Optional[ast.expr]) -> Set[TaintTag]:
        if node is None:
            return set()
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Constant):
            return set()
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Lambda):
            return set()
        if isinstance(node, ast.Subscript):
            chain = attr_chain(node.value)
            if chain is not None and self.mod is not None:
                dotted = self.graph.external_dotted(self.mod, chain)
                if dotted == "os.environ" or chain[-2:] == ("os", "environ"):
                    return {
                        TaintTag(
                            KIND_WALLCLOCK,
                            self.info.relpath,
                            node.lineno,
                            "os.environ[...]",
                        )
                    }
            return self._eval(node.value) | self._eval(node.slice)
        if isinstance(node, ast.NamedExpr):
            taint = self._eval(node.value)
            self._assign(node.target, taint)
            return taint
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            taint: Set[TaintTag] = set()
            for gen in node.generators:
                iter_taint = self._eval(gen.iter)
                self._assign(gen.target, iter_taint)
                taint |= iter_taint
                for cond in gen.ifs:
                    taint |= self._eval(cond)
            if isinstance(node, ast.DictComp):
                taint |= self._eval(node.key) | self._eval(node.value)
            else:
                taint |= self._eval(node.elt)
            return taint
        # Generic expression: union over child expressions.
        taint = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                taint |= self._eval(child)
        return taint

    def _sources_of_call(self, call: ast.Call) -> Set[TaintTag]:
        tags: Set[TaintTag] = set()
        func = call.func
        chain = attr_chain(func)
        dotted = (
            self.graph.external_dotted(self.mod, chain)
            if chain is not None and self.mod is not None
            else None
        )
        here = self.info.relpath
        if dotted in WALLCLOCK_CALLS:
            tags.add(TaintTag(KIND_WALLCLOCK, here, call.lineno, dotted))
        elif chain is not None and chain[-2:] == ("environ", "get"):
            tags.add(TaintTag(KIND_WALLCLOCK, here, call.lineno, "os.environ.get"))
        if dotted in RNG_CALLS:
            seeded = bool(call.args) or any(
                kw.arg == "seed" and not (
                    isinstance(kw.value, ast.Constant) and kw.value.value is None
                )
                for kw in call.keywords
            )
            if not seeded:
                tags.add(TaintTag(KIND_RNG, here, call.lineno, f"{dotted}()"))
        # Float-narrowing casts.
        if (
            dotted is not None
            and dotted.startswith("numpy")
            and dotted.rsplit(".", 1)[-1] in NARROWING_DTYPES
        ):
            tags.add(TaintTag(KIND_DTYPE, here, call.lineno, f"{dotted} cast"))
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            if call.args and _is_narrowing_dtype_expr(call.args[0]):
                tags.add(
                    TaintTag(KIND_DTYPE, here, call.lineno, "narrowing .astype()")
                )
        for kw in call.keywords:
            if kw.arg == "dtype" and _is_narrowing_dtype_expr(kw.value):
                tags.add(
                    TaintTag(KIND_DTYPE, here, call.lineno, "narrowing dtype= arg")
                )
        # Order-sensitive reduction over an unordered iterable.
        if isinstance(func, ast.Name) and func.id == "sum" and len(call.args) >= 1:
            shadowed = self.mod is not None and (
                "sum" in self.mod.functions or "sum" in self.mod.imports
            )
            if not shadowed:
                label = _unordered_iterable(call.args[0])
                if label is not None:
                    tags.add(
                        TaintTag(KIND_ITER, here, call.lineno, f"sum() over {label}")
                    )
        return tags

    def _eval_call(self, call: ast.Call) -> Set[TaintTag]:
        func = call.func
        chain = attr_chain(func)
        sources = self._sources_of_call(call)

        # Order barrier: sorted(...) / math.fsum(...) fix the order.
        barrier_name = (
            func.id if isinstance(func, ast.Name)
            else chain[-1] if chain is not None
            else None
        )
        if barrier_name in ORDER_BARRIER_CALLS:
            taint: Set[TaintTag] = set()
            for arg in call.args:
                taint |= self._eval(arg)
            for kw in call.keywords:
                taint |= self._eval(kw.value)
            return _drop_kinds(taint, frozenset({KIND_ITER, KIND_ITER_LATENT}))

        resolved = (
            self.graph.resolve_call(self.info, call)
            if self.mod is not None
            else None
        )
        if resolved is not None:
            callee = self.graph.functions[resolved]
            if is_telemetry_module(callee.relpath):
                return set()  # metrics/trace absorb; they feed no verdict
            params = callee.param_names()
            if callee.cls is not None and params and params[0] in ("self", "cls"):
                params = params[1:]
            taint = set(self.summaries.get(resolved, ()))
            for idx, arg in enumerate(call.args):
                arg_taint = self._eval(arg)
                pname = params[idx] if idx < len(params) else ""
                if pname and is_telemetry_name(pname):
                    continue
                taint |= arg_taint
            for kw in call.keywords:
                kw_taint = self._eval(kw.value)
                if kw.arg is not None and is_telemetry_name(kw.arg):
                    continue
                taint |= kw_taint
        else:
            if (
                isinstance(func, ast.Attribute)
                and func.attr in TELEMETRY_CALL_NAMES
            ):
                for arg in call.args:
                    self._eval(arg)
                return set()
            taint = set()
            if isinstance(func, ast.Attribute):
                taint |= self._eval(func.value)  # receiver state flows out
            for arg in call.args:
                taint |= self._eval(arg)
            for kw in call.keywords:
                if kw.arg is not None and is_telemetry_name(kw.arg):
                    continue
                taint |= self._eval(kw.value)

        taint = taint | sources
        if self.record and chain is not None and chain[-1] in _DECISION_CONSTRUCTORS:
            for tag in _real(taint):
                self.sink_hits.append((tag, f"{chain[-1]}(...)"))
        return taint


class ProjectTaint:
    """Whole-project fixpoint + sink replay (cached per call graph)."""

    #: Fixpoint safety valve; taint sets grow monotonically over a
    #: finite tag universe, so this only bounds pathological trees.
    MAX_ROUNDS = 20

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.summaries: Dict[str, FrozenSet[TaintTag]] = {}
        #: relpath -> [(line, message)], deduplicated and sorted.
        self.findings: Dict[str, List[Tuple[int, str]]] = {}

    def analyze(self) -> None:
        for qname in self.graph.functions:
            self.summaries[qname] = frozenset()
        for _ in range(self.MAX_ROUNDS):
            changed = False
            for qname, info in self.graph.functions.items():
                if is_telemetry_module(info.relpath):
                    continue
                new = _BodyAnalyzer(self.graph, info, self.summaries).run()
                if new != self.summaries[qname]:
                    self.summaries[qname] = new
                    changed = True
            if not changed:
                break
        self._collect_sink_findings()

    def _collect_sink_findings(self) -> None:
        seen: Dict[Tuple[str, int, str], Tuple[str, str]] = {}
        for relpath, qualpaths in TAINT_SINKS.items():
            for qualpath in qualpaths:
                qname = f"{relpath}::{qualpath}"
                info = self.graph.functions.get(qname)
                if info is None:
                    continue
                analyzer = _BodyAnalyzer(self.graph, info, self.summaries)
                analyzer.run(record=True)
                for tag, via in analyzer.sink_hits:
                    key = (tag.relpath, tag.line, tag.kind)
                    if key not in seen:
                        seen[key] = (tag.detail, f"{qualpath} [{relpath}]")
        for (relpath, line, kind), (detail, sink) in seen.items():
            message = (
                f"nondeterminism source ({kind}: {detail}) reaches "
                f"decision sink {sink}; {_REMEDIATION[kind]}"
            )
            self.findings.setdefault(relpath, []).append((line, message))
        for rows in self.findings.values():
            rows.sort()


def _project_taint(graph: CallGraph) -> ProjectTaint:
    cached = getattr(graph, "_taint_results", None)
    if cached is None:
        cached = ProjectTaint(graph)
        cached.analyze()
        graph._taint_results = cached  # type: ignore[attr-defined]
    return cached


class _SourceLoc:
    """Shim node carrying only a line, for suppression resolution."""

    def __init__(self, lineno: int) -> None:
        self.lineno = lineno


@RULE_REGISTRY.register(
    "taint-flow",
    "nondeterminism source reaching a decision-path sink",
)
def check_taint_flow(ctx: ModuleContext) -> Iterable[Finding]:
    anchor: Path = ctx.path
    for _ in ctx.relpath.split("/"):
        anchor = anchor.parent
    graph = build_call_graph(anchor)
    taint = _project_taint(graph)
    for line, message in taint.findings.get(ctx.relpath, ()):
        yield ctx.finding("taint-flow", _SourceLoc(line), message)
