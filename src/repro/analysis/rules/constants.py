"""``paper-constant``: threshold literals must flow from their home.

The paper's operating point (``Dt`` = 0.06 m, ``Mt``, ``βt``, the ASV
LLR threshold, the 16 kHz audio rate) is configuration, not folklore: a
copy of one of those numbers in a comparison, assignment, keyword
argument or parameter default silently detaches from
``DefenseConfig``/``repro.constants`` and drifts when the config
changes.  A guarded value is only an error when it appears *next to a
name that carries its meaning* (``distance``, ``mt``, ``sample_rate``,
…), so coincidental equal literals — a 0.06 shimmer amount, a device
spec row — stay legal.  Legal homes: ``core/config.py`` and
``constants.py`` of the linted tree.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.project import PaperConstant, is_constant_home
from repro.analysis.registry import RULE_REGISTRY

_NAME_SPLIT = re.compile(r"[^a-z0-9]+")

#: Tokens this short must match a whole name part ("dt" must not match
#: inside "width"); longer tokens match as substrings of the full name.
_SHORT_TOKEN_LEN = 3


def _token_matches(token: str, name: str) -> bool:
    name = name.lower()
    if len(token) > _SHORT_TOKEN_LEN or "_" in token:
        return token in name
    return token in _NAME_SPLIT.split(name)


def _names_in(node: ast.AST) -> Iterator[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def _context_names(ctx: ModuleContext, node: ast.AST) -> List[str]:
    """Names that give the literal meaning: the other side of a compare,
    the assignment target, the keyword/parameter name."""
    names: List[str] = []
    prev: ast.AST = node
    for anc in ctx.ancestors(node):
        if isinstance(anc, ast.Compare):
            operands: List[ast.expr] = [anc.left, *anc.comparators]
            for op in operands:
                if op is not prev:
                    names.extend(_names_in(op))
        elif isinstance(anc, ast.keyword) and anc.arg is not None:
            names.append(anc.arg)
        elif isinstance(anc, ast.arguments):
            names.extend(_param_for_default(anc, prev))
        elif isinstance(anc, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                anc.targets
                if isinstance(anc, ast.Assign)
                else [anc.target]
            )
            for target in targets:
                names.extend(_names_in(target))
            break  # statement boundary
        elif isinstance(anc, ast.stmt):
            break  # any other statement ends the meaningful context
        prev = anc
    return names


def _param_for_default(args: ast.arguments, default: ast.AST) -> List[str]:
    """Parameter name whose default is ``default``, if any."""
    pos = args.posonlyargs + args.args
    for arg, node in zip(pos[len(pos) - len(args.defaults):], args.defaults):
        if node is default:
            return [arg.arg]
    for arg, node in zip(args.kwonlyargs, args.kw_defaults):
        if node is default:
            return [arg.arg]
    return []


def _literal_value(ctx: ModuleContext, node: ast.Constant) -> Tuple[float, ast.AST]:
    """The effective numeric value, folding a unary minus parent."""
    value = float(node.value)
    parent = ctx.parent(node)
    if isinstance(parent, ast.UnaryOp) and isinstance(parent.op, ast.USub):
        return -value, parent
    return value, node


def _matching_constants(
    constants: Sequence[PaperConstant], value: float
) -> List[PaperConstant]:
    return [c for c in constants if c.value == value]


@RULE_REGISTRY.register(
    "paper-constant",
    "paper threshold/sample-rate literal re-hardcoded outside its home",
)
def check_paper_constants(ctx: ModuleContext) -> Iterable[Finding]:
    if is_constant_home(ctx.relpath):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Constant):
            continue
        if isinstance(node.value, bool) or not isinstance(
            node.value, (int, float)
        ):
            continue
        value, anchor = _literal_value(ctx, node)
        candidates = _matching_constants(ctx.constants, value)
        if not candidates:
            continue
        names = _context_names(ctx, anchor)
        if not names:
            continue
        for constant in candidates:
            hits = [
                t
                for t in constant.tokens
                if any(_token_matches(t, n) for n in names)
            ]
            if hits:
                yield ctx.finding(
                    "paper-constant",
                    node,
                    (
                        f"literal {node.value!r} duplicates "
                        f"{constant.name} (context: "
                        f"{', '.join(sorted(set(names))[:4])}); import it "
                        "from core.config / repro.constants instead"
                    ),
                )
                break
