"""The analysis engine: repo walker, module contexts, rule runner."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding, LintReport
from repro.analysis.project import PaperConstant, load_paper_constants
from repro.analysis.registry import RULE_REGISTRY, Rule
from repro.analysis.suppressions import SuppressionIndex
from repro.errors import ConfigurationError

#: Directories never walked into.
_SKIP_DIRS = {"__pycache__", ".git", ".mypy_cache", ".pytest_cache"}


@dataclass
class ModuleContext:
    """One parsed module, as rules see it."""

    path: Path
    #: Path relative to the lint root, forward slashes ("server/gateway.py").
    relpath: str
    source: str
    tree: ast.Module
    suppressions: SuppressionIndex
    #: Guarded-constant table of the tree being linted.
    constants: Tuple[PaperConstant, ...]
    _parents: Dict[int, ast.AST] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        cur = self.parent(node)
        while cur is not None:
            yield cur
            cur = self.parent(cur)

    def enclosing_function(
        self, node: ast.AST
    ) -> "Optional[ast.FunctionDef | ast.AsyncFunctionDef]":
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def is_lazy(self, node: ast.AST) -> bool:
        """True for code that only runs on call (or never, for typing).

        Function bodies and ``if TYPE_CHECKING:`` blocks are "lazy":
        imports there cannot participate in import-time cycles.
        """
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return True
            if isinstance(anc, ast.If) and _is_type_checking_test(anc.test):
                return True
        return False

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Build a finding, resolving any suppression on the statement.

        The suppression comment may sit on any line of the flagged
        statement's header span — the first line, a decorator line, or a
        continuation line of a multi-line call — not just ``node.lineno``.
        """
        line = getattr(node, "lineno", 0)
        supp = None
        for cand in _suppression_lines(node):
            supp = self.suppressions.lookup(cand, rule)
            if supp is not None:
                break
        if supp is not None and supp.justification:
            return Finding(
                rule=rule,
                path=self.relpath,
                line=line,
                message=message,
                suppressed=True,
                justification=supp.justification,
            )
        # A bare (unjustified) suppression does not silence anything; the
        # engine additionally reports it as its own finding.
        return Finding(rule=rule, path=self.relpath, line=line, message=message)


def _suppression_lines(node: ast.AST) -> Iterable[int]:
    """Candidate lines a suppression for ``node`` may live on.

    ``node.lineno`` first (the historical behaviour), then the rest of
    the statement span: for ``def``/``class`` that is decorator lines
    plus the (possibly multi-line) header — *not* the body, so a
    suppression inside a function never silences a finding on the
    ``def`` itself; for other nodes it is ``lineno..end_lineno``.
    """
    lineno = getattr(node, "lineno", 0)
    if not lineno:
        return (0,)
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        start = min([d.lineno for d in node.decorator_list] + [lineno])
        body_start = node.body[0].lineno if node.body else lineno + 1
        end = max(lineno, body_start - 1)
    else:
        start = lineno
        end = getattr(node, "end_lineno", None) or lineno
    span = [lineno]
    span.extend(n for n in range(start, end + 1) if n != lineno)
    return span


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def discover_files(root: Path) -> List[Path]:
    """Every ``.py`` file under ``root`` (or ``root`` itself), sorted."""
    if root.is_file():
        return [root]
    files: List[Path] = []
    for path in sorted(root.rglob("*.py")):
        if any(part in _SKIP_DIRS or part.endswith(".egg-info") for part in path.parts):
            continue
        files.append(path)
    return files


def lint_anchor(root: Path) -> Path:
    """The directory project-relative paths are measured from.

    The topmost *package* directory containing ``root`` (walking up
    while ``__init__.py`` is present) — so linting a single file such as
    ``src/repro/server/scheduler.py`` still yields the project-relative
    ``server/scheduler.py`` that scoped rules match against.  For roots
    outside any package (rule-test fixture trees) it is the root itself.
    """
    anchor = root if root.is_dir() else root.parent
    cur = anchor
    while (cur / "__init__.py").is_file() and cur.parent != cur:
        anchor = cur
        cur = cur.parent
    return anchor


def load_module(
    path: Path, root: Path, constants: Tuple[PaperConstant, ...]
) -> ModuleContext:
    # utf-8-sig: tolerate a BOM (files written by Windows editors) —
    # a leading U+FEFF would otherwise be a SyntaxError from ast.parse.
    source = path.read_text(encoding="utf-8-sig")
    tree = ast.parse(source, filename=str(path))
    try:
        rel = str(path.relative_to(root)).replace("\\", "/")
    except ValueError:
        rel = path.name
    return ModuleContext(
        path=path,
        relpath=rel,
        source=source,
        tree=tree,
        suppressions=SuppressionIndex(source),
        constants=constants,
    )


def run_analysis(
    root: "Path | str",
    rule_ids: Optional[Sequence[str]] = None,
    strict_suppressions: bool = False,
) -> LintReport:
    """Run the (selected) rules over every module under ``root``.

    ``strict_suppressions`` promotes the suppression-hygiene findings
    (``bare-suppression``, ``unused-suppression``) from advisory to
    blocking — the CI setting, so stale escapes fail the build instead
    of accumulating as debt.
    """
    # Importing the rules package registers the project rule set.
    import repro.analysis.rules  # noqa: F401  (import-for-effect)

    root = Path(root)
    if not root.exists():
        raise ConfigurationError(f"lint root {str(root)!r} does not exist")
    rules: List[Rule] = RULE_REGISTRY.select(rule_ids)
    selected = frozenset(r.id for r in rules)
    running_all = rule_ids is None
    anchor = lint_anchor(root)
    constants = load_paper_constants(anchor)
    report = LintReport(rules_run=tuple(r.id for r in rules))
    for path in discover_files(root):
        try:
            ctx = load_module(path, anchor, constants)
        except SyntaxError as exc:
            report.findings.append(
                Finding(
                    rule="parse-error",
                    path=str(path),
                    line=exc.lineno or 0,
                    message=f"could not parse: {exc.msg}",
                )
            )
            report.files_checked += 1
            continue
        report.files_checked += 1
        for rule in rules:
            report.findings.extend(rule.check(ctx))
        for supp in ctx.suppressions.bare():
            report.findings.append(
                Finding(
                    rule="bare-suppression",
                    path=ctx.relpath,
                    line=supp.line,
                    message=(
                        "suppression without justification: write "
                        "'# repro: ignore[<rule>]: <why this is safe>'"
                    ),
                    advisory=not strict_suppressions,
                )
            )
        for supp in ctx.suppressions.unused():
            # Under a --rules subset, a suppression for an unselected
            # rule is legitimately unused in *this* run — only report it
            # when every rule it names actually ran ("*" counts as "all").
            if not running_all and not (
                set(supp.rules) - {"*"} and set(supp.rules) <= selected
            ):
                continue
            report.findings.append(
                Finding(
                    rule="unused-suppression",
                    path=ctx.relpath,
                    line=supp.line,
                    message=(
                        "suppression matches no finding "
                        f"(rules: {', '.join(supp.rules)}); remove it"
                    ),
                    advisory=not strict_suppressions,
                )
            )
    return report
