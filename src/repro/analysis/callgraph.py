"""Project-wide call graph: module index, qualified names, call resolution.

The interprocedural rules (``taint-flow``) need to follow a value from a
DSP kernel through the pipeline into a serving-layer verdict.  This
module builds the structure they walk:

- every function/method in the tree gets a stable qualified name,
  ``<relpath>::<qualpath>`` (``server/gateway.py::Gateway._process``);
- imports are resolved to project modules or recorded as *external*
  dotted names (``np`` → ``numpy``), so a call site can be classified
  precisely even through aliases;
- attribute types are recovered from class-level annotations
  (``distance: DistanceVerifier``) and ``self.attr = ClassName(...)``
  constructor assignments, which is what makes ``self.distance.verify()``
  resolvable;
- method lookup walks resolvable base classes, and the whole graph is
  cycle-safe: recursion shows up as a back-edge, never as infinite
  traversal (the engines on top run to a fixpoint).

The graph is *static and approximate* by design: dynamic dispatch
through registries or callables stored in containers resolves to
``None`` and the analyses treat such calls conservatively.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.engine import _SKIP_DIRS

#: Import-map entry kinds.
_KIND_MODULE = "mod"  # a project module (value: relpath)
_KIND_OBJECT = "obj"  # a project function/class (value: qname)
_KIND_EXTERNAL = "ext"  # anything else (value: external dotted name)


@dataclass(frozen=True)
class ImportTarget:
    kind: str
    value: str


@dataclass
class FunctionInfo:
    """One function or method in the project tree."""

    qname: str  #: ``relpath::qualpath``
    relpath: str
    qualpath: str  #: ``fn`` or ``Class.method``
    cls: Optional[str]
    node: "ast.FunctionDef | ast.AsyncFunctionDef"

    @property
    def name(self) -> str:
        return self.node.name

    def param_names(self) -> List[str]:
        a = self.node.args
        names = [p.arg for p in a.posonlyargs + a.args]
        if a.vararg:
            names.append(a.vararg.arg)
        names.extend(p.arg for p in a.kwonlyargs)
        if a.kwarg:
            names.append(a.kwarg.arg)
        return names


@dataclass
class ClassInfo:
    qname: str  #: ``relpath::ClassName``
    relpath: str
    name: str
    node: ast.ClassDef
    #: attr name -> class qname, from annotations / ctor assignments.
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: base-class qnames that resolved inside the project.
    bases: Tuple[str, ...] = ()


@dataclass
class ModuleInfo:
    relpath: str
    tree: ast.Module
    #: local name -> import target.
    imports: Dict[str, ImportTarget] = field(default_factory=dict)
    #: local class name -> class qname.
    classes: Dict[str, str] = field(default_factory=dict)
    #: local qualpath -> function qname.
    functions: Dict[str, str] = field(default_factory=dict)


def attr_chain(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; None for non-name chains."""
    parts: List[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return tuple(reversed(parts))
    return None


def _module_dotted_to_relpath(
    dotted: str, index: Mapping[str, "ModuleInfo"]
) -> Optional[str]:
    """Map ``repro.asv.scoring`` to ``asv/scoring.py`` if it exists."""
    parts = dotted.split(".")
    for start in (1, 0) if parts and parts[0] == "repro" else (0,):
        trimmed = parts[start:]
        if not trimmed:
            continue
        base = "/".join(trimmed)
        for cand in (base + ".py", base + "/__init__.py"):
            if cand in index:
                return cand
    return None


class CallGraph:
    """The resolved project structure (see module docstring)."""

    def __init__(self, anchor: Path) -> None:
        self.anchor = anchor
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    # -- construction --------------------------------------------------
    @classmethod
    def build(cls, anchor: Path, files: Sequence[Path]) -> "CallGraph":
        graph = cls(anchor)
        parsed: List[Tuple[str, ast.Module]] = []
        for path in files:
            try:
                source = path.read_text(encoding="utf-8-sig")
                tree = ast.parse(source, filename=str(path))
            except (SyntaxError, OSError, UnicodeDecodeError):
                continue
            try:
                rel = str(path.relative_to(anchor)).replace("\\", "/")
            except ValueError:
                rel = path.name
            parsed.append((rel, tree))
            graph.modules[rel] = ModuleInfo(relpath=rel, tree=tree)
        # Pass 1: definitions (classes, functions) — so imports in pass 2
        # can resolve objects regardless of file order.
        for rel, tree in parsed:
            graph._index_definitions(rel, tree)
        for rel, tree in parsed:
            graph._index_imports(rel, tree)
        for rel, tree in parsed:
            graph._index_attr_types(rel, tree)
        return graph

    def _index_definitions(self, rel: str, tree: ast.Module) -> None:
        mod = self.modules[rel]
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{rel}::{stmt.name}"
                self.functions[qname] = FunctionInfo(
                    qname=qname, relpath=rel, qualpath=stmt.name,
                    cls=None, node=stmt,
                )
                mod.functions[stmt.name] = qname
            elif isinstance(stmt, ast.ClassDef):
                cls_qname = f"{rel}::{stmt.name}"
                self.classes[cls_qname] = ClassInfo(
                    qname=cls_qname, relpath=rel, name=stmt.name, node=stmt
                )
                mod.classes[stmt.name] = cls_qname
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qualpath = f"{stmt.name}.{sub.name}"
                        qname = f"{rel}::{qualpath}"
                        self.functions[qname] = FunctionInfo(
                            qname=qname, relpath=rel, qualpath=qualpath,
                            cls=stmt.name, node=sub,
                        )
                        mod.functions[qualpath] = qname

    def _index_imports(self, rel: str, tree: ast.Module) -> None:
        mod = self.modules[rel]
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    dotted = alias.name if alias.asname else alias.name.split(".")[0]
                    target_rel = _module_dotted_to_relpath(dotted, self.modules)
                    if target_rel is not None:
                        mod.imports[local] = ImportTarget(_KIND_MODULE, target_rel)
                    else:
                        mod.imports[local] = ImportTarget(_KIND_EXTERNAL, dotted)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = self._resolve_relative(rel, node.level, node.module)
                else:
                    base = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    dotted = f"{base}.{alias.name}" if base else alias.name
                    target_rel = _module_dotted_to_relpath(dotted, self.modules)
                    if target_rel is not None:
                        mod.imports[local] = ImportTarget(_KIND_MODULE, target_rel)
                        continue
                    src_rel = _module_dotted_to_relpath(base, self.modules)
                    if src_rel is not None:
                        src = self.modules[src_rel]
                        if alias.name in src.classes:
                            mod.imports[local] = ImportTarget(
                                _KIND_OBJECT, src.classes[alias.name]
                            )
                            continue
                        if alias.name in src.functions:
                            mod.imports[local] = ImportTarget(
                                _KIND_OBJECT, src.functions[alias.name]
                            )
                            continue
                    mod.imports[local] = ImportTarget(_KIND_EXTERNAL, dotted)

    def _resolve_relative(self, rel: str, level: int, module: Optional[str]) -> str:
        parts = rel.split("/")[:-1]  # package dirs of this module
        if parts and parts[-1] == "__init__.py":
            parts = parts[:-1]
        parts = parts[: len(parts) - (level - 1)] if level > 1 else parts
        dotted = ".".join(parts)
        if module:
            dotted = f"{dotted}.{module}" if dotted else module
        return dotted

    def _index_attr_types(self, rel: str, tree: ast.Module) -> None:
        mod = self.modules[rel]
        for stmt in tree.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            info = self.classes[mod.classes[stmt.name]]
            info.bases = tuple(
                b for b in (self._resolve_class_expr(mod, base) for base in stmt.bases)
                if b is not None
            )
            for sub in stmt.body:
                if isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
                    target_cls = self._resolve_annotation(mod, sub.annotation)
                    if target_cls is not None:
                        info.attr_types[sub.target.id] = target_cls
            # self.attr = ClassName(...) in any method body.
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    if isinstance(node.value, ast.Call):
                        target_cls = self._resolve_class_expr(mod, node.value.func)
                        if target_cls is not None:
                            info.attr_types.setdefault(target.attr, target_cls)

    def _resolve_class_expr(
        self, mod: ModuleInfo, expr: ast.expr
    ) -> Optional[str]:
        """Class qname a name/attribute expression refers to, if any."""
        chain = attr_chain(expr)
        if chain is None:
            # Subscripted annotations: Optional[X], Dict[str, X] — skip.
            return None
        head = chain[0]
        if len(chain) == 1:
            if head in mod.classes:
                return mod.classes[head]
            tgt = mod.imports.get(head)
            if tgt is not None and tgt.kind == _KIND_OBJECT and tgt.value in self.classes:
                return tgt.value
            return None
        tgt = mod.imports.get(head)
        if tgt is not None and tgt.kind == _KIND_MODULE and len(chain) == 2:
            other = self.modules[tgt.value]
            return other.classes.get(chain[1])
        return None

    def _resolve_annotation(self, mod: ModuleInfo, ann: ast.expr) -> Optional[str]:
        # Unwrap Optional["X"] / string annotations.
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.Subscript):
            # Optional[X] → X; other containers are not single-typed.
            chain = attr_chain(ann.value)
            if chain and chain[-1] == "Optional":
                return self._resolve_annotation(mod, ann.slice)
            return None
        return self._resolve_class_expr(mod, ann)

    # -- queries -------------------------------------------------------
    def module(self, relpath: str) -> Optional[ModuleInfo]:
        return self.modules.get(relpath)

    def external_dotted(
        self, mod: ModuleInfo, chain: Tuple[str, ...]
    ) -> Optional[str]:
        """Full external dotted name of a chain (``np.float32`` →
        ``numpy.float32``), else None."""
        tgt = mod.imports.get(chain[0])
        if tgt is not None and tgt.kind == _KIND_EXTERNAL:
            return ".".join((tgt.value,) + chain[1:])
        return None

    def method_on(self, cls_qname: str, name: str) -> Optional[str]:
        """Method qname on a class, walking resolvable bases (cycle-safe)."""
        seen = set()
        stack = [cls_qname]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            info = self.classes.get(cur)
            if info is None:
                continue
            qname = f"{info.relpath}::{info.name}.{name}"
            if qname in self.functions:
                return qname
            stack.extend(info.bases)
        return None

    def resolve_call(
        self, caller: FunctionInfo, call: ast.Call
    ) -> Optional[str]:
        """Project function qname a call resolves to, else None."""
        mod = self.modules.get(caller.relpath)
        if mod is None:
            return None
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in mod.functions:
                return mod.functions[name]
            if name in mod.classes:
                return self.method_on(mod.classes[name], "__init__")
            tgt = mod.imports.get(name)
            if tgt is not None and tgt.kind == _KIND_OBJECT:
                if tgt.value in self.functions:
                    return tgt.value
                if tgt.value in self.classes:
                    return self.method_on(tgt.value, "__init__")
            return None
        chain = attr_chain(func)
        if chain is None:
            return None
        if chain[0] == "self" and caller.cls is not None:
            cls_qname = f"{caller.relpath}::{caller.cls}"
            if len(chain) == 2:
                return self.method_on(cls_qname, chain[1])
            if len(chain) == 3:
                info = self.classes.get(cls_qname)
                attr_cls = info.attr_types.get(chain[1]) if info else None
                if attr_cls is not None:
                    return self.method_on(attr_cls, chain[2])
            return None
        tgt = mod.imports.get(chain[0])
        if tgt is not None and tgt.kind == _KIND_MODULE:
            other = self.modules[tgt.value]
            if len(chain) == 2:
                if chain[1] in other.functions:
                    return other.functions[chain[1]]
                if chain[1] in other.classes:
                    return self.method_on(other.classes[chain[1]], "__init__")
            elif len(chain) == 3 and chain[1] in other.classes:
                return self.method_on(other.classes[chain[1]], chain[2])
        if tgt is not None and tgt.kind == _KIND_OBJECT and tgt.value in self.classes:
            if len(chain) == 2:
                return self.method_on(tgt.value, chain[1])
        return None

    def callees(self, qname: str) -> Tuple[str, ...]:
        """Resolved project callees of one function (deduplicated)."""
        info = self.functions.get(qname)
        if info is None:
            return ()
        out: List[str] = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                resolved = self.resolve_call(info, node)
                if resolved is not None and resolved not in out:
                    out.append(resolved)
        return tuple(out)


# ----------------------------------------------------------------------
# cached builder
# ----------------------------------------------------------------------
_CACHE: Dict[Tuple, CallGraph] = {}


def _tree_signature(anchor: Path, files: Sequence[Path]) -> Tuple:
    sig: List[Tuple[str, int, int]] = []
    for path in files:
        try:
            st = path.stat()
            sig.append((str(path), st.st_size, st.st_mtime_ns))
        except OSError:
            sig.append((str(path), -1, -1))
    return (str(anchor), tuple(sig))


def project_files(anchor: Path) -> List[Path]:
    files: List[Path] = []
    for path in sorted(anchor.rglob("*.py")):
        if any(part in _SKIP_DIRS or part.endswith(".egg-info") for part in path.parts):
            continue
        files.append(path)
    return files


def build_call_graph(anchor: Path) -> CallGraph:
    """Build (or fetch the cached) call graph for a project tree."""
    files = project_files(anchor)
    key = _tree_signature(anchor, files)
    graph = _CACHE.get(key)
    if graph is None:
        graph = CallGraph.build(anchor, files)
        if len(_CACHE) >= 8:  # tests churn tmp trees; keep memory bounded
            _CACHE.clear()
        _CACHE[key] = graph
    return graph
