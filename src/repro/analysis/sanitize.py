"""Runtime sanitizers: NaN/Inf guards and the lock-order harness.

The static rules keep non-finite values *unlikely*; these runtime guards
make them *loud* in the builds that opt in (tests, CI, canaries):

- :func:`check_array` / :func:`check_scalar` wrap DSP kernel outputs —
  any NaN/Inf raises :class:`~repro.errors.SanitizerError` naming the
  kernel;
- :func:`check_result` / :func:`check_results` wrap decision frames —
  NaN or ``+inf`` in a component score or its evidence mapping raises.
  ``-inf`` scores are exempt: they are the documented fail-closed error
  marker and must keep flowing to the decision layer;
- :class:`LockOrderGuard` wraps existing ``threading.Lock`` objects
  with ranked proxies that raise :class:`~repro.errors.LockOrderError`
  the moment two locks are ever taken out of rank order on one thread —
  the gateway tests run the serving path under it.

Sanitizing is **off by default** and the disabled path is one module
flag check per guard, so production serving pays (essentially) nothing.
Enable with the ``REPRO_SANITIZE=1`` environment variable or
:func:`enable` (scoped: :func:`activated`).
"""

from __future__ import annotations

import math
import os
import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Mapping

import numpy as np

from repro.errors import LockOrderError, SanitizerError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.decision import ComponentResult

__all__ = [
    "enabled",
    "enable",
    "disable",
    "activated",
    "check_array",
    "check_scalar",
    "check_result",
    "check_results",
    "LockOrderGuard",
    "OrderedLock",
]

#: The single fast-path flag every guard reads first.
_ACTIVE: bool = os.environ.get("REPRO_SANITIZE", "").strip().lower() not in (
    "",
    "0",
    "false",
    "off",
)


def enabled() -> bool:
    """Whether the sanitizers are currently active."""
    return _ACTIVE


def enable() -> None:
    global _ACTIVE
    _ACTIVE = True


def disable() -> None:
    global _ACTIVE
    _ACTIVE = False


@contextmanager
def activated() -> Iterator[None]:
    """Scoped enable (tests): restores the previous state on exit."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = True
    try:
        yield
    finally:
        _ACTIVE = previous


# ----------------------------------------------------------------------
# NaN/Inf guards
# ----------------------------------------------------------------------
def check_array(name: str, value: np.ndarray) -> np.ndarray:
    """Pass ``value`` through, raising on any non-finite element.

    Wrap kernel *outputs*: ``return check_array("mel.mfcc", out)``.
    """
    if not _ACTIVE:
        return value
    arr = np.asarray(value)
    if arr.dtype.kind in "fc" and not bool(np.isfinite(arr).all()):
        bad = int(arr.size - int(np.isfinite(arr).sum()))
        raise SanitizerError(
            f"sanitizer: kernel {name!r} produced {bad} non-finite "
            f"value(s) in an array of shape {arr.shape}"
        )
    return value


def check_scalar(name: str, value: float) -> float:
    """Pass a scalar through, raising when it is NaN or infinite."""
    if not _ACTIVE:
        return value
    if not math.isfinite(value):
        raise SanitizerError(
            f"sanitizer: kernel {name!r} produced non-finite value {value!r}"
        )
    return value


def check_result(result: "ComponentResult") -> "ComponentResult":
    """Guard one decision-frame component result.

    NaN and ``+inf`` never mean anything in a score; ``-inf`` is the
    documented fail-closed marker of a crashed component and passes.
    Evidence values must be finite — they are compared against the paper
    thresholds downstream and serialised into the audit log.
    """
    if not _ACTIVE:
        return result
    score = result.score
    if math.isnan(score) or score == math.inf:
        raise SanitizerError(
            f"sanitizer: component {result.name!r} scored {score!r}"
        )
    for key, value in result.evidence.items():
        if not math.isfinite(value):
            raise SanitizerError(
                f"sanitizer: component {result.name!r} evidence "
                f"{key}={value!r} is non-finite"
            )
    return result


def check_results(
    results: Mapping[str, "ComponentResult"],
) -> Mapping[str, "ComponentResult"]:
    """Guard a whole decision frame (the gateway calls this per request)."""
    if not _ACTIVE:
        return results
    for result in results.values():
        check_result(result)
    return results


# ----------------------------------------------------------------------
# Lock-order assertion harness
# ----------------------------------------------------------------------
class OrderedLock:
    """A ranked proxy over a real lock.

    Acquiring it while this thread already holds a lock of equal or
    higher rank raises :class:`LockOrderError` — the canonical deadlock
    precursor — *before* blocking on the underlying lock, so the test
    fails loudly instead of hanging.
    """

    def __init__(
        self, guard: "LockOrderGuard", lock: Any, name: str, rank: int
    ) -> None:
        self._guard = guard
        self._lock = lock
        self.name = name
        self.rank = rank

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._guard._check_acquire(self)
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._guard._push(self)
        return acquired

    def release(self) -> None:
        self._guard._pop(self)
        self._lock.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class LockOrderGuard:
    """Registry of ranked locks plus the per-thread held stack.

    Usage (gateway tests)::

        guard = LockOrderGuard()
        gw._lock = guard.wrap(gw._lock, "gateway.admission", rank=10)
        gw._batcher._lock = guard.wrap(gw._batcher._lock, "batcher", rank=20)
        ... drive traffic ...
        assert guard.max_depth() <= 1   # the two never nest today

    The guard itself is cheap enough to leave on for a whole test run;
    it is **not** wired into production construction.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        self._names: Dict[str, int] = {}
        self._stats_lock = threading.Lock()
        self._max_depth = 0  # guarded-by: _stats_lock
        self._acquisitions = 0  # guarded-by: _stats_lock

    def wrap(self, lock: Any, name: str, rank: int) -> OrderedLock:
        if name in self._names:
            raise LockOrderError(f"lock name {name!r} already registered")
        self._names[name] = rank
        return OrderedLock(self, lock, name, rank)

    def _held(self) -> List[OrderedLock]:
        held = getattr(self._local, "held", None)
        if held is None:
            held = self._local.held = []
        return held

    def _check_acquire(self, lock: OrderedLock) -> None:
        held = self._held()
        for other in held:
            if other.rank >= lock.rank:
                order = " -> ".join(f"{o.name}({o.rank})" for o in held)
                raise LockOrderError(
                    f"lock order violation: acquiring {lock.name!r} "
                    f"(rank {lock.rank}) while holding [{order}]"
                )

    def _push(self, lock: OrderedLock) -> None:
        held = self._held()
        held.append(lock)
        with self._stats_lock:
            self._acquisitions += 1
            if len(held) > self._max_depth:
                self._max_depth = len(held)

    def _pop(self, lock: OrderedLock) -> None:
        held = self._held()
        if not held or held[-1] is not lock:
            # Out-of-order release — tolerate (remove wherever it is) but
            # it usually indicates the proxy was bypassed.
            if lock in held:
                held.remove(lock)
            return
        held.pop()

    def max_depth(self) -> int:
        with self._stats_lock:
            return self._max_depth

    def acquisitions(self) -> int:
        with self._stats_lock:
            return self._acquisitions
