"""Device models: testbed smartphones and the evaluated loudspeakers.

- :mod:`repro.devices.smartphone` — the Table II testbed phones (Nexus 5,
  Nexus 4, Galaxy Nexus), each bundling the sensor suite of
  :mod:`repro.sensors`.
- :mod:`repro.devices.loudspeaker` — parametric loudspeaker model covering
  every class the paper evaluates (PC speakers, Bluetooth portables, floor
  speakers, laptop/phone internals, earphones) plus the unconventional
  electrostatic and piezoelectric speakers from §VII.
- :mod:`repro.devices.registry` — the concrete makes/models of Table II and
  Table IV.
"""

from repro.devices.loudspeaker import (
    Loudspeaker,
    LoudspeakerSpec,
    SpeakerCategory,
)
from repro.devices.smartphone import Smartphone, SmartphoneSpec
from repro.devices.registry import (
    TABLE_II_PHONES,
    TABLE_IV_LOUDSPEAKERS,
    UNCONVENTIONAL_LOUDSPEAKERS,
    get_phone,
    get_loudspeaker,
    loudspeakers_by_category,
)

__all__ = [
    "Loudspeaker",
    "LoudspeakerSpec",
    "SpeakerCategory",
    "Smartphone",
    "SmartphoneSpec",
    "TABLE_II_PHONES",
    "TABLE_IV_LOUDSPEAKERS",
    "UNCONVENTIONAL_LOUDSPEAKERS",
    "get_phone",
    "get_loudspeaker",
    "loudspeakers_by_category",
]
