"""Concrete device registry: Table II phones and Table IV loudspeakers.

The paper evaluates 25 loudspeakers "ranging from low-end to high-end,
including PC loudspeakers, mobile phone internal speakers, laptop internal
speakers, and earphones" (§VI) and three testbed phones (Table II).  The
makes and models below are copied from the paper's appendix; the physical
parameters (cone radius, magnet moment, passband) are set per device class
from the realistic ranges that place near-field strength in the paper's
observed 30–210 µT window.
"""

from __future__ import annotations

from typing import Dict, List

from repro.devices.loudspeaker import LoudspeakerSpec, SpeakerCategory
from repro.devices.smartphone import SmartphoneSpec
from repro.errors import ConfigurationError

#: Table II — testbed smartphones.
TABLE_II_PHONES: List[SmartphoneSpec] = [
    SmartphoneSpec(maker="Google (LG)", model="Nexus 5", seed=50),
    SmartphoneSpec(maker="Google (LG)", model="Nexus 4", seed=51, dual_microphone=True),
    SmartphoneSpec(maker="Samsung", model="Galaxy Nexus", seed=52),
]


def _spec(
    maker: str,
    model: str,
    category: SpeakerCategory,
    cone_cm: float,
    magnet: float,
    band: tuple[float, float],
    level: float = 80.0,
    induced: float = 0.0,
) -> LoudspeakerSpec:
    return LoudspeakerSpec(
        maker=maker,
        model=model,
        category=category,
        cone_radius_m=cone_cm / 100.0,
        magnet_moment_am2=magnet,
        band_hz=band,
        level_db_spl=level,
        induced_moment_am2=induced,
    )


#: Table IV — the 25 evaluated loudspeakers.
TABLE_IV_LOUDSPEAKERS: List[LoudspeakerSpec] = [
    _spec("Logitech", "LS21", SpeakerCategory.PC_SPEAKER, 3.5, 0.090, (60, 18000)),
    _spec("Klipsch", "KHO-7", SpeakerCategory.OUTDOOR, 6.0, 0.160, (55, 19000), 86),
    _spec("Insignia", "NS-OS112", SpeakerCategory.OUTDOOR, 5.5, 0.130, (65, 18000), 84),
    _spec("Sony", "SRSX2/BLK", SpeakerCategory.BLUETOOTH, 2.5, 0.045, (90, 17000)),
    _spec("Bose", "SoundLink Mini PINK", SpeakerCategory.BLUETOOTH, 2.8, 0.060, (70, 17500)),
    _spec("Bose", "151 SE", SpeakerCategory.OUTDOOR, 5.7, 0.140, (60, 18500), 85),
    _spec("Yamaha", "NS-AW190BL", SpeakerCategory.OUTDOOR, 6.3, 0.150, (55, 19500), 85),
    _spec("Pioneer", "SP-FS52", SpeakerCategory.FLOOR, 6.6, 0.190, (40, 20000), 88),
    _spec("HP", "D9J19AT", SpeakerCategory.PC_SPEAKER, 2.6, 0.050, (90, 16500)),
    _spec("GPX", "HT12B", SpeakerCategory.HOME_AUDIO, 5.0, 0.110, (60, 18000), 83),
    _spec("Coby", "CSMP67", SpeakerCategory.HOME_AUDIO, 4.5, 0.095, (70, 17500), 82),
    _spec("Acoustic Audio", "AA2101", SpeakerCategory.HOME_AUDIO, 5.2, 0.120, (50, 18500), 84),
    _spec("Apple", "Macbook Pro A1286 internal", SpeakerCategory.LAPTOP_INTERNAL, 1.4, 0.022, (150, 16000), 74),
    _spec("Apple", "Macbook Air A1466 internal", SpeakerCategory.LAPTOP_INTERNAL, 1.2, 0.018, (180, 15500), 72),
    _spec("Apple", "iMac MB952XX/A internal", SpeakerCategory.LAPTOP_INTERNAL, 2.2, 0.040, (90, 17000), 78),
    _spec("HP", "6510b internal", SpeakerCategory.LAPTOP_INTERNAL, 1.1, 0.015, (220, 14500), 70),
    _spec("Toshiba", "Satellite C55-B5101 internal", SpeakerCategory.LAPTOP_INTERNAL, 1.2, 0.017, (200, 15000), 71),
    _spec("Dell", "Inspiron I5558-2571BLK internal", SpeakerCategory.LAPTOP_INTERNAL, 1.3, 0.019, (190, 15000), 72),
    _spec("Apple", "iPhone 6 Plus A1524 internal", SpeakerCategory.PHONE_INTERNAL, 0.8, 0.012, (300, 16000), 70),
    _spec("Apple", "iPhone 5S A1533 internal", SpeakerCategory.PHONE_INTERNAL, 0.7, 0.010, (350, 15500), 69),
    _spec("Apple", "iPhone 4S A1387 internal", SpeakerCategory.PHONE_INTERNAL, 0.7, 0.009, (380, 15000), 68),
    _spec("LG", "Nexus 5 LG-D820 internal", SpeakerCategory.PHONE_INTERNAL, 0.7, 0.010, (350, 15500), 69),
    _spec("LG", "Nexus 4 LG-E960 internal", SpeakerCategory.PHONE_INTERNAL, 0.7, 0.009, (380, 15000), 68),
    _spec("Samsung", "Galaxy S EHS44 earphones", SpeakerCategory.EARPHONE, 0.5, 0.0022, (80, 19000), 66),
    _spec("Apple", "EarPods MD827LL/A", SpeakerCategory.EARPHONE, 0.5, 0.0025, (60, 19500), 66),
]

#: §VII — unconventional loudspeakers (no permanent magnet).
UNCONVENTIONAL_LOUDSPEAKERS: List[LoudspeakerSpec] = [
    _spec(
        "MartinLogan",
        "ElectroMotion ESL (stand-in)",
        SpeakerCategory.ELECTROSTATIC,
        12.0,
        0.0,
        (300, 20000),
        82,
        induced=0.012,
    ),
    _spec(
        "Murata",
        "Piezo tweeter (stand-in)",
        SpeakerCategory.PIEZOELECTRIC,
        1.5,
        0.0,
        (1500, 20000),
        70,
    ),
]

_ALL_SPEAKERS: Dict[str, LoudspeakerSpec] = {
    s.name: s for s in TABLE_IV_LOUDSPEAKERS + UNCONVENTIONAL_LOUDSPEAKERS
}
_ALL_PHONES: Dict[str, SmartphoneSpec] = {p.model: p for p in TABLE_II_PHONES}


def get_loudspeaker(name: str) -> LoudspeakerSpec:
    """Look up a loudspeaker spec by ``"Maker Model"`` name."""
    try:
        return _ALL_SPEAKERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown loudspeaker {name!r}; known: {sorted(_ALL_SPEAKERS)}"
        ) from None


def get_phone(model: str) -> SmartphoneSpec:
    """Look up a testbed phone by model name (Table II)."""
    try:
        return _ALL_PHONES[model]
    except KeyError:
        raise ConfigurationError(
            f"unknown phone {model!r}; known: {sorted(_ALL_PHONES)}"
        ) from None


def loudspeakers_by_category(category: SpeakerCategory) -> List[LoudspeakerSpec]:
    """All registered speakers of one category (conventional set only)."""
    return [s for s in TABLE_IV_LOUDSPEAKERS if s.category is category]
