"""Parametric loudspeaker model.

A conventional (dynamic) loudspeaker is, for this system's purposes, three
things (paper Fig. 2 and §III-B):

1. an *acoustic aperture* — the cone, modelled as a baffled circular piston
   whose radius drives the sound-field verification component;
2. a *permanent magnet* — a static dipole whose near field (30–210 µT) the
   magnetometer detects;
3. a *voice coil* — an audio-modulated dipole that makes the reading
   fluctuate at audio rate, feeding the changing-rate threshold ``βt``.

Unconventional speakers differ exactly where the paper says they do: an
electrostatic speaker (ESL) has no magnet but large metal grids (small
induced moment, big aperture); a piezoelectric speaker has neither magnet
nor coil.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Callable, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.physics.acoustics import CircularPistonSource
from repro.physics.magnetics import (
    FieldSource,
    MagneticDipole,
    MuMetalShield,
    ShieldedDipole,
    VoiceCoilDipole,
)


class SpeakerCategory(enum.Enum):
    """Classes of loudspeakers covered by the evaluation (Table IV + §VII)."""

    PC_SPEAKER = "pc_speaker"
    OUTDOOR = "outdoor"
    BLUETOOTH = "bluetooth"
    FLOOR = "floor"
    HOME_AUDIO = "home_audio"
    LAPTOP_INTERNAL = "laptop_internal"
    PHONE_INTERNAL = "phone_internal"
    EARPHONE = "earphone"
    ELECTROSTATIC = "electrostatic"
    PIEZOELECTRIC = "piezoelectric"


@dataclass(frozen=True)
class LoudspeakerSpec:
    """Physical parameters of one loudspeaker model.

    ``magnet_moment_am2`` — permanent-magnet dipole moment (A·m²).  Zero for
    magnet-free designs (ESL, piezo).
    ``coil_fraction`` — peak voice-coil moment as a fraction of the magnet
    moment (the coil is much weaker than the magnet).
    ``induced_moment_am2`` — soft-magnetic structure (frames, grids) that
    shows up on a magnetometer even without a magnet.
    ``band_hz`` — usable passband; replay attacks inherit this colouration.
    """

    maker: str
    model: str
    category: SpeakerCategory
    cone_radius_m: float
    magnet_moment_am2: float
    coil_fraction: float = 0.15
    induced_moment_am2: float = 0.0
    band_hz: tuple[float, float] = (80.0, 18000.0)
    level_db_spl: float = 80.0

    def __post_init__(self) -> None:
        if self.cone_radius_m <= 0:
            raise ConfigurationError("cone_radius_m must be positive")
        if self.magnet_moment_am2 < 0 or self.induced_moment_am2 < 0:
            raise ConfigurationError("dipole moments must be non-negative")
        if not 0.0 <= self.coil_fraction <= 1.0:
            raise ConfigurationError("coil_fraction must be in [0, 1]")
        lo, hi = self.band_hz
        if not 0 < lo < hi:
            raise ConfigurationError("band_hz must satisfy 0 < low < high")

    @property
    def name(self) -> str:
        return f"{self.maker} {self.model}"

    @property
    def is_conventional(self) -> bool:
        """True for magnet-and-coil (dynamic) designs."""
        return self.magnet_moment_am2 > 0.0


class Loudspeaker:
    """A placed loudspeaker: spec + pose + optional Mu-metal shield.

    ``position`` is the cone centre; ``axis`` the radiation direction.
    """

    def __init__(
        self,
        spec: LoudspeakerSpec,
        position: np.ndarray,
        axis: np.ndarray = (1.0, 0.0, 0.0),
        shield: Optional[MuMetalShield] = None,
    ):
        self.spec = spec
        self.position = np.asarray(position, dtype=float)
        if self.position.shape != (3,):
            raise ConfigurationError("position must be a 3-vector")
        axis_arr = np.asarray(axis, dtype=float)
        norm = np.linalg.norm(axis_arr)
        if norm == 0:
            raise ConfigurationError("axis must be non-zero")
        self.axis = axis_arr / norm
        self.shield = shield

    @property
    def kind(self) -> str:
        """Scene-source kind tag (see :class:`repro.world.scene.SceneSource`)."""
        return "loudspeaker"

    def shielded(self, shield: Optional[MuMetalShield] = None) -> "Loudspeaker":
        """A copy of this speaker inside a Mu-metal box."""
        return Loudspeaker(
            self.spec, self.position, self.axis, shield or MuMetalShield()
        )

    def acoustic_source(self) -> CircularPistonSource:
        """The cone as a baffled piston."""
        return CircularPistonSource(
            position=self.position,
            axis=self.axis,
            aperture_radius=self.spec.cone_radius_m,
            level_db_spl=self.spec.level_db_spl,
        )

    def magnetic_sources(
        self, drive: Optional[Callable[[float], float]] = None
    ) -> List[FieldSource]:
        """Every magnetic field source this speaker contributes.

        ``drive`` maps time to normalised drive level for the voice coil;
        pass the playback envelope so the coil field fluctuates with audio.
        """
        sources: List[FieldSource] = []
        if self.spec.magnet_moment_am2 > 0:
            magnet = MagneticDipole(
                self.position, self.axis * self.spec.magnet_moment_am2
            )
            if self.shield is not None:
                sources.append(ShieldedDipole(magnet, self.shield))
            else:
                sources.append(magnet)
            coil_peak = self.spec.magnet_moment_am2 * self.spec.coil_fraction
            if self.shield is not None:
                coil_peak /= self.shield.shielding_factor
            if coil_peak > 0 and drive is not None:
                sources.append(
                    VoiceCoilDipole(self.position, self.axis, coil_peak, drive)
                )
        if self.spec.induced_moment_am2 > 0:
            sources.append(
                MagneticDipole(
                    self.position, self.axis * self.spec.induced_moment_am2
                )
            )
        return sources

    def apply_band(self, waveform: np.ndarray, sample_rate: int) -> np.ndarray:
        """Band-limit a waveform to the speaker's passband.

        This is the colouration a replay attack inherits; the ASV front-end
        partially removes it with CMVN but the acoustic rendering keeps it.
        """
        from repro.dsp.filters import bandpass  # local import avoids a cycle

        lo, hi = self.spec.band_hz
        hi = min(hi, sample_rate / 2.0 * 0.98)
        if lo >= hi:
            raise ConfigurationError(
                f"speaker band [{lo}, {hi}] invalid at rate {sample_rate}"
            )
        return bandpass(waveform, lo, hi, sample_rate, order=2)

    def with_position(self, position: np.ndarray, axis: Optional[np.ndarray] = None) -> "Loudspeaker":
        """A copy of this speaker at a new pose (same shield state)."""
        return Loudspeaker(
            self.spec,
            position,
            self.axis if axis is None else axis,
            self.shield,
        )


def scaled_spec(spec: LoudspeakerSpec, magnet_scale: float) -> LoudspeakerSpec:
    """A spec with the magnet scaled — used by ablation benches."""
    if magnet_scale < 0:
        raise ConfigurationError("magnet_scale must be non-negative")
    return replace(spec, magnet_moment_am2=spec.magnet_moment_am2 * magnet_scale)
