"""Testbed smartphone model.

A :class:`Smartphone` bundles the sensor suite one physical device carries
(magnetometer, accelerometer, gyroscope, microphone) plus the parameters of
its built-in speaker used to emit the ranging pilot.  Per-device seeds give
each phone its own noise/bias realisation, mirroring unit-to-unit variation
across the Table II testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import PILOT_BAND_MIN_HZ
from repro.errors import ConfigurationError
from repro.sensors.imu import Accelerometer, Gyroscope
from repro.sensors.magnetometer import Magnetometer
from repro.sensors.microphone import Microphone


@dataclass(frozen=True)
class SmartphoneSpec:
    """Static description of a testbed phone (Table II row)."""

    maker: str
    model: str
    seed: int = 0
    audio_sample_rate: int = 48000
    #: Highest pilot frequency the built-in speaker can emit cleanly; the
    #: paper selects "the highest possible frequency" per device via the
    #: SoundWave-style calibration [18].
    max_pilot_hz: float = 21000.0
    dual_microphone: bool = False

    def __post_init__(self) -> None:
        if self.audio_sample_rate <= 0:
            raise ConfigurationError("audio_sample_rate must be positive")
        if not PILOT_BAND_MIN_HZ <= self.max_pilot_hz < self.audio_sample_rate / 2.0:
            raise ConfigurationError(
                "max_pilot_hz must be >= 16 kHz (inaudible) and below Nyquist"
            )

    @property
    def name(self) -> str:
        return f"{self.maker} {self.model}"


@dataclass
class Smartphone:
    """A concrete phone instance with its sensor suite."""

    spec: SmartphoneSpec
    magnetometer: Magnetometer = field(init=False)
    accelerometer: Accelerometer = field(init=False)
    gyroscope: Gyroscope = field(init=False)
    microphone: Microphone = field(init=False)

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.spec.seed)
        self.magnetometer = Magnetometer(
            hard_iron_ut=rng.normal(0.0, 1.5, 3),
            seed=self.spec.seed * 7 + 1,
        )
        self.accelerometer = Accelerometer(
            bias_ms2=rng.normal(0.0, 0.02, 3), seed=self.spec.seed * 7 + 2
        )
        self.gyroscope = Gyroscope(
            bias_rads=rng.normal(0.0, 0.001, 3), seed=self.spec.seed * 7 + 3
        )
        self.microphone = Microphone(
            sample_rate=self.spec.audio_sample_rate, seed=self.spec.seed * 7 + 4
        )

    def select_pilot_frequency(self) -> float:
        """The ranging-pilot frequency this phone uses.

        Per the paper, the highest frequency the speaker can emit (so it is
        maximally inaudible and has the shortest wavelength for ranging),
        discretised to a 500 Hz grid for a clean STFT bin.
        """
        return float(np.floor(self.spec.max_pilot_hz / 500.0) * 500.0)
