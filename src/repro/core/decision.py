"""Decision types: per-component results and the Table III categories."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple


class Decision(enum.Enum):
    """Final pipeline output."""

    ACCEPT = "accept"
    REJECT = "reject"


class DecisionCategory(enum.Enum):
    """The four outcome categories of Table III."""

    CORRECT_ACCEPTANCE = "correct_acceptance"
    FALSE_REJECTION = "false_rejection"
    FALSE_ACCEPTANCE = "false_acceptance"
    CORRECT_REJECTION = "correct_rejection"


def categorize(decision: Decision, genuine: bool) -> DecisionCategory:
    """Map a decision plus ground truth onto Table III."""
    if genuine:
        return (
            DecisionCategory.CORRECT_ACCEPTANCE
            if decision is Decision.ACCEPT
            else DecisionCategory.FALSE_REJECTION
        )
    return (
        DecisionCategory.FALSE_ACCEPTANCE
        if decision is Decision.ACCEPT
        else DecisionCategory.CORRECT_REJECTION
    )


@dataclass(frozen=True)
class ComponentResult:
    """Outcome of one verification component.

    ``score`` is continuous ("higher is more genuine-like" for every
    component, so benches can sweep thresholds); ``passed`` is the
    thresholded decision the cascade uses.  ``evidence`` is the
    structured decision provenance — the measured values next to the
    paper thresholds they were compared against (e.g. the estimated
    distance vs ``Dt``, the magnetometer peak vs ``Mt``) — consumed by
    :class:`repro.obs.provenance.DecisionRecord` and the audit log.
    """

    name: str
    passed: bool
    score: float
    detail: str = ""
    evidence: Mapping[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class VerificationReport:
    """Full pipeline output for one attempt.

    ``mode`` records which engine produced the report (``"strict"`` runs
    every enabled component; ``"cascade"`` may stop early).  ``skipped``
    lists components the cascade never ran, ``early_exit_stage`` the
    component whose confident rejection ended the run, and
    ``stage_latency_s`` per-component wall time when the engine timed the
    stages.  Strict reports leave the cascade fields at their defaults.
    """

    decision: Decision
    components: Dict[str, ComponentResult] = field(default_factory=dict)
    claimed_speaker: Optional[str] = None
    mode: str = "strict"
    skipped: Tuple[str, ...] = ()
    early_exit_stage: Optional[str] = None
    stage_latency_s: Mapping[str, float] = field(default_factory=dict)

    @property
    def accepted(self) -> bool:
        return self.decision is Decision.ACCEPT

    @property
    def total_latency_s(self) -> float:
        """Summed component wall time (0.0 when stages were not timed)."""
        return float(sum(self.stage_latency_s.values()))

    def component(self, name: str) -> ComponentResult:
        return self.components[name]

    def failed_components(self) -> list[str]:
        """Names of components that rejected, in evaluation order."""
        return [name for name, r in self.components.items() if not r.passed]
