"""Component 1: sound source distance verification.

Ensures the phone ended its motion close enough to the sound source for
the magnetometer check to be meaningful.  The continuous score is the
negated estimated distance (higher = closer = more genuine-compatible);
the pass decision compares the estimate against ``Dt`` with the
configured margin.  The result's evidence mapping records the estimate,
the circle-fit quality and the thresholds, so an audit log can replay
the comparison offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import DefenseConfig
from repro.core.decision import ComponentResult
from repro.core.trajectory_recovery import RecoveredTrajectory, recover_trajectory
from repro.errors import CaptureError
from repro.obs.trace import NULL_TRACER, Tracer
from repro.world.scene import SensorCapture


@dataclass
class DistanceVerifier:
    """Recovers the trajectory and thresholds the final distance."""

    config: DefenseConfig
    tracer: Tracer = field(default=NULL_TRACER, repr=False, compare=False)

    def estimate(self, capture: SensorCapture) -> RecoveredTrajectory:
        """Expose the full recovery for callers that need the trajectory."""
        with self.tracer.span("dsp.trajectory_recovery"):
            return recover_trajectory(capture)

    def verify(self, capture: SensorCapture) -> ComponentResult:
        """Pass iff the recovered final distance is within ``Dt``."""
        try:
            recovered = self.estimate(capture)
        except CaptureError as exc:
            return ComponentResult(
                name="distance",
                passed=False,
                score=float("-inf"),
                detail=f"trajectory recovery failed: {exc}",
            )
        limit = self.config.distance_threshold_m * self.config.distance_margin
        passed = recovered.end_distance <= limit
        return ComponentResult(
            name="distance",
            passed=passed,
            score=-recovered.end_distance,
            detail=(
                f"estimated {recovered.end_distance * 100:.1f} cm "
                f"(limit {limit * 100:.1f} cm)"
            ),
            evidence={
                "estimated_distance_m": recovered.end_distance,
                "Dt_m": self.config.distance_threshold_m,
                "distance_margin": self.config.distance_margin,
                "limit_m": limit,
                "circle_fit_residual_m": recovered.circle_residual,
                "arc_radius_m": recovered.arc_radius,
            },
        )
