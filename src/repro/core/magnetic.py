"""Component 3: loudspeaker detection via the magnetometer.

"We jointly use the absolute value and the changing rate of magnetic
readings to detect the speaker.  We set a magnetic strength threshold Mt
and a changing rate threshold βt." (paper §IV-B.3)

The detector works on the field *magnitude* |B|, which is invariant to
the phone's rotation during the sweep.  The ambient baseline is the
median magnitude of the capture's opening window (phone still far from
the source); the anomaly is the largest deviation from that baseline, and
the rate is the steepest magnitude slope.  A human source leaves both
near the noise floor; any conventional loudspeaker within a few
centimetres blows through both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DefenseConfig
from repro.core.decision import ComponentResult
from repro.dsp.filters import moving_average
from repro.errors import CaptureError
from repro.obs.trace import NULL_TRACER, Tracer
from repro.world.scene import SensorCapture


@dataclass(frozen=True)
class MagneticSignature:
    """Scalar features the detector thresholds."""

    baseline_ut: float
    peak_anomaly_ut: float
    max_rate_ut_s: float
    ambient_std_ut: float


def magnetic_signature(
    capture: SensorCapture, baseline_fraction: float = 0.25, smooth_samples: int = 5
) -> MagneticSignature:
    """Extract the detector's features from a capture."""
    series = capture.magnetometer
    if len(series) < 8:
        raise CaptureError("magnetometer stream too short")
    magnitude = moving_average(series.magnitudes(), smooth_samples)
    n_base = max(4, int(baseline_fraction * magnitude.size))
    baseline = float(np.median(magnitude[:n_base]))
    ambient_std = float(np.std(magnitude[:n_base]))
    anomaly = float(np.max(np.abs(magnitude - baseline)))
    rates = np.gradient(magnitude, series.times)
    max_rate = float(np.max(np.abs(rates)))
    return MagneticSignature(
        baseline_ut=baseline,
        peak_anomaly_ut=anomaly,
        max_rate_ut_s=max_rate,
        ambient_std_ut=ambient_std,
    )


@dataclass
class LoudspeakerDetector:
    """Joint (Mt, βt) thresholding of the magnetic signature.

    The component's continuous score follows the pipeline convention
    ("higher = more genuine-like"): it is the *negated* normalised
    detection strength, so a strongly magnetic source scores very low.
    """

    config: DefenseConfig
    tracer: Tracer = field(default=NULL_TRACER, repr=False, compare=False)

    def signature(self, capture: SensorCapture) -> MagneticSignature:
        with self.tracer.span("dsp.magnetic_signature"):
            return magnetic_signature(capture)

    def detection_strength(self, signature: MagneticSignature) -> float:
        """Max of the two threshold ratios; ≥ 1 means loudspeaker."""
        return max(
            signature.peak_anomaly_ut / self.config.magnetic_threshold_ut,
            signature.max_rate_ut_s / self.config.rate_threshold_ut_s,
        )

    def verify(self, capture: SensorCapture) -> ComponentResult:
        """Pass iff no loudspeaker-grade magnetic source is detected."""
        try:
            sig = self.signature(capture)
        except CaptureError as exc:
            return ComponentResult(
                name="magnetic",
                passed=False,
                score=float("-inf"),
                detail=str(exc),
            )
        strength = self.detection_strength(sig)
        return ComponentResult(
            name="magnetic",
            passed=strength < 1.0,
            score=-strength,
            detail=(
                f"anomaly {sig.peak_anomaly_ut:.1f} µT "
                f"(Mt={self.config.magnetic_threshold_ut:.1f}), "
                f"rate {sig.max_rate_ut_s:.0f} µT/s "
                f"(βt={self.config.rate_threshold_ut_s:.0f})"
            ),
            evidence={
                "peak_anomaly_ut": sig.peak_anomaly_ut,
                "Mt_ut": self.config.magnetic_threshold_ut,
                "max_rate_ut_s": sig.max_rate_ut_s,
                "beta_t_ut_s": self.config.rate_threshold_ut_s,
                "baseline_ut": sig.baseline_ut,
                "ambient_std_ut": sig.ambient_std_ut,
                "detection_strength": strength,
            },
        )
