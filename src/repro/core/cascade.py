"""Cost-ordered early-exit scheduling for the verification cascade.

The paper's pipeline is a cascade by construction — every component must
pass, so the first rejection decides the outcome.  Running the components
in *cost* order and stopping at the first **confident** rejection keeps
the final decision identical to the run-everything pipeline (ACCEPT
requires all stages to pass either way) while skipping the expensive
stages on the attacks the cheap ones already caught.

Two pieces of policy live here, shared by
:class:`~repro.core.pipeline.DefenseSystem` and the serving
:class:`~repro.server.gateway.Gateway`:

- a **per-stage cost estimate** (median verify latency, milliseconds,
  measured on the reference capture length) that orders the stages.  In
  this reproduction the magnetometer check is ~200x cheaper than any
  acoustic stage, and — unlike the paper's Spear deployment, where the
  GMM/ISV scoring dominated — the sound-field SVM is the *most*
  expensive stage because of its per-band filtering, so the measured
  order is magnetic → identity → distance → soundfield.  The cost table
  is data, not dogma: re-measure and override ``stage_policies`` when
  the balance shifts (e.g. a larger ASV model).
- a **confident-reject margin** per stage, in that stage's score units.
  A stage that rejects *with margin* ends the run; a marginal rejection
  keeps the remaining stages running so the report still carries every
  verdict (useful to calibration and audit), at unchanged final
  decision.  A stage that errors out scores ``-inf`` and is always a
  confident rejection.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import (
    Callable,
    ContextManager,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Tuple,
)

from repro.core.config import DefenseConfig
from repro.core.decision import ComponentResult
from repro.errors import ConfigurationError

#: Paper order (Fig. 4) — used for strict runs and to break cost ties.
#: ``magliveness`` (the optional MagLive-style fifth stage, off by
#: default) slots after the Fig. 4 stages so the paper's ordering is
#: untouched for the four-component system.
PAPER_ORDER: Tuple[str, ...] = (
    "distance",
    "soundfield",
    "magnetic",
    "identity",
    "magliveness",
)


@dataclass(frozen=True)
class StagePolicy:
    """Scheduling policy of one verification stage."""

    name: str
    #: Prior estimate of one verification's latency (ms).  Only the
    #: *ordering* of these numbers matters to the cascade.
    cost_ms: float
    #: How far below the pass boundary (score units) a rejection must
    #: land before downstream stages are skipped.
    reject_margin: float

    def __post_init__(self) -> None:
        if self.cost_ms <= 0:
            raise ConfigurationError("cost_ms must be positive")
        if self.reject_margin < 0:
            raise ConfigurationError("reject_margin must be non-negative")


#: Measured component medians on the reference world (2 s capture,
#: 48 kHz audio, 16-component GMM): magnetic 0.2 ms, identity 9 ms,
#: distance 36 ms, soundfield 52 ms.
DEFAULT_STAGE_POLICIES: Dict[str, StagePolicy] = {
    "magnetic": StagePolicy("magnetic", cost_ms=0.2, reject_margin=0.25),
    #: The liveness correlation low-passes the capture audio once, so it
    #: costs a little more than the pure-magnetometer stage but is still
    #: orders cheaper than any acoustic stage.
    "magliveness": StagePolicy("magliveness", cost_ms=0.9, reject_margin=0.25),
    "identity": StagePolicy("identity", cost_ms=12.0, reject_margin=1.0),
    "distance": StagePolicy("distance", cost_ms=36.0, reject_margin=0.02),
    "soundfield": StagePolicy("soundfield", cost_ms=52.0, reject_margin=1.5),
}


def pass_boundary(name: str, config: DefenseConfig) -> float:
    """The score at which stage ``name`` flips from reject to pass.

    Every component scores "higher = more genuine-like", so the boundary
    is a lower bound on passing scores; the confident-reject test is
    ``score <= boundary - reject_margin``.
    """
    if name == "distance":
        return -(config.distance_threshold_m * config.distance_margin)
    if name == "magnetic":
        return -1.0
    if name == "magliveness":
        # Same normalised-strength convention as the magnetic stage:
        # score = -strength, strength >= 1 rejects.
        return -1.0
    if name == "soundfield":
        return config.soundfield_threshold
    if name == "identity":
        return config.asv_threshold
    raise ConfigurationError(f"unknown cascade stage {name!r}")


@dataclass
class CascadePlan:
    """Stage ordering + early-exit policy over a set of stage policies."""

    policies: Mapping[str, StagePolicy] = field(
        default_factory=lambda: dict(DEFAULT_STAGE_POLICIES)
    )

    def policy(self, name: str) -> StagePolicy:
        try:
            return self.policies[name]
        except KeyError:
            raise ConfigurationError(
                f"no stage policy for component {name!r}"
            ) from None

    def order(self, enabled: Iterable[str]) -> Tuple[str, ...]:
        """Enabled stages cheapest-first (paper order breaks ties)."""
        enabled = tuple(enabled)
        return tuple(
            sorted(
                enabled,
                key=lambda n: (self.policy(n).cost_ms, PAPER_ORDER.index(n)),
            )
        )

    def confident_reject(
        self, result: ComponentResult, config: DefenseConfig
    ) -> bool:
        """True when ``result`` rejects decisively enough to end the run."""
        if result.passed:
            return False
        margin = self.policy(result.name).reject_margin
        return result.score <= pass_boundary(result.name, config) - margin

    def estimated_cost_ms(self, stages: Iterable[str]) -> float:
        """Summed cost estimate of ``stages`` (for logging/benches)."""
        return float(sum(self.policy(n).cost_ms for n in stages))


# ----------------------------------------------------------------------
# Stage execution hooks
# ----------------------------------------------------------------------
#
# A stage hook is a callable ``hook(stage_name) -> context manager``
# entered for the duration of one stage's verify call, wherever stages
# execute: the pipeline's ``run_component``, the gateway's detection
# jobs and identity micro-batcher, and the shard workers.  Observability
# layers (the statistical profiler's per-stage attribution lives here)
# register hooks at runtime; with no hooks registered ``stage_scope``
# returns a shared null context, so the serving hot path pays one list
# read and no allocation.

StageHook = Callable[[str], "ContextManager[None]"]

_STAGE_HOOKS: List[StageHook] = []
_NULL_SCOPE = contextlib.nullcontext()


def register_stage_hook(hook: StageHook) -> None:
    """Install ``hook`` for every subsequently executed cascade stage.

    Registration order is entry order.  Hooks registered *before* a
    :class:`~repro.server.gateway.ShardedGateway` forks are inherited by
    its shard workers; hooks registered after only see the parent.
    """
    if hook in _STAGE_HOOKS:
        return
    _STAGE_HOOKS.append(hook)


def unregister_stage_hook(hook: StageHook) -> None:
    """Remove a previously registered hook (missing hooks are ignored)."""
    try:
        _STAGE_HOOKS.remove(hook)
    except ValueError:
        pass


def stage_scope(name: str) -> "ContextManager[None]":
    """Context manager wrapping one execution of stage ``name``.

    Composes every registered hook (entered in registration order);
    with none registered this is a shared no-op context manager.
    """
    hooks = _STAGE_HOOKS
    if not hooks:
        return _NULL_SCOPE
    if len(hooks) == 1:
        return hooks[0](name)
    return _composite_scope(name, list(hooks))


@contextlib.contextmanager
def _composite_scope(name: str, hooks: List[StageHook]) -> Iterator[None]:
    with contextlib.ExitStack() as stack:
        for hook in hooks:
            stack.enter_context(hook(name))
        yield
