"""Component 5 (optional): MagLive-style magnetic-pattern liveness.

The paper's magnetometer component thresholds the *static* field (``Mt``)
and its changing rate (``βt``).  MagLive (arxiv 2404.01106) exploits a
stronger signature: a dynamic loudspeaker's voice coil is driven by the
playback signal, so the magnetic field it radiates *fluctuates with the
audio envelope*.  A human larynx produces no magnetic field at all, so
the correlation between the recorded field fluctuation and the recorded
audio envelope is a liveness channel orthogonal to the absolute-strength
thresholds — it stays discriminative even for weakly-magnetised speakers
whose field never crosses ``Mt``.

The detector:

1. detrends the field magnitude |B| with a moving-average baseline (the
   approach ramp of the use-case motion and the Earth field drop out);
2. computes the audio playback envelope from the *recorded* capture
   audio (|x| low-passed below the magnetometer Nyquist), resampled onto
   the magnetometer timestamps and detrended the same way;
3. gates on the residual fluctuation RMS — below the noise floor the
   correlation of ambient noise is spurious and the strength is zero;
4. reports ``|Pearson r|`` between the two residuals, normalised by the
   configured threshold, as the detection strength.

Like the other components the continuous score is "higher = more
genuine-like": ``score = -strength``, pass boundary ``-1``.  The stage is
**off by default** (``DefenseSystem.enabled_components`` keeps the four
paper stages); enable it per deployment via
``GatewayConfig(enable_magliveness=True)`` or by constructing the system
with ``enabled_components=ALL_COMPONENTS``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DefenseConfig
from repro.core.decision import ComponentResult
from repro.dsp.filters import lowpass, moving_average
from repro.errors import CaptureError
from repro.obs.trace import NULL_TRACER, Tracer
from repro.world.scene import SensorCapture

#: Envelope low-pass cutoff (Hz).  Must sit below the magnetometer
#: Nyquist (~50 Hz at the common 100 Hz ODR) so the resampled envelope
#: carries no alias energy; 25 Hz matches the coil-drive bandwidth the
#: scene simulator renders.
ENVELOPE_CUTOFF_HZ = 25.0

#: Detrend window as a fraction of the capture length.  Long enough to
#: keep the sub-Hz approach ramp in the baseline, short enough to leave
#: the syllable-rate (3-25 Hz) coil fluctuation in the residual.
DETREND_FRACTION = 0.125


@dataclass(frozen=True)
class LivenessSignature:
    """Scalar features the magliveness detector thresholds."""

    envelope_corr: float
    fluctuation_rms_ut: float
    n_samples: int


def _detrend(x: np.ndarray, window: int) -> np.ndarray:
    return np.asarray(x, dtype=float) - moving_average(x, window)


def envelope_correlation(
    capture: SensorCapture, detrend_fraction: float = DETREND_FRACTION
) -> LivenessSignature:
    """Correlate the field-magnitude residual with the audio envelope."""
    series = capture.magnetometer
    if len(series) < 16:
        raise CaptureError("magnetometer stream too short for liveness")
    audio = np.asarray(capture.audio, dtype=float)
    if audio.size == 0:
        raise CaptureError("empty capture audio")
    magnitude = series.magnitudes()
    window = max(5, int(detrend_fraction * magnitude.size))
    residual_b = _detrend(magnitude, window)

    envelope = lowpass(
        np.abs(audio), ENVELOPE_CUTOFF_HZ, capture.audio_sample_rate
    )
    audio_times = np.arange(audio.size) / capture.audio_sample_rate
    env_at_mag = np.interp(series.times, audio_times, envelope)
    residual_e = _detrend(env_at_mag, window)

    fluct_rms = float(np.sqrt(np.mean(residual_b**2)))
    denom = float(np.sqrt(np.sum(residual_b**2) * np.sum(residual_e**2)))
    if denom <= 1e-18:
        corr = 0.0
    else:
        corr = float(np.dot(residual_b, residual_e) / denom)
    return LivenessSignature(
        envelope_corr=corr,
        fluctuation_rms_ut=fluct_rms,
        n_samples=len(series),
    )


@dataclass
class MagneticLivenessDetector:
    """Envelope-correlation liveness check (the A/B-able fifth stage)."""

    config: DefenseConfig
    tracer: Tracer = field(default=NULL_TRACER, repr=False, compare=False)

    def signature(self, capture: SensorCapture) -> LivenessSignature:
        with self.tracer.span("dsp.magliveness_signature"):
            return envelope_correlation(capture)

    def detection_strength(self, signature: LivenessSignature) -> float:
        """|r| over the threshold; ≥ 1 means a coil is tracking the audio.

        Gated on the fluctuation noise floor: a residual below
        ``magliveness_min_fluctuation_ut`` carries no coil signal, so its
        correlation is noise and contributes zero strength.
        """
        if (
            signature.fluctuation_rms_ut
            < self.config.magliveness_min_fluctuation_ut
        ):
            return 0.0
        return abs(signature.envelope_corr) / self.config.magliveness_corr_threshold

    def verify(self, capture: SensorCapture) -> ComponentResult:
        """Pass iff the field fluctuation does not track the audio envelope."""
        try:
            sig = self.signature(capture)
        except CaptureError as exc:
            return ComponentResult(
                name="magliveness",
                passed=False,
                score=float("-inf"),
                detail=str(exc),
            )
        strength = self.detection_strength(sig)
        return ComponentResult(
            name="magliveness",
            passed=strength < 1.0,
            score=-strength,
            detail=(
                f"envelope corr {sig.envelope_corr:+.2f} "
                f"(threshold {self.config.magliveness_corr_threshold:.2f}), "
                f"fluctuation {sig.fluctuation_rms_ut:.3f} µT RMS"
            ),
            evidence={
                "envelope_corr": sig.envelope_corr,
                "corr_threshold": self.config.magliveness_corr_threshold,
                "fluctuation_rms_ut": sig.fluctuation_rms_ut,
                "min_fluctuation_ut": self.config.magliveness_min_fluctuation_ut,
                "n_samples": sig.n_samples,
                "detection_strength": strength,
            },
        )
