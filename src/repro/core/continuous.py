"""Continuous-verification session mode (Zhang et al., arxiv 2106.01840).

One-shot verification authenticates a single pass-phrase utterance and
stops.  A continuous session keeps re-scoring a **rolling window** over a
long utterance stream, so a post-authentication hijack — splicing in a
replay, or handing the phone to another voice — is caught at the window
where the stream stops sounding like the claimed speaker.

The session reuses the kernel tier's streaming front-ends rather than
re-running batch extraction per window:

- audio flows through :class:`repro.dsp.mel.StreamingMFCC`; each hop the
  session :meth:`~repro.dsp.mel.StreamingMFCC.poll`\\ s the newly
  completed cepstral frames (the spectral stage runs **once** per frame,
  not once per overlapping window) and applies the window-level
  post-processing — Δ/ΔΔ and CMVN over the window, exactly the batch
  recipe — before scoring it with the claimed speaker's GMM;
- the optional ranging-pilot monitor flows through
  :class:`repro.dsp.phase.StreamingIQDemodulator`: a vanished pilot
  means the phone stopped emitting/hearing its own ranging tone;
- pushed magnetometer samples keep a rolling Mt-style anomaly check
  against the session's opening baseline.

The identity channel is the decision-maker; magnetic and pilot levels
ride along as per-window evidence so callers can apply their own policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.pipeline import DefenseSystem
from repro.dsp.mel import delta
from repro.dsp.phase import StreamingIQDemodulator
from repro.errors import ConfigurationError

#: Default rolling-window geometry (seconds).  Windows must hold enough
#: frames for stable CMVN; 1.2 s ≈ 120 cepstral frames.
DEFAULT_WINDOW_S = 1.2
DEFAULT_HOP_S = 0.6


@dataclass(frozen=True)
class WindowVerdict:
    """One rolling window's verdict and evidence."""

    index: int
    start_s: float
    end_s: float
    llr: float
    passed: bool
    #: Rolling magnetic anomaly ratio (|ΔB|/Mt) over the window; ``None``
    #: when no magnetometer samples were pushed.
    magnetic_strength: Optional[float] = None
    #: Mean |baseband| of the pilot monitor during the window; ``None``
    #: when the pilot channel is not configured.
    pilot_level: Optional[float] = None


@dataclass(frozen=True)
class SessionReport:
    """Summary of a finalized continuous session."""

    verdicts: Tuple[WindowVerdict, ...]
    accepted: bool
    first_rejection: Optional[int]

    @property
    def windows(self) -> int:
        return len(self.verdicts)


@dataclass
class ContinuousSession:
    """Rolling re-verification of one claimed speaker over a stream.

    Push 16 kHz (ASV-rate) audio chunks with :meth:`push_audio`; every
    completed hop emits a :class:`WindowVerdict`.  The session scores
    windows with the *same* enrolled models and threshold the one-shot
    identity component uses, so a window verdict is directly comparable
    to a one-shot ASV verdict on that window's audio.
    """

    system: DefenseSystem
    claimed_speaker: str
    window_s: float = DEFAULT_WINDOW_S
    hop_s: float = DEFAULT_HOP_S
    #: Configure to monitor the phone's ranging pilot: the capture-rate
    #: audio is pushed via :meth:`push_pilot` and demodulated at this
    #: carrier.
    pilot_hz: Optional[float] = None
    pilot_sample_rate: Optional[int] = None
    _ceps: Optional[np.ndarray] = field(init=False, repr=False, default=None)
    _verdicts: List[WindowVerdict] = field(init=False, repr=False, default_factory=list)

    def __post_init__(self) -> None:
        verifier = self.system.identity.verifier
        extractor = verifier.extractor
        frame_hop_s = extractor.hop_ms / 1000.0
        self._window_frames = int(round(self.window_s / frame_hop_s))
        self._hop_frames = int(round(self.hop_s / frame_hop_s))
        if self._window_frames < 8:
            raise ConfigurationError("window_s too short for stable CMVN")
        if not 0 < self._hop_frames <= self._window_frames:
            raise ConfigurationError("need 0 < hop_s <= window_s")
        # Spectral stage streams at hop granularity: a block completes
        # exactly when the next hop's frames are all available.
        self._stream = extractor.stream(block_frames=self._hop_frames)
        self._frame_hop_s = frame_hop_s
        self._next_window_start = 0
        self._verifier = verifier
        self._iq: Optional[StreamingIQDemodulator] = None
        if self.pilot_hz is not None:
            if self.pilot_sample_rate is None:
                raise ConfigurationError(
                    "pilot_sample_rate required with pilot_hz"
                )
            # Emit baseband at session-hop granularity so the pilot
            # level tracks the stream instead of the 64k default block.
            self._iq = StreamingIQDemodulator(
                self.pilot_hz,
                self.pilot_sample_rate,
                chunk_size=max(1024, int(self.pilot_sample_rate * self.hop_s)),
            )
        self._pilot_level: Optional[float] = None
        self._mag_times = np.empty(0)
        self._mag_magnitudes = np.empty(0)
        self._mag_baseline: Optional[float] = None
        self._finalized = False

    # ------------------------------------------------------------------
    # Stream inputs
    # ------------------------------------------------------------------
    def push_audio(self, chunk: np.ndarray) -> List[WindowVerdict]:
        """Consume the next ASV-rate audio chunk; returns new verdicts."""
        if self._finalized:
            raise ConfigurationError("push_audio after finalize")
        self._stream.push(np.asarray(chunk, dtype=float))
        return self._drain_windows()

    def push_pilot(self, chunk: np.ndarray) -> None:
        """Consume capture-rate audio for the pilot-presence monitor."""
        if self._iq is None:
            raise ConfigurationError("session was built without pilot_hz")
        baseband = self._iq.push(np.asarray(chunk, dtype=float))
        if baseband.size:
            self._pilot_level = float(np.mean(np.abs(baseband)))

    def push_magnetometer(self, times: np.ndarray, values: np.ndarray) -> None:
        """Consume magnetometer samples (``(n,)`` times, ``(n, 3)`` µT)."""
        magnitudes = np.linalg.norm(
            np.atleast_2d(np.asarray(values, dtype=float)), axis=1
        )
        self._mag_times = np.concatenate([self._mag_times, np.asarray(times, dtype=float)])
        self._mag_magnitudes = np.concatenate([self._mag_magnitudes, magnitudes])
        if self._mag_baseline is None and self._mag_magnitudes.size >= 8:
            self._mag_baseline = float(np.median(self._mag_magnitudes[:8]))

    # ------------------------------------------------------------------
    # Window machinery
    # ------------------------------------------------------------------
    def _drain_windows(self) -> List[WindowVerdict]:
        new = self._stream.poll()
        if new.size:
            self._ceps = (
                new if self._ceps is None else np.vstack([self._ceps, new])
            )
        out: List[WindowVerdict] = []
        while (
            self._ceps is not None
            and self._ceps.shape[0] >= self._next_window_start + self._window_frames
        ):
            start = self._next_window_start
            stop = start + self._window_frames
            out.append(self._score_window(start, stop))
            self._next_window_start += self._hop_frames
        return out

    def _score_window(self, start: int, stop: int) -> WindowVerdict:
        assert self._ceps is not None
        window = self._ceps[start:stop]
        feats = window
        if self._verifier.extractor.append_deltas:
            d1 = delta(window)
            d2 = delta(d1)
            feats = np.column_stack([window, d1, d2])
        mean = feats.mean(axis=0, keepdims=True)
        std = feats.std(axis=0, keepdims=True)
        feats = (feats - mean) / np.where(std > 1e-8, std, 1.0)
        llr = self._verifier.verify_features(self.claimed_speaker, feats)
        start_s = start * self._frame_hop_s
        end_s = stop * self._frame_hop_s
        verdict = WindowVerdict(
            index=len(self._verdicts),
            start_s=start_s,
            end_s=end_s,
            llr=llr,
            passed=llr >= self.system.config.asv_threshold,
            magnetic_strength=self._magnetic_strength(start_s, end_s),
            pilot_level=self._pilot_level,
        )
        self._verdicts.append(verdict)
        return verdict

    def _magnetic_strength(
        self, start_s: float, end_s: float
    ) -> Optional[float]:
        if self._mag_baseline is None:
            return None
        mask = (self._mag_times >= start_s) & (self._mag_times < end_s)
        if not np.any(mask):
            return None
        anomaly = float(
            np.max(np.abs(self._mag_magnitudes[mask] - self._mag_baseline))
        )
        return anomaly / self.system.config.magnetic_threshold_ut

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def finalize(self) -> SessionReport:
        """Flush the tail (any last partial-hop window is dropped) and
        summarise the session."""
        if self._finalized:
            raise ConfigurationError("finalize called twice")
        self._finalized = True
        if self._iq is not None:
            baseband = self._iq.finalize()
            if baseband.size:
                self._pilot_level = float(np.mean(np.abs(baseband)))
        # finalize() pads the tail and completes the last blocks; windows
        # that now fit entirely in real+padded frames are still scored.
        self._stream.finalize()
        self._drain_windows()
        first_rejection = next(
            (v.index for v in self._verdicts if not v.passed), None
        )
        return SessionReport(
            verdicts=tuple(self._verdicts),
            accepted=first_rejection is None and bool(self._verdicts),
            first_rejection=first_rejection,
        )
