"""Component 4: speaker identity verification (the ASV stage).

Wraps :class:`repro.asv.SpeakerVerifier` (the Spear-system stand-in) so it
consumes raw captures: the voice band is isolated from the ranging pilot,
downsampled to the ASV rate, and scored against the claimed speaker's
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.asv.verifier import SpeakerVerifier, VerifierBackend
from repro.constants import DEFAULT_SAMPLE_RATE_HZ
from repro.core.config import DefenseConfig
from repro.core.decision import ComponentResult
from repro.dsp.filters import lowpass
from repro.errors import CaptureError
from repro.obs.trace import NULL_TRACER, Tracer
from repro.world.scene import SensorCapture


def extract_voice(
    audio: np.ndarray, audio_sample_rate: int, target_rate: int = DEFAULT_SAMPLE_RATE_HZ
) -> np.ndarray:
    """Isolate the speech band of a capture and resample for the ASV.

    Low-passes well below the >16 kHz pilot, then linearly resamples.
    """
    if audio_sample_rate <= 0 or target_rate <= 0:
        raise CaptureError("sample rates must be positive")
    x = np.asarray(audio, dtype=float)
    if x.size == 0:
        raise CaptureError("empty capture audio")
    cutoff = min(7500.0, target_rate / 2.0 * 0.95)
    x = lowpass(x, cutoff, audio_sample_rate, order=4)
    if audio_sample_rate == target_rate:
        return x
    n_out = int(round(x.size * target_rate / audio_sample_rate))
    t_out = np.arange(n_out) / target_rate
    t_in = np.arange(x.size) / audio_sample_rate
    return np.interp(t_out, t_in, x)


@dataclass
class IdentityVerifier:
    """Capture-level facade over the ASV back-end."""

    config: DefenseConfig
    backend: VerifierBackend = VerifierBackend.GMM_UBM
    n_components: int = 32
    seed: int = 0
    tracer: Tracer = field(default=NULL_TRACER, repr=False, compare=False)
    verifier: SpeakerVerifier = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.verifier = SpeakerVerifier(
            backend=self.backend, n_components=self.n_components, seed=self.seed
        )

    def train_background(
        self, waveforms_by_speaker: Dict[str, Sequence[np.ndarray]]
    ) -> "IdentityVerifier":
        """Train the UBM/ISV on 16 kHz background waveforms."""
        self.verifier.train_background(waveforms_by_speaker)
        return self

    def enroll_waveforms(
        self, speaker_id: str, waveforms: Sequence[np.ndarray]
    ) -> "IdentityVerifier":
        """Enroll from clean 16 kHz waveforms."""
        self.verifier.enroll(speaker_id, waveforms)
        return self

    def enroll_captures(
        self, speaker_id: str, captures: Sequence[SensorCapture]
    ) -> "IdentityVerifier":
        """Enroll from raw captures (voice extracted automatically).

        Note: enrolling from rendered captures lets MAP adaptation absorb
        the capture channel itself, which inflates every later capture's
        score regardless of speaker (channel lock-in).  Prefer
        :meth:`enroll_waveforms` with the enrolment-phase recordings when
        they are available; this method exists for pipelines that only
        retain captures.
        """
        waves = [
            extract_voice(c.audio, c.audio_sample_rate, self.verifier.sample_rate)
            for c in captures
        ]
        return self.enroll_waveforms(speaker_id, waves)

    def score(self, capture: SensorCapture, claimed_speaker: str) -> float:
        with self.tracer.span("dsp.extract_voice"):
            voice = extract_voice(
                capture.audio, capture.audio_sample_rate, self.verifier.sample_rate
            )
        with self.tracer.span("asv.llr_score"):
            return self.verifier.verify(claimed_speaker, voice)

    def verify(self, capture: SensorCapture, claimed_speaker: str) -> ComponentResult:
        try:
            score = self.score(capture, claimed_speaker)
        except CaptureError as exc:
            return ComponentResult(
                name="identity", passed=False, score=float("-inf"), detail=str(exc)
            )
        return self._result_from_score(score)

    def verify_batch(
        self, captures: Sequence[SensorCapture], claimed_speaker: str
    ) -> list[ComponentResult]:
        """Verify several captures claiming the same identity in one pass.

        The serving gateway groups concurrent requests by claimed speaker
        and scores them together, amortising the GMM/ISV likelihood
        evaluation.  Scores (and therefore results) are bitwise-equal to
        calling :meth:`verify` per capture; captures whose voice cannot be
        extracted degrade to the same rejection :meth:`verify` produces.
        """
        voices: list[np.ndarray] = []
        scorable: list[int] = []
        results: list[ComponentResult] = [None] * len(captures)  # type: ignore[list-item]
        for i, capture in enumerate(captures):
            try:
                voices.append(
                    extract_voice(
                        capture.audio,
                        capture.audio_sample_rate,
                        self.verifier.sample_rate,
                    )
                )
                scorable.append(i)
            except CaptureError as exc:
                results[i] = ComponentResult(
                    name="identity",
                    passed=False,
                    score=float("-inf"),
                    detail=str(exc),
                )
        scores = self.verifier.verify_batch(claimed_speaker, voices)
        for i, score in zip(scorable, scores):
            results[i] = self._result_from_score(score)
        return results

    def verify_multi(
        self, captures: Sequence[SensorCapture], claims: Sequence[str]
    ) -> list[ComponentResult]:
        """Verify captures claiming (possibly) different identities at once.

        The cross-speaker counterpart of :meth:`verify_batch`: the gateway
        stacks *all* concurrent requests into one call regardless of which
        speaker each claims, sharing a single UBM likelihood pass across
        the whole batch.  Results stay bitwise-equal to per-capture
        :meth:`verify`; captures whose voice cannot be extracted degrade
        to the same rejection.
        """
        if len(captures) != len(claims):
            raise CaptureError("captures and claims must align")
        voices: list[np.ndarray] = []
        batch_claims: list[str] = []
        scorable: list[int] = []
        results: list[ComponentResult] = [None] * len(captures)  # type: ignore[list-item]
        for i, (capture, claimed) in enumerate(zip(captures, claims)):
            try:
                voices.append(
                    extract_voice(
                        capture.audio,
                        capture.audio_sample_rate,
                        self.verifier.sample_rate,
                    )
                )
                batch_claims.append(claimed)
                scorable.append(i)
            except CaptureError as exc:
                results[i] = ComponentResult(
                    name="identity",
                    passed=False,
                    score=float("-inf"),
                    detail=str(exc),
                )
        scores = self.verifier.verify_multi(batch_claims, voices)
        for i, score in zip(scorable, scores):
            results[i] = self._result_from_score(score)
        return results

    def _result_from_score(self, score: float) -> ComponentResult:
        passed = score >= self.config.asv_threshold
        return ComponentResult(
            name="identity",
            passed=passed,
            score=score,
            detail=f"LLR {score:.2f} vs threshold {self.config.asv_threshold:.2f}",
            evidence={
                "llr": score,
                "asv_threshold": self.config.asv_threshold,
            },
        )
