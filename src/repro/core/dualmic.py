"""Dual-microphone sound-level-difference ranging (§VII future work).

"Certain smartphones like Nexus 4 have two microphones... The main idea
is to measure the sound level difference (SLD) feature between the two
microphones of the device.  We then use sound volumes information with
the SLD feature to perform sound field verification" — reducing the
required moving distance.

The physics: with the source near the primary microphone and the
secondary microphone a fixed ``separation`` away along the phone body,
spherical spreading makes the two channels' levels differ by
``20·log10(r2/r1)`` dB.  Close sources produce a large SLD (r2 ≫ r1);
beyond a few tens of centimetres the SLD collapses toward 0 dB.  With
the use-case grip the mics' offset is roughly perpendicular to the
source direction, so ``r2² ≈ r1² + separation²`` and the SLD inverts in
closed form to an absolute distance — no motion required.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import DefenseConfig
from repro.core.decision import ComponentResult
from repro.dsp.filters import bandpass
from repro.dsp.signal import frame_signal
from repro.errors import CaptureError
from repro.world.scene import MIC_SEPARATION_M, SensorCapture

#: Speech band used for level measurement (clear of the ranging pilot).
_BAND_HZ = (200.0, 4000.0)
_FRAME_S = 0.03


def sound_level_difference(
    capture: SensorCapture, tail_fraction: float = 0.35
) -> float:
    """Mean primary-minus-secondary level difference (dB).

    Only the capture's tail is used — the phone has arrived at its final
    distance there, which is what the verification needs to check.
    """
    if capture.audio_secondary is None:
        raise CaptureError("capture has no secondary microphone channel")
    sr = capture.audio_sample_rate
    n_tail = int(tail_fraction * capture.audio.size)

    def tail_levels(audio: np.ndarray) -> np.ndarray:
        speech = bandpass(audio[-n_tail:], _BAND_HZ[0], _BAND_HZ[1], sr, order=2)
        frames = frame_signal(speech, int(_FRAME_S * sr), int(_FRAME_S * sr) // 2, pad=True)
        energy = (frames**2).mean(axis=1)
        return 10.0 * np.log10(np.maximum(energy, 1e-16))

    primary = tail_levels(capture.audio)
    secondary = tail_levels(capture.audio_secondary)
    n = min(primary.size, secondary.size)
    primary, secondary = primary[:n], secondary[:n]
    # Keep frames with actual speech on the stronger channel.
    voiced = primary > primary.max() - 20.0
    if voiced.sum() < 4:
        raise CaptureError("not enough voiced frames for SLD measurement")
    return float(np.mean(primary[voiced] - secondary[voiced]))


def distance_from_sld(
    sld_db: float, separation_m: float = MIC_SEPARATION_M
) -> float:
    """Invert the perpendicular-geometry SLD into a source distance (m).

    ``r2/r1 = 10^(SLD/20)`` with ``r2² = r1² + separation²`` gives
    ``r1 = separation / sqrt(ratio² − 1)``.  SLDs at or below 0 dB mean
    the source is effectively far away; they map to a large distance.
    """
    ratio = 10.0 ** (sld_db / 20.0)
    if ratio <= 1.0 + 1e-6:
        return 1.0  # beyond any plausible mouth distance
    return float(separation_m / np.sqrt(ratio**2 - 1.0))


@dataclass
class DualMicDistanceVerifier:
    """SLD-based proximity check — no phone motion required.

    A drop-in alternative to the trajectory-based distance component for
    dual-microphone devices; the ablation bench compares the two.
    """

    config: DefenseConfig
    separation_m: float = MIC_SEPARATION_M

    def estimate(self, capture: SensorCapture) -> float:
        """Estimated source distance (m) from the SLD."""
        return distance_from_sld(
            sound_level_difference(capture), self.separation_m
        )

    def verify(self, capture: SensorCapture) -> ComponentResult:
        try:
            estimated = self.estimate(capture)
        except CaptureError as exc:
            return ComponentResult(
                name="dualmic_distance",
                passed=False,
                score=float("-inf"),
                detail=str(exc),
            )
        limit = self.config.distance_threshold_m * self.config.distance_margin
        return ComponentResult(
            name="dualmic_distance",
            passed=estimated <= limit,
            score=-estimated,
            detail=f"SLD distance {estimated * 100:.1f} cm (limit {limit * 100:.1f} cm)",
        )
