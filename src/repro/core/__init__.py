"""The paper's primary contribution: the voice-impersonation defense system.

Four cascaded verification components (paper Fig. 4):

1. :mod:`repro.core.distance` — sound source distance verification
   (phase-based ranging + inertial reconstruction + circle fitting);
2. :mod:`repro.core.soundfield` — sound field verification (intensity-vs-
   angle features, linear SVM);
3. :mod:`repro.core.magnetic` — loudspeaker detection (magnetometer
   strength ``Mt`` and changing-rate ``βt`` thresholds);
4. :mod:`repro.core.identity` — speaker identity verification (ASV).

:class:`repro.core.pipeline.DefenseSystem` wires them into the
enrol/verify API the prototype server exposes.
"""

from repro.core.cascade import (
    DEFAULT_STAGE_POLICIES,
    CascadePlan,
    StagePolicy,
    pass_boundary,
)
from repro.core.config import DefenseConfig
from repro.core.decision import (
    ComponentResult,
    Decision,
    DecisionCategory,
    VerificationReport,
    categorize,
)
from repro.core.trajectory_recovery import RecoveredTrajectory, recover_trajectory
from repro.core.distance import DistanceVerifier
from repro.core.soundfield import SoundFieldVerifier, soundfield_features
from repro.core.magliveness import LivenessSignature, MagneticLivenessDetector
from repro.core.magnetic import LoudspeakerDetector, MagneticSignature
from repro.core.identity import IdentityVerifier, extract_voice
from repro.core.calibration import AdaptiveCalibrator
from repro.core.dualmic import (
    DualMicDistanceVerifier,
    distance_from_sld,
    sound_level_difference,
)
from repro.core.pipeline import ALL_COMPONENTS, CascadeStats, DefenseSystem
from repro.core.continuous import ContinuousSession, SessionReport, WindowVerdict

__all__ = [
    "DEFAULT_STAGE_POLICIES",
    "CascadePlan",
    "CascadeStats",
    "StagePolicy",
    "pass_boundary",
    "DefenseConfig",
    "ComponentResult",
    "Decision",
    "DecisionCategory",
    "VerificationReport",
    "categorize",
    "RecoveredTrajectory",
    "recover_trajectory",
    "DistanceVerifier",
    "SoundFieldVerifier",
    "soundfield_features",
    "ALL_COMPONENTS",
    "LivenessSignature",
    "LoudspeakerDetector",
    "MagneticLivenessDetector",
    "MagneticSignature",
    "IdentityVerifier",
    "extract_voice",
    "AdaptiveCalibrator",
    "DualMicDistanceVerifier",
    "distance_from_sld",
    "sound_level_difference",
    "DefenseSystem",
    "ContinuousSession",
    "SessionReport",
    "WindowVerdict",
]
