"""The cascade defense pipeline (paper Fig. 4).

:class:`DefenseSystem` runs the four verification components over a
capture and accepts only when every component passes.  Two engines share
the component implementations:

- :meth:`DefenseSystem.verify` — the paper-order engine.  By default it
  runs everything (benches use this to collect every component's score
  for threshold sweeps); ``cascade=True`` restores the prototype's
  skip-after-first-rejection latency optimisation.
- :meth:`DefenseSystem.verify_cascade` — the cost-ordered early-exit
  engine (see :mod:`repro.core.cascade`): stages run cheapest-first and
  a *confident* rejection skips everything downstream, including the
  ASV pass.  ``strict=True`` runs every stage in paper order and is
  bitwise-identical to :meth:`verify`'s default mode while still timing
  the stages.  Both modes always produce the same final decision —
  acceptance requires every stage to pass, so skipping after a
  rejection can never flip the outcome.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Sequence

import numpy as np

from repro.analysis import lockset, sanitize
from repro.asv.verifier import VerifierBackend
from repro.core.cascade import CascadePlan, stage_scope
from repro.core.config import DefenseConfig
from repro.core.decision import (
    ComponentResult,
    Decision,
    VerificationReport,
)
from repro.core.distance import DistanceVerifier
from repro.core.identity import IdentityVerifier
from repro.core.magliveness import MagneticLivenessDetector
from repro.core.magnetic import LoudspeakerDetector
from repro.core.soundfield import SoundFieldVerifier
from repro.errors import ConfigurationError
from repro.obs.trace import NULL_TRACER, Tracer
from repro.world.scene import SensorCapture

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.obs.provenance import DecisionRecord

#: Pipeline order, matching Fig. 4.
COMPONENT_ORDER = ("distance", "soundfield", "magnetic", "identity")

#: Every component the system can run: the four Fig. 4 stages plus the
#: optional MagLive-style liveness stage (off by default — enabling it
#: changes decisions, so it must be an explicit deployment choice; see
#: ``GatewayConfig.enable_magliveness``).
ALL_COMPONENTS = COMPONENT_ORDER + ("magliveness",)


@dataclass
class CascadeStats:
    """Cumulative early-exit counters of one :class:`DefenseSystem`."""

    runs: Dict[str, int] = field(default_factory=dict)
    skips: Dict[str, int] = field(default_factory=dict)
    early_exits: int = 0
    verifications: int = 0

    def skip_rate(self, name: str) -> float:
        total = self.runs.get(name, 0) + self.skips.get(name, 0)
        return self.skips.get(name, 0) / total if total else 0.0


@dataclass
class SoundFieldCacheStats:
    """Hit/miss/eviction counters of the per-user sound-field model cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def snapshot(self) -> "SoundFieldCacheStats":
        return SoundFieldCacheStats(self.hits, self.misses, self.evictions)


@dataclass
class DefenseSystem:
    """Enrol/verify API over the four-component cascade.

    ``enabled_components`` allows ablation benches to drop stages; the
    full system keeps all four.
    """

    config: DefenseConfig = field(default_factory=DefenseConfig)
    backend: VerifierBackend = VerifierBackend.GMM_UBM
    asv_components: int = 32
    seed: int = 0
    enabled_components: tuple[str, ...] = COMPONENT_ORDER
    #: Capacity of the in-memory LRU of live per-user sound-field models.
    #: The authoritative fitted state lives in ``_soundfield_store`` (the
    #: stand-in for a production model store holding millions of users);
    #: only hot users keep a rehydrated verifier resident.
    soundfield_cache_capacity: int = 16
    #: Stage ordering + early-exit policy of :meth:`verify_cascade`.
    cascade_plan: CascadePlan = field(default_factory=CascadePlan)
    #: Request tracer.  The default :data:`~repro.obs.trace.NULL_TRACER`
    #: is a shared no-op; install a live one with :meth:`set_tracer` and
    #: every verification emits nested stage + DSP-kernel spans carrying
    #: the components' evidence.
    tracer: Tracer = field(default=NULL_TRACER, repr=False)
    cascade_stats: CascadeStats = field(  # guarded-by: _stats_lock
        init=False, repr=False, default_factory=CascadeStats
    )
    distance: DistanceVerifier = field(init=False, repr=False)
    #: Per-user fitted sound-field state — the reference sweep is text- and
    #: user-specific (paper Fig. 9 trains on *the user's* training data).
    _soundfield_store: Dict[str, dict] = field(  # guarded-by: _soundfield_lock
        init=False, repr=False, default_factory=dict
    )
    _soundfield_cache: "OrderedDict[str, SoundFieldVerifier]" = field(  # guarded-by: _soundfield_lock
        init=False, repr=False, default_factory=OrderedDict
    )
    soundfield_cache_stats: SoundFieldCacheStats = field(  # guarded-by: _soundfield_lock
        init=False, repr=False, default_factory=SoundFieldCacheStats
    )
    magnetic: LoudspeakerDetector = field(init=False, repr=False)
    magliveness: MagneticLivenessDetector = field(init=False, repr=False)
    identity: IdentityVerifier = field(init=False, repr=False)

    def __post_init__(self) -> None:
        unknown = set(self.enabled_components) - set(ALL_COMPONENTS)
        if unknown:
            raise ConfigurationError(f"unknown components: {sorted(unknown)}")
        if self.soundfield_cache_capacity < 1:
            raise ConfigurationError("soundfield_cache_capacity must be >= 1")
        self._soundfield_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.distance = DistanceVerifier(self.config)
        self.magnetic = LoudspeakerDetector(self.config)
        self.magliveness = MagneticLivenessDetector(self.config)
        self.identity = IdentityVerifier(
            self.config,
            backend=self.backend,
            n_components=self.asv_components,
            seed=self.seed,
        )
        self.set_tracer(self.tracer)
        lockset.register(self)

    def set_tracer(self, tracer: Tracer) -> "DefenseSystem":
        """Install a tracer on the system and every component it owns.

        Cached sound-field verifiers are updated too; verifiers
        rehydrated later inherit the tracer in :meth:`soundfield_for`.
        """
        self.tracer = tracer
        self.distance.tracer = tracer
        self.magnetic.tracer = tracer
        self.magliveness.tracer = tracer
        self.identity.tracer = tracer
        with self._soundfield_lock:
            for verifier in self._soundfield_cache.values():
                verifier.tracer = tracer
        return self

    # ------------------------------------------------------------------
    # Training / enrolment
    # ------------------------------------------------------------------
    def train_background(
        self, waveforms_by_speaker: Dict[str, Sequence[np.ndarray]]
    ) -> "DefenseSystem":
        """Train the ASV background models (done once, offline)."""
        self.identity.train_background(waveforms_by_speaker)
        return self

    def fit_soundfield(
        self,
        speaker_id: str,
        genuine_captures: Sequence[SensorCapture],
        impostor_captures: Sequence[SensorCapture],
    ) -> "DefenseSystem":
        """Train ``speaker_id``'s sound-field model (Fig. 9 training phase).

        ``impostor_captures`` are the factory non-mouth sweeps — the
        deployment recipe replays the user's enrolment audio through a
        small set of reference loudspeakers.
        """
        verifier = SoundFieldVerifier(self.config)
        verifier.fit_captures(genuine_captures, impostor_captures)
        with self._soundfield_lock:
            self._soundfield_store[speaker_id] = verifier.state_dict()
            self._cache_put_locked(speaker_id, verifier)
        return self

    def import_soundfield_state(
        self, speaker_id: str, state: dict
    ) -> "DefenseSystem":
        """Install a fitted sound-field snapshot trained elsewhere.

        Serving instances load per-user models from an external store;
        this is the ingestion side of
        :meth:`SoundFieldVerifier.state_dict`.
        """
        with self._soundfield_lock:
            self._soundfield_store[speaker_id] = state
            self._soundfield_cache.pop(speaker_id, None)
        return self

    def export_soundfield_state(self, speaker_id: str) -> dict:
        """The stored fitted snapshot of one user's sound-field model."""
        with self._soundfield_lock:
            try:
                return self._soundfield_store[speaker_id]
            except KeyError:
                raise ConfigurationError(
                    f"no sound-field model for {speaker_id!r}; call fit_soundfield"
                ) from None

    def _cache_put_locked(self, speaker_id: str, verifier: SoundFieldVerifier) -> None:
        """Insert into the LRU (lock held by caller), evicting if full."""
        verifier.tracer = self.tracer
        self._soundfield_cache[speaker_id] = verifier
        self._soundfield_cache.move_to_end(speaker_id)
        while len(self._soundfield_cache) > self.soundfield_cache_capacity:
            self._soundfield_cache.popitem(last=False)
            self.soundfield_cache_stats.evictions += 1

    def soundfield_for(self, speaker_id: str) -> SoundFieldVerifier:
        """The trained sound-field model of one user (LRU-cached).

        A hit returns the resident verifier; a miss rehydrates it from the
        stored snapshot (bitwise-equivalent scoring) and may evict the
        least recently used resident model.  Thread-safe: the serving
        gateway calls this from many request workers at once.
        """
        with self._soundfield_lock:
            cached = self._soundfield_cache.get(speaker_id)
            if cached is not None:
                self._soundfield_cache.move_to_end(speaker_id)
                self.soundfield_cache_stats.hits += 1
                return cached
            try:
                state = self._soundfield_store[speaker_id]
            except KeyError:
                raise ConfigurationError(
                    f"no sound-field model for {speaker_id!r}; call fit_soundfield"
                ) from None
            self.soundfield_cache_stats.misses += 1
            verifier = SoundFieldVerifier.from_state(self.config, state)
            self._cache_put_locked(speaker_id, verifier)
            return verifier

    def enroll(
        self,
        speaker_id: str,
        captures: Sequence[SensorCapture],
        enrolment_waveforms: Optional[Sequence[np.ndarray]] = None,
    ) -> "DefenseSystem":
        """Enroll a user's voice.

        When the enrolment-phase recordings are available (the normal
        training flow — the app records the user's samples directly), pass
        them as ``enrolment_waveforms`` (16 kHz); the ASV then adapts to
        the voice rather than to the capture rendering channel.  Without
        them, the voice is extracted from the captures.
        """
        if enrolment_waveforms is not None:
            self.identity.enroll_waveforms(speaker_id, enrolment_waveforms)
        else:
            self.identity.enroll_captures(speaker_id, captures)
        return self

    def with_config(self, config: DefenseConfig) -> "DefenseSystem":
        """Swap thresholds in place (used by adaptive calibration).

        Trained state (UBM, speaker models, sound-field SVMs) is
        preserved; only the threshold comparisons change.
        """
        self.config = config
        self.distance.config = config
        with self._soundfield_lock:
            for verifier in self._soundfield_cache.values():
                verifier.config = config
        self.magnetic.config = config
        self.magliveness.config = config
        self.identity.config = config
        return self

    def enable_component(self, name: str) -> "DefenseSystem":
        """Add one of :data:`ALL_COMPONENTS` to the enabled set.

        Idempotent; the enabled tuple keeps the canonical
        :data:`ALL_COMPONENTS` ordering so strict runs stay paper-ordered.
        Used by the serving gateways to apply the
        ``GatewayConfig.enable_magliveness`` A/B flag before any request
        (and, for the sharded tier, before any shard forks).
        """
        if name not in ALL_COMPONENTS:
            raise ConfigurationError(f"unknown component {name!r}")
        if name not in self.enabled_components:
            wanted = set(self.enabled_components) | {name}
            self.enabled_components = tuple(
                n for n in ALL_COMPONENTS if n in wanted
            )
        return self

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def run_component(
        self,
        name: str,
        capture: SensorCapture,
        claimed_speaker: Optional[str] = None,
    ) -> ComponentResult:
        """Run one verification component (shared by both engines).

        With a live tracer the stage runs inside a ``stage.<name>`` span
        (DSP kernels open child spans of their own) whose attributes
        carry the verdict and the component's evidence mapping.
        """
        with self.tracer.span(f"stage.{name}") as span:
            with stage_scope(name):
                result = self._dispatch_component(name, capture, claimed_speaker)
            if self.tracer.enabled:
                span.set_attrs(
                    {
                        "passed": result.passed,
                        "score": result.score,
                        "detail": result.detail,
                        "evidence": dict(result.evidence),
                    }
                )
                if not result.passed:
                    span.status = "error" if result.score == float("-inf") else "ok"
            return sanitize.check_result(result)

    def _dispatch_component(
        self,
        name: str,
        capture: SensorCapture,
        claimed_speaker: Optional[str],
    ) -> ComponentResult:
        if name == "distance":
            return self.distance.verify(capture)
        if name == "magnetic":
            return self.magnetic.verify(capture)
        if name == "magliveness":
            return self.magliveness.verify(capture)
        if name == "soundfield":
            if claimed_speaker is None:
                raise ConfigurationError(
                    "claimed_speaker required when the sound-field component runs"
                )
            return self.soundfield_for(claimed_speaker).verify(capture)
        if name == "identity":
            if claimed_speaker is None:
                raise ConfigurationError(
                    "claimed_speaker required when the identity component runs"
                )
            return self.identity.verify(capture, claimed_speaker)
        raise ConfigurationError(f"unknown component {name!r}")

    def verify(
        self,
        capture: SensorCapture,
        claimed_speaker: Optional[str] = None,
        cascade: bool = False,
    ) -> VerificationReport:
        """Run the pipeline over one capture, in paper order.

        ``claimed_speaker`` may be omitted when the identity component is
        disabled (machine-detection-only benches).  ``cascade=True``
        skips the remaining components after the first rejection (the
        prototype's optimisation); for the cost-ordered early-exit engine
        see :meth:`verify_cascade`.
        """
        results: Dict[str, ComponentResult] = {}
        rejected = False
        with self.tracer.span("verify") as root:
            for name in ALL_COMPONENTS:
                if name not in self.enabled_components:
                    continue
                if cascade and rejected:
                    break
                result = self.run_component(name, capture, claimed_speaker)
                results[name] = result
                rejected = rejected or not result.passed
            decision = Decision.REJECT if rejected else Decision.ACCEPT
            if self.tracer.enabled:
                root.set_attrs(
                    {
                        "decision": decision.value,
                        "claimed_speaker": claimed_speaker,
                        "mode": "strict",
                    }
                )
        return VerificationReport(
            decision=decision, components=results, claimed_speaker=claimed_speaker
        )

    def verify_cascade(
        self,
        capture: SensorCapture,
        claimed_speaker: Optional[str] = None,
        strict: bool = False,
    ) -> VerificationReport:
        """Run the cost-ordered early-exit cascade over one capture.

        Stages run cheapest-first (per :attr:`cascade_plan`); a stage
        that rejects with its configured margin ends the run and the
        remaining stages are reported as ``skipped``.  The final decision
        is always identical to the strict pipeline's: acceptance needs
        every stage, so stopping after a rejection cannot flip it.

        ``strict=True`` runs every enabled stage in paper order — the
        component results are bitwise-identical to :meth:`verify`'s
        default mode — while still populating per-stage latencies.
        """
        needs_claim = {"soundfield", "identity"} & set(self.enabled_components)
        if needs_claim and claimed_speaker is None:
            raise ConfigurationError(
                "claimed_speaker required when the "
                f"{sorted(needs_claim)[0]} component runs"
            )
        if strict:
            order = tuple(
                n for n in ALL_COMPONENTS if n in self.enabled_components
            )
        else:
            order = self.cascade_plan.order(self.enabled_components)
        results: Dict[str, ComponentResult] = {}
        latency: Dict[str, float] = {}
        skipped: list[str] = []
        early_exit: Optional[str] = None
        rejected = False
        with self.tracer.span("verify") as root:
            for name in order:
                if early_exit is not None:
                    skipped.append(name)
                    if self.tracer.enabled:
                        self.tracer.event(
                            f"stage.{name}",
                            status="skipped",
                            attrs={
                                "skip_reason": (
                                    f"upstream stage {early_exit!r} rejected "
                                    "confidently"
                                ),
                                "cost_saved_ms": self.cascade_plan.estimated_cost_ms(
                                    (name,)
                                ),
                            },
                        )
                    continue
                t0 = time.perf_counter()
                result = self.run_component(name, capture, claimed_speaker)
                latency[name] = time.perf_counter() - t0
                results[name] = result
                rejected = rejected or not result.passed
                if not strict and self.cascade_plan.confident_reject(
                    result, self.config
                ):
                    early_exit = name
            if self.tracer.enabled:
                root.set_attrs(
                    {
                        "decision": (
                            Decision.REJECT if rejected else Decision.ACCEPT
                        ).value,
                        "claimed_speaker": claimed_speaker,
                        "mode": "strict" if strict else "cascade",
                        "early_exit_stage": early_exit if skipped else None,
                    }
                )
        with self._stats_lock:
            stats = self.cascade_stats
            stats.verifications += 1
            for name in results:
                stats.runs[name] = stats.runs.get(name, 0) + 1
            for name in skipped:
                stats.skips[name] = stats.skips.get(name, 0) + 1
            if early_exit is not None and skipped:
                stats.early_exits += 1
        return VerificationReport(
            decision=Decision.REJECT if rejected else Decision.ACCEPT,
            components=results,
            claimed_speaker=claimed_speaker,
            mode="strict" if strict else "cascade",
            skipped=tuple(skipped),
            early_exit_stage=early_exit if skipped else None,
            stage_latency_s=latency,
        )

    def decision_record(
        self,
        report: VerificationReport,
        request_id: str = "",
        trace_id: str = "",
    ) -> "DecisionRecord":
        """Audit-grade provenance of one report (see :meth:`DecisionRecord.explain`)."""
        from repro.obs.provenance import DecisionRecord

        return DecisionRecord.from_report(
            report,
            cascade_plan=self.cascade_plan,
            request_id=request_id,
            trace_id=trace_id,
        )
