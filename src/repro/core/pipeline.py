"""The cascade defense pipeline (paper Fig. 4).

:class:`DefenseSystem` runs the four verification components over a
capture and accepts only when every component passes.  Components run in
the paper's order — distance, sound field, loudspeaker detection, identity
— and in ``cascade`` mode later components are skipped once one rejects
(the prototype's latency optimisation); benches use ``cascade=False`` to
collect every component's score for threshold sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.asv.verifier import VerifierBackend
from repro.core.config import DefenseConfig
from repro.core.decision import (
    ComponentResult,
    Decision,
    VerificationReport,
)
from repro.core.distance import DistanceVerifier
from repro.core.identity import IdentityVerifier
from repro.core.magnetic import LoudspeakerDetector
from repro.core.soundfield import SoundFieldVerifier
from repro.errors import ConfigurationError
from repro.world.scene import SensorCapture

#: Pipeline order, matching Fig. 4.
COMPONENT_ORDER = ("distance", "soundfield", "magnetic", "identity")


@dataclass
class DefenseSystem:
    """Enrol/verify API over the four-component cascade.

    ``enabled_components`` allows ablation benches to drop stages; the
    full system keeps all four.
    """

    config: DefenseConfig = field(default_factory=DefenseConfig)
    backend: VerifierBackend = VerifierBackend.GMM_UBM
    asv_components: int = 32
    seed: int = 0
    enabled_components: tuple[str, ...] = COMPONENT_ORDER
    distance: DistanceVerifier = field(init=False, repr=False)
    #: Per-user sound-field models — the reference sweep is text- and
    #: user-specific (paper Fig. 9 trains on *the user's* training data).
    _soundfields: Dict[str, SoundFieldVerifier] = field(
        init=False, repr=False, default_factory=dict
    )
    magnetic: LoudspeakerDetector = field(init=False, repr=False)
    identity: IdentityVerifier = field(init=False, repr=False)

    def __post_init__(self) -> None:
        unknown = set(self.enabled_components) - set(COMPONENT_ORDER)
        if unknown:
            raise ConfigurationError(f"unknown components: {sorted(unknown)}")
        self.distance = DistanceVerifier(self.config)
        self.magnetic = LoudspeakerDetector(self.config)
        self.identity = IdentityVerifier(
            self.config,
            backend=self.backend,
            n_components=self.asv_components,
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    # Training / enrolment
    # ------------------------------------------------------------------
    def train_background(
        self, waveforms_by_speaker: Dict[str, Sequence[np.ndarray]]
    ) -> "DefenseSystem":
        """Train the ASV background models (done once, offline)."""
        self.identity.train_background(waveforms_by_speaker)
        return self

    def fit_soundfield(
        self,
        speaker_id: str,
        genuine_captures: Sequence[SensorCapture],
        impostor_captures: Sequence[SensorCapture],
    ) -> "DefenseSystem":
        """Train ``speaker_id``'s sound-field model (Fig. 9 training phase).

        ``impostor_captures`` are the factory non-mouth sweeps — the
        deployment recipe replays the user's enrolment audio through a
        small set of reference loudspeakers.
        """
        verifier = SoundFieldVerifier(self.config)
        verifier.fit_captures(genuine_captures, impostor_captures)
        self._soundfields[speaker_id] = verifier
        return self

    def soundfield_for(self, speaker_id: str) -> SoundFieldVerifier:
        """The trained sound-field model of one user."""
        try:
            return self._soundfields[speaker_id]
        except KeyError:
            raise ConfigurationError(
                f"no sound-field model for {speaker_id!r}; call fit_soundfield"
            ) from None

    def enroll(
        self,
        speaker_id: str,
        captures: Sequence[SensorCapture],
        enrolment_waveforms: Optional[Sequence[np.ndarray]] = None,
    ) -> "DefenseSystem":
        """Enroll a user's voice.

        When the enrolment-phase recordings are available (the normal
        training flow — the app records the user's samples directly), pass
        them as ``enrolment_waveforms`` (16 kHz); the ASV then adapts to
        the voice rather than to the capture rendering channel.  Without
        them, the voice is extracted from the captures.
        """
        if enrolment_waveforms is not None:
            self.identity.enroll_waveforms(speaker_id, enrolment_waveforms)
        else:
            self.identity.enroll_captures(speaker_id, captures)
        return self

    def with_config(self, config: DefenseConfig) -> "DefenseSystem":
        """Swap thresholds in place (used by adaptive calibration).

        Trained state (UBM, speaker models, sound-field SVMs) is
        preserved; only the threshold comparisons change.
        """
        self.config = config
        self.distance.config = config
        for verifier in self._soundfields.values():
            verifier.config = config
        self.magnetic.config = config
        self.identity.config = config
        return self

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify(
        self,
        capture: SensorCapture,
        claimed_speaker: Optional[str] = None,
        cascade: bool = False,
    ) -> VerificationReport:
        """Run the pipeline over one capture.

        ``claimed_speaker`` may be omitted when the identity component is
        disabled (machine-detection-only benches).
        """
        results: Dict[str, ComponentResult] = {}
        rejected = False
        for name in COMPONENT_ORDER:
            if name not in self.enabled_components:
                continue
            if cascade and rejected:
                break
            if name == "distance":
                result = self.distance.verify(capture)
            elif name == "soundfield":
                if claimed_speaker is None:
                    raise ConfigurationError(
                        "claimed_speaker required when the sound-field component runs"
                    )
                result = self.soundfield_for(claimed_speaker).verify(capture)
            elif name == "magnetic":
                result = self.magnetic.verify(capture)
            else:
                if claimed_speaker is None:
                    raise ConfigurationError(
                        "claimed_speaker required when the identity component runs"
                    )
                result = self.identity.verify(capture, claimed_speaker)
            results[name] = result
            rejected = rejected or not result.passed
        decision = Decision.REJECT if rejected else Decision.ACCEPT
        return VerificationReport(
            decision=decision, components=results, claimed_speaker=claimed_speaker
        )
