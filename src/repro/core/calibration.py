"""Adaptive thresholding (paper §VII, "Adaptive Thresholding").

In high-EMF environments (near a computer, in a car) the magnetometer's
ambient fluctuation trips the fixed thresholds and drives FRR up
(Fig. 14).  The paper proposes monitoring the environment for a few
seconds before capture and scaling each verification component's
sensitivity.  :class:`AdaptiveCalibrator` implements exactly that: it
measures the ambient magnitude variability and widens ``Mt``/``βt``
proportionally, never below the factory values — which also addresses the
paper's caution that calibrating *down* in a quiet environment must not
make the system trickable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import DefenseConfig
from repro.errors import CaptureError
from repro.world.environments import Environment


@dataclass
class AdaptiveCalibrator:
    """Environment-aware threshold scaling.

    ``reference_std_ut`` is the ambient |B| standard deviation the factory
    thresholds were tuned for (a quiet room); ``headroom`` multiplies the
    measured-vs-reference ratio to keep margin above the ambient peaks.
    """

    config: DefenseConfig
    reference_std_ut: float = 0.5
    headroom: float = 1.6
    monitor_seconds: float = 3.0

    def scale_from_samples(self, ambient_magnitudes_ut: np.ndarray) -> float:
        """Sensitivity scale from raw ambient |B| samples (µT)."""
        mags = np.asarray(ambient_magnitudes_ut, dtype=float)
        if mags.size < 8:
            raise CaptureError("need at least 8 ambient samples to calibrate")
        std = float(np.std(mags))
        # Never scale below 1: a quiet environment must not sharpen the
        # thresholds past their factory values (§VII's trickability caveat).
        return max(1.0, self.headroom * std / self.reference_std_ut)

    def calibrate(self, environment: Environment) -> DefenseConfig:
        """Monitor the environment and return an adjusted configuration."""
        ambient = environment.ambient_sample(self.monitor_seconds)
        return self.config.with_sensitivity(self.scale_from_samples(ambient))
