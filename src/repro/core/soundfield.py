"""Component 2: sound field verification.

Catches small-aperture sources (earphones) and other non-mouth channels
(sound tubes) that are too weakly magnetic for component 3.  During the
sweep the phone samples the source's radiation pattern; the verifier
"models the sound field of the human mouth using the training data"
(paper §IV-B.2) and classifies new sweeps against that model with a
linear SVM, exactly the two-phase train/predict flow of Fig. 9.

Text dependence is the key to making the measurement robust: the user
speaks the *same pass-phrase* during enrolment and verification, so a new
sweep can be DTW-aligned to an enrolment reference sweep and differenced.
After alignment the speech content cancels frame-by-frame, leaving the
difference between the two sources' radiation patterns — head shadow,
piston beaming, comb colouration — plus small session noise.  The SVM
operates on features of that *delta trace*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis import sanitize
from repro.core.config import DefenseConfig
from repro.core.decision import ComponentResult
from repro.dsp.align import align_to_reference
from repro.dsp.filters import lowpass, zero_phase_batch
from repro.errors import CaptureError, NotFittedError
from repro.ml.linalg import lstsq_1rhs
from repro.ml.scaler import StandardScaler
from repro.ml.svm import LinearSVM
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sensors.fusion import OrientationFilter
from repro.world.scene import RENDER_BANDS, SensorCapture

#: Analysis frame length / hop for volume measurement, seconds.
_FRAME_S = 0.025
_HOP_S = 0.010

#: dB floor for silent frames.
_FLOOR_DB = -90.0


@dataclass(frozen=True)
class SweepTrace:
    """Level measurements along the sweep of one capture.

    ``angles`` (rad) and per-frame levels for the voiced frames inside the
    sweep window: ``total_db`` is the broadband level, ``rel_db`` has one
    row per render band holding that band's level relative to the total.
    """

    angles: np.ndarray
    total_db: np.ndarray
    rel_db: np.ndarray

    def __len__(self) -> int:
        return self.angles.size


def extract_sweep_trace(
    capture: SensorCapture,
    magnetometer_gain: float = 0.02,
    voiced_margin_db: float = 25.0,
    min_frames: int = 16,
) -> SweepTrace:
    """Measure the (volume, angle) trace of a capture's sweep."""
    sr = capture.audio_sample_rate
    frame_len = int(_FRAME_S * sr)
    hop_len = int(_HOP_S * sr)
    if capture.audio.size < frame_len:
        raise CaptureError("capture audio too short for sound-field analysis")

    fusion = OrientationFilter(magnetometer_gain=magnetometer_gain)
    headings = fusion.estimate_heading(capture.gyroscope, capture.magnetometer)
    headings = headings - headings[0]
    gyro_times = capture.gyroscope.times

    n_frames = 1 + (capture.audio.size - frame_len) // hop_len
    frame_times = (np.arange(n_frames) * hop_len + frame_len / 2.0) / sr
    frame_angles = np.interp(frame_times, gyro_times, headings)

    # Scrub the >16 kHz ranging pilot before band analysis: the order-2
    # band filters' upper skirts otherwise leak a distance-independent
    # pilot floor into the top bands, flattening their radiation profiles
    # exactly when the voice is quiet (large source distances).
    audio = lowpass(capture.audio, 8000.0, sr, order=6)

    # All render-band filters run over the same signal with the same
    # order, so the batch path can interleave their recurrences in one
    # compiled loop (bitwise-identical per band to a bandpass() call).
    band_jobs = [
        (audio, 2, (float(low_hz), float(min(high_hz, sr / 2.0 * 0.95))), "band", int(sr))
        for low_hz, high_hz, _centre in RENDER_BANDS
    ]
    band_signals = zero_phase_batch(band_jobs)
    band_db = np.empty((len(RENDER_BANDS), n_frames))
    for i, band_audio in enumerate(band_signals):
        # Square once per sample, then take the strided frame view: with
        # 2.5x frame overlap this squares 126k samples instead of 312k,
        # and squaring commutes with the gather so the per-frame mean sees
        # identical inputs (same reduction order, same bits).
        sq = band_audio * band_audio
        frames = np.lib.stride_tricks.sliding_window_view(sq, frame_len)[
            ::hop_len
        ][:n_frames]
        energy = frames.mean(axis=1)
        band_db[i] = 10.0 * np.log10(np.maximum(energy, 10.0 ** (_FLOOR_DB / 10.0)))
    total_power = (10.0 ** (band_db / 10.0)).sum(axis=0)
    total_db = 10.0 * np.log10(np.maximum(total_power, 10.0 ** (_FLOOR_DB / 10.0)))

    rate = np.abs(np.gradient(headings, gyro_times))
    if rate.max() <= 0:
        raise CaptureError("no rotation observed; cannot sample the sound field")
    active = rate > 0.25 * rate.max()
    t_lo = float(gyro_times[np.argmax(active)])
    t_hi = float(gyro_times[len(active) - 1 - np.argmax(active[::-1])])
    in_sweep = (frame_times >= t_lo) & (frame_times <= t_hi)
    voiced = total_db > total_db.max() - voiced_margin_db
    selected = in_sweep & voiced
    if selected.sum() < min_frames:
        raise CaptureError("not enough voiced sweep frames")

    return SweepTrace(
        angles=frame_angles[selected],
        total_db=total_db[selected],
        rel_db=band_db[:, selected] - total_db[selected][None, :],
    )


def delta_features(trace: SweepTrace, reference: SweepTrace) -> np.ndarray:
    """Features of the content-cancelled difference to a reference sweep.

    DTW on the broadband envelope aligns the two renditions of the
    pass-phrase; per aligned frame the level differences isolate the
    radiation mismatch.  For the broadband delta the global mean is
    removed (the user controls loudness); per band the delta's mean
    (spectral colouration — combs, speaker band limits), slope vs angle
    (head shadow / piston beaming) and residual spread (texture) are kept.
    """
    mapping = align_to_reference(reference.total_db, trace.total_db)
    a = reference.angles - reference.angles.mean()

    d_tot = trace.total_db[mapping] - reference.total_db
    d_tot = d_tot - d_tot.mean()

    # All seven degree-1 fits share the same abscissa, so the Vandermonde
    # matrix, column scaling and rcond that ``np.polyfit`` would rebuild on
    # every call are hoisted here; the per-call ``lstsq`` then follows
    # polyfit's exact remaining steps, making each fit bitwise-identical to
    # ``np.polyfit(a, values, deg=1)``.
    a_fit = a + 0.0
    lhs = np.vander(a_fit, 2)
    scale = np.sqrt((lhs * lhs).sum(axis=0))
    lhs /= scale
    rcond = len(a_fit) * np.finfo(a_fit.dtype).eps

    def trend(values: np.ndarray) -> tuple[float, float]:
        c, _ = lstsq_1rhs(lhs, values + 0.0, rcond=rcond)
        coeffs = (c.T / scale).T
        fitted = np.polyval(coeffs, a)
        return float(coeffs[0]), float(np.std(values - fitted))

    features: List[float] = list(trend(d_tot))
    band_means = []
    band_rest = []
    for k in range(trace.rel_db.shape[0]):
        d_k = trace.rel_db[k][mapping] - reference.rel_db[k]
        band_means.append(float(d_k.mean()))
        band_rest.extend(trend(d_k - d_k.mean()))
    band_means_arr = np.asarray(band_means)
    # Colouration is relative: remove the common offset across bands, then
    # detrend linearly across the band index.  Session-to-session prosody
    # shifts the spectral *tilt* (smooth in frequency) and would otherwise
    # dominate these dimensions; combs, notches and band-limits oscillate
    # across bands and survive the detrending.
    band_idx = np.arange(band_means_arr.size, dtype=float)
    tilt = np.polyfit(band_idx, band_means_arr, deg=1)
    band_means_arr = band_means_arr - np.polyval(tilt, band_idx)
    features.extend(band_means_arr.tolist())
    features.extend(band_rest)
    return np.asarray(features)


def soundfield_features(
    capture: SensorCapture, reference: SweepTrace
) -> np.ndarray:
    """Convenience wrapper: capture → delta features against a reference."""
    return sanitize.check_array(
        "soundfield.delta_features",
        delta_features(extract_sweep_trace(capture), reference),
    )


@dataclass
class SoundFieldVerifier:
    """Two-phase sound source validation (paper Fig. 9).

    *Training phase*: store a reference sweep from the user's enrolment,
    then fit the scaler + SVM on genuine sweeps (label +1) versus factory
    non-mouth sweeps (label −1), all expressed as deltas against the
    reference.  *Predicting phase*: score new captures with the SVM
    decision function.
    """

    config: DefenseConfig
    #: Genuine-cluster novelty limit: reject when the mean of the three
    #: largest per-dimension |z| scores exceeds this.  The binary SVM only
    #: rejects what resembles its training negatives; the novelty term
    #: also rejects sources that deviate in *unseen* directions (e.g. a
    #: sound tube's comb colouration).
    novelty_limit: float = 5.0
    #: Scale that maps novelty headroom into SVM-margin-comparable units.
    novelty_scale: float = 2.0
    #: Floor on the genuine-cluster per-dimension std (dB) so tiny
    #: training sets cannot produce explosive z scores.
    std_floor: float = 0.3
    _reference: SweepTrace | None = field(default=None, repr=False)
    _scaler: StandardScaler = field(default_factory=StandardScaler, repr=False)
    _svm: LinearSVM = field(default_factory=lambda: LinearSVM(lambda_reg=1e-2), repr=False)
    _genuine_mean: np.ndarray | None = field(default=None, repr=False)
    _genuine_std: np.ndarray | None = field(default=None, repr=False)
    #: Per-user decision threshold calibrated from the training scores
    #: (midpoint between the genuine and impostor score clusters).  SVM
    #: margins scale with each user's class separability, so a single
    #: global threshold does not transfer across users.
    threshold_: float | None = field(default=None, repr=False)
    _fitted: bool = field(default=False, repr=False)
    #: Tracing hook (not part of the fitted state; never snapshotted).
    tracer: Tracer = field(default=NULL_TRACER, repr=False, compare=False)

    @property
    def reference(self) -> SweepTrace:
        if self._reference is None:
            raise NotFittedError("SoundFieldVerifier has no reference sweep yet")
        return self._reference

    # ------------------------------------------------------------------
    # State snapshot / rehydration
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot of the fitted state (arrays copied).

        The snapshot is what a production deployment would keep in an
        external model store: per-user models are trained once, exported,
        and rehydrated on whichever serving instance the user's traffic
        lands on.  :meth:`from_state` restores a verifier whose scores are
        bitwise-equal to the original's.
        """
        if not self._fitted:
            raise NotFittedError("cannot snapshot an unfitted SoundFieldVerifier")
        assert self._reference is not None
        assert self._genuine_mean is not None and self._genuine_std is not None
        return {
            "novelty_limit": self.novelty_limit,
            "novelty_scale": self.novelty_scale,
            "std_floor": self.std_floor,
            "reference_angles": self._reference.angles.copy(),
            "reference_total_db": self._reference.total_db.copy(),
            "reference_rel_db": self._reference.rel_db.copy(),
            "scaler_mean": self._scaler.mean_.copy(),
            "scaler_scale": self._scaler.scale_.copy(),
            "svm_weights": self._svm.weights_.copy(),
            "svm_bias": self._svm.bias_,
            "genuine_mean": self._genuine_mean.copy(),
            "genuine_std": self._genuine_std.copy(),
            "threshold": self.threshold_,
        }

    @classmethod
    def from_state(cls, config: DefenseConfig, state: dict) -> "SoundFieldVerifier":
        """Rebuild a fitted verifier from a :meth:`state_dict` snapshot."""
        verifier = cls(
            config,
            novelty_limit=float(state["novelty_limit"]),
            novelty_scale=float(state["novelty_scale"]),
            std_floor=float(state["std_floor"]),
        )
        verifier._reference = SweepTrace(
            angles=np.asarray(state["reference_angles"]),
            total_db=np.asarray(state["reference_total_db"]),
            rel_db=np.asarray(state["reference_rel_db"]),
        )
        verifier._scaler.mean_ = np.asarray(state["scaler_mean"])
        verifier._scaler.scale_ = np.asarray(state["scaler_scale"])
        verifier._svm.weights_ = np.asarray(state["svm_weights"])
        verifier._svm.bias_ = float(state["svm_bias"])
        verifier._genuine_mean = np.asarray(state["genuine_mean"])
        verifier._genuine_std = np.asarray(state["genuine_std"])
        verifier.threshold_ = (
            None if state["threshold"] is None else float(state["threshold"])
        )
        verifier._fitted = True
        return verifier

    def features(self, capture: SensorCapture) -> np.ndarray:
        return soundfield_features(capture, self.reference)

    def fit_captures(
        self,
        genuine_captures: Sequence[SensorCapture],
        impostor_captures: Sequence[SensorCapture],
    ) -> "SoundFieldVerifier":
        """Train from captures; the first genuine capture is the reference."""
        if len(genuine_captures) < 2:
            raise CaptureError("need at least two genuine training sweeps")
        if not impostor_captures:
            raise CaptureError("need impostor training sweeps")
        traces = [extract_sweep_trace(c) for c in genuine_captures]
        self._reference = traces[0]
        genuine_feats = [delta_features(t, self._reference) for t in traces[1:]]
        impostor_feats = [self.features(c) for c in impostor_captures]
        x = np.vstack(genuine_feats + impostor_feats)
        y = np.concatenate(
            [np.ones(len(genuine_feats)), -np.ones(len(impostor_feats))]
        )
        self._svm.fit(self._scaler.fit_transform(x), y)
        g = np.asarray(genuine_feats)
        self._genuine_mean = g.mean(axis=0)
        self._genuine_std = np.maximum(g.std(axis=0), self.std_floor)
        self._fitted = True
        self.threshold_ = self._calibrate_threshold(genuine_feats, impostor_feats)
        return self

    def _calibrate_threshold(
        self,
        genuine_feats: List[np.ndarray],
        impostor_feats: List[np.ndarray],
    ) -> float:
        """Leave-one-out threshold calibration.

        Training-set scores are optimistic (the SVM saw every sample), so
        each training sweep is re-scored by a model fitted *without* it;
        the threshold splits the unbiased score clusters, weighted
        slightly toward the genuine side because unseen attack classes
        spread upward more than unseen genuine attempts spread downward.
        """

        def loo_score(index: int, genuine: bool) -> float:
            if genuine:
                g_train = [f for i, f in enumerate(genuine_feats) if i != index]
                i_train = impostor_feats
                held_out = genuine_feats[index]
            else:
                g_train = genuine_feats
                i_train = [f for i, f in enumerate(impostor_feats) if i != index]
                held_out = impostor_feats[index]
            x = np.vstack(g_train + i_train)
            y = np.concatenate([np.ones(len(g_train)), -np.ones(len(i_train))])
            scaler = StandardScaler()
            svm = LinearSVM(lambda_reg=1e-2)
            svm.fit(scaler.fit_transform(x), y)
            g_arr = np.asarray(g_train)
            mean = g_arr.mean(axis=0)
            std = np.maximum(g_arr.std(axis=0), self.std_floor)
            z = np.abs((held_out - mean) / std)
            novelty = float(np.sort(z)[-3:].mean())
            svm_score = float(
                svm.decision_function(scaler.transform(held_out[None, :]))[0]
            )
            return min(svm_score, (self.novelty_limit - novelty) * self.novelty_scale)

        genuine_loo = [loo_score(i, True) for i in range(len(genuine_feats))]
        impostor_loo = [loo_score(i, False) for i in range(len(impostor_feats))]
        # A low percentile rather than the minimum keeps one unlucky
        # enrolment sweep from dragging the threshold down.
        genuine_floor = float(np.percentile(genuine_loo, 15.0))
        return 0.6 * genuine_floor + 0.4 * float(np.max(impostor_loo))

    def _novelty(self, feats: np.ndarray) -> float:
        """Mean of the three largest per-dimension genuine-cluster |z|."""
        assert self._genuine_mean is not None and self._genuine_std is not None
        z = np.abs((feats - self._genuine_mean) / self._genuine_std)
        return float(np.sort(z)[-3:].mean())

    def _score_features(self, feats: np.ndarray) -> float:
        svm_score = float(
            self._svm.decision_function(self._scaler.transform(feats[None, :]))[0]
        )
        novelty_headroom = (self.novelty_limit - self._novelty(feats)) * self.novelty_scale
        return min(svm_score, novelty_headroom)

    def score_evidence(self, capture: SensorCapture) -> Dict[str, float]:
        """The component's full scoring evidence for one capture.

        Keys: ``svm_margin`` (raw SVM decision value), ``novelty``
        (genuine-cluster |z| statistic) and ``novelty_headroom`` (its
        scaled distance to the limit), plus the combined ``score`` =
        min(svm_margin, novelty_headroom) that :meth:`score` returns.
        """
        if not self._fitted:
            raise NotFittedError("SoundFieldVerifier used before fit")
        with self.tracer.span("dsp.sweep_features"):
            feats = self.features(capture)
        with self.tracer.span("dsp.soundfield_svm"):
            svm_score = float(
                self._svm.decision_function(
                    self._scaler.transform(feats[None, :])
                )[0]
            )
            novelty = self._novelty(feats)
        headroom = (self.novelty_limit - novelty) * self.novelty_scale
        return {
            "svm_margin": svm_score,
            "novelty": novelty,
            "novelty_limit": self.novelty_limit,
            "novelty_headroom": headroom,
            "score": min(svm_score, headroom),
        }

    def score(self, capture: SensorCapture) -> float:
        """min(SVM margin, scaled novelty headroom); ≥ threshold passes."""
        if not self._fitted:
            raise NotFittedError("SoundFieldVerifier used before fit")
        return self._score_features(self.features(capture))

    @property
    def decision_threshold(self) -> float:
        """The operating threshold: per-user calibration when available."""
        if self.threshold_ is not None:
            return self.threshold_
        return self.config.soundfield_threshold

    def verify(self, capture: SensorCapture) -> ComponentResult:
        try:
            evidence = self.score_evidence(capture)
        except CaptureError as exc:
            return ComponentResult(
                name="soundfield", passed=False, score=float("-inf"), detail=str(exc)
            )
        score = evidence.pop("score")
        threshold = self.decision_threshold
        passed = score >= threshold
        evidence["threshold"] = threshold
        evidence["combined_score"] = score
        return ComponentResult(
            name="soundfield",
            passed=passed,
            score=score - threshold,
            detail=f"margin {score:.2f} vs calibrated threshold {threshold:.2f}",
            evidence=evidence,
        )
