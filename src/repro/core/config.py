"""Defense-system configuration and thresholds.

The paper sets all four components' thresholds empirically: the distance
threshold ``Dt = 6 cm`` (from Fig. 12), a magnetic strength threshold
``Mt`` and changing-rate threshold ``βt`` (from the loudspeaker
measurements), and the ASV acceptance threshold.  The defaults below are
the values our simulated evaluation selects by the same procedure (the
Fig. 12 bench re-derives ``Dt``).

:class:`GatewayConfig` — the serving-tier knobs — lives here too, next
to the decision thresholds it serves: both are part of a deployment's
frozen configuration, and both travel across process boundaries when the
sharded gateway spawns or replaces shard workers.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DefenseConfig:
    """All tunable parameters of the defense pipeline."""

    #: Sound source distance threshold ``Dt`` (m).  The magnetometer can
    #: only out a loudspeaker within a few centimetres, so attempts whose
    #: recovered final distance exceeds this are rejected outright.
    distance_threshold_m: float = 0.06

    #: Magnetic anomaly threshold ``Mt`` (µT): peak |B| deviation from the
    #: capture's ambient baseline above which a loudspeaker is declared.
    magnetic_threshold_ut: float = 6.0

    #: Magnetic changing-rate threshold ``βt`` (µT/s).
    rate_threshold_ut_s: float = 60.0

    #: ASV log-likelihood-ratio acceptance threshold.
    asv_threshold: float = 0.5

    #: Decision threshold for the sound-field component (scores below
    #: this are rejected as non-mouth sources).  Slightly negative: the
    #: genuine cluster sits several units positive, non-mouth sources
    #: several units negative, and the small negative margin absorbs
    #: genuine outliers without admitting any observed attack class.
    soundfield_threshold: float = -1.5

    #: Number of angle bins for sound-field features.
    soundfield_angle_bins: int = 8

    #: Tolerance multiplier applied to the recovered distance before the
    #: ``Dt`` comparison (absorbs the ~1 cm ranging noise; 1.0 = strict).
    #: 1.4 keeps genuine rejections rare while still forcing attackers
    #: inside the magnetometer's reliable range.
    distance_margin: float = 1.4

    #: MagLive-style liveness (arxiv 2404.01106): |Pearson r| between the
    #: detrended magnetometer magnitude and the detrended audio playback
    #: envelope above which a voice coil is declared.  A loudspeaker's
    #: coil drive *is* the playback envelope, so the recorded field
    #: fluctuation tracks the recorded audio envelope; a human source has
    #: no such coupling.  Only consulted by the optional fifth cascade
    #: component (off by default).
    magliveness_corr_threshold: float = 0.35

    #: Noise-floor gate of the magliveness correlation (µT RMS of the
    #: detrended field magnitude).  Below this the fluctuation is ambient
    #: noise and its correlation with the envelope is spurious, so the
    #: component reports zero detection strength.
    magliveness_min_fluctuation_ut: float = 0.02

    def __post_init__(self) -> None:
        if self.distance_threshold_m <= 0:
            raise ConfigurationError("distance_threshold_m must be positive")
        if self.magnetic_threshold_ut <= 0 or self.rate_threshold_ut_s <= 0:
            raise ConfigurationError("magnetic thresholds must be positive")
        if self.soundfield_angle_bins < 2:
            raise ConfigurationError("need at least 2 angle bins")
        if self.distance_margin <= 0:
            raise ConfigurationError("distance_margin must be positive")
        if not 0.0 < self.magliveness_corr_threshold <= 1.0:
            raise ConfigurationError(
                "magliveness_corr_threshold must be in (0, 1]"
            )
        if self.magliveness_min_fluctuation_ut < 0:
            raise ConfigurationError(
                "magliveness_min_fluctuation_ut must be non-negative"
            )

    def with_sensitivity(self, scale: float) -> "DefenseConfig":
        """Scale the magnetometer thresholds (adaptive thresholding §VII).

        ``scale > 1`` desensitises the detector — appropriate in high-EMF
        environments where ambient fluctuation would otherwise trip it.
        """
        if scale <= 0:
            raise ConfigurationError("sensitivity scale must be positive")
        return replace(
            self,
            magnetic_threshold_ut=self.magnetic_threshold_ut * scale,
            rate_threshold_ut_s=self.rate_threshold_ut_s * scale,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-stable form (audit provenance, cross-process handoff)."""
        return dict(asdict(self))

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "DefenseConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are ignored so newer audit rows stay loadable by
        older code; validation re-runs in ``__post_init__``.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in row.items() if k in known})


@dataclass
class GatewayConfig:
    """Knobs of the concurrent serving path (threaded and sharded).

    ``shards=0`` (the default) keeps the single-process thread-pool
    gateway.  ``shards=N`` with ``N >= 1`` selects the shared-nothing
    process-shard tier: requests are routed by consistent hash on the
    claimed speaker id to one of ``N`` forked worker processes, each
    owning its slice of the per-user sound-field LRU and ASV traffic.
    """

    #: Request-level concurrency: how many requests are in flight at once.
    request_workers: int = 4
    #: Workers of the shared component scheduler; ``None`` sizes the pool
    #: at three per request worker (one per machine-detection component).
    component_workers: Optional[int] = None
    #: Bound of the admission queue; a full queue rejects (backpressure).
    max_queue: int = 64
    #: Per-component execution budget; ``None`` waits forever.
    component_timeout_s: Optional[float] = 30.0
    #: Extra attempts for a component job that *crashed* (timeouts are
    #: never retried — see the scheduler docs).
    component_retries: int = 1
    #: How long the first request of an identity batch waits for peers.
    batch_window_s: float = 0.05
    #: Flush an identity batch as soon as it reaches this many requests.
    max_batch: int = 8
    #: Stack concurrent requests claiming *different* speakers into one
    #: identity batch (single shared UBM likelihood pass plus one grouped
    #: pass per distinct claimed model).  Off by default: per-speaker
    #: buckets.  Scores are bitwise-equal either way — frame likelihoods
    #: are row-independent — so this is purely a throughput knob.
    cross_speaker_batching: bool = False
    #: Recent-sample window of the latency histograms.
    metrics_window: int = 4096
    #: Serve with the cost-ordered early-exit cascade: cheap stages run
    #: first and a confident rejection skips everything downstream
    #: (including identity scoring).  Decisions match the strict path —
    #: ACCEPT still requires every enabled component to pass — but
    #: rejected requests return after the cheap stages.  ``False`` keeps
    #: the run-everything behaviour bit-for-bit.
    cascade: bool = False
    #: Number of shared-nothing shard processes (0 = threaded gateway).
    shards: int = 0
    #: Bound of each shard's work queue (per-shard backpressure).
    shard_queue_depth: int = 32
    #: How often the shard supervisor polls worker liveness (seconds).
    health_check_interval_s: float = 0.1
    #: Enable in-band chaos hooks (``__chaos_exit__`` request metadata
    #: kills the handling shard mid-request).  Test-only; never enable
    #: in production configs.
    chaos_hooks: bool = False
    #: A/B flag for the MagLive-style fifth cascade component
    #: (:mod:`repro.core.magliveness`).  Off by default so the frozen
    #: four-stage golden decisions are untouched; when set, the gateway
    #: (threaded *and* sharded — applied before shards fork) extends the
    #: system's enabled components with ``"magliveness"``.
    enable_magliveness: bool = False
    #: Latency SLO boundary: a request completing faster counts as a
    #: good event, slower as a bad one (``slo_latency_good``/``_bad``
    #: counters, consumed by :mod:`repro.obs.slo`'s burn-rate engine).
    slo_latency_threshold_s: float = 0.25

    def __post_init__(self) -> None:
        if self.request_workers <= 0:
            raise ConfigurationError("request_workers must be positive")
        if self.component_workers is not None and self.component_workers <= 0:
            raise ConfigurationError("component_workers must be positive")
        if self.max_queue <= 0:
            raise ConfigurationError("max_queue must be positive")
        if self.component_timeout_s is not None and self.component_timeout_s <= 0:
            raise ConfigurationError("component_timeout_s must be positive")
        if self.component_retries < 0:
            raise ConfigurationError("component_retries must be >= 0")
        if self.batch_window_s < 0:
            raise ConfigurationError("batch_window_s must be >= 0")
        if self.max_batch <= 0:
            raise ConfigurationError("max_batch must be positive")
        if self.shards < 0:
            raise ConfigurationError("shards must be >= 0")
        if self.shard_queue_depth <= 0:
            raise ConfigurationError("shard_queue_depth must be positive")
        if self.health_check_interval_s <= 0:
            raise ConfigurationError("health_check_interval_s must be positive")
        if self.slo_latency_threshold_s <= 0:
            raise ConfigurationError(
                "slo_latency_threshold_s must be positive"
            )
