"""Defense-system configuration and thresholds.

The paper sets all four components' thresholds empirically: the distance
threshold ``Dt = 6 cm`` (from Fig. 12), a magnetic strength threshold
``Mt`` and changing-rate threshold ``βt`` (from the loudspeaker
measurements), and the ASV acceptance threshold.  The defaults below are
the values our simulated evaluation selects by the same procedure (the
Fig. 12 bench re-derives ``Dt``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DefenseConfig:
    """All tunable parameters of the defense pipeline."""

    #: Sound source distance threshold ``Dt`` (m).  The magnetometer can
    #: only out a loudspeaker within a few centimetres, so attempts whose
    #: recovered final distance exceeds this are rejected outright.
    distance_threshold_m: float = 0.06

    #: Magnetic anomaly threshold ``Mt`` (µT): peak |B| deviation from the
    #: capture's ambient baseline above which a loudspeaker is declared.
    magnetic_threshold_ut: float = 6.0

    #: Magnetic changing-rate threshold ``βt`` (µT/s).
    rate_threshold_ut_s: float = 60.0

    #: ASV log-likelihood-ratio acceptance threshold.
    asv_threshold: float = 0.5

    #: Decision threshold for the sound-field component (scores below
    #: this are rejected as non-mouth sources).  Slightly negative: the
    #: genuine cluster sits several units positive, non-mouth sources
    #: several units negative, and the small negative margin absorbs
    #: genuine outliers without admitting any observed attack class.
    soundfield_threshold: float = -1.5

    #: Number of angle bins for sound-field features.
    soundfield_angle_bins: int = 8

    #: Tolerance multiplier applied to the recovered distance before the
    #: ``Dt`` comparison (absorbs the ~1 cm ranging noise; 1.0 = strict).
    #: 1.4 keeps genuine rejections rare while still forcing attackers
    #: inside the magnetometer's reliable range.
    distance_margin: float = 1.4

    def __post_init__(self) -> None:
        if self.distance_threshold_m <= 0:
            raise ConfigurationError("distance_threshold_m must be positive")
        if self.magnetic_threshold_ut <= 0 or self.rate_threshold_ut_s <= 0:
            raise ConfigurationError("magnetic thresholds must be positive")
        if self.soundfield_angle_bins < 2:
            raise ConfigurationError("need at least 2 angle bins")
        if self.distance_margin <= 0:
            raise ConfigurationError("distance_margin must be positive")

    def with_sensitivity(self, scale: float) -> "DefenseConfig":
        """Scale the magnetometer thresholds (adaptive thresholding §VII).

        ``scale > 1`` desensitises the detector — appropriate in high-EMF
        environments where ambient fluctuation would otherwise trip it.
        """
        if scale <= 0:
            raise ConfigurationError("sensitivity scale must be positive")
        return replace(
            self,
            magnetic_threshold_ut=self.magnetic_threshold_ut * scale,
            rate_threshold_ut_s=self.rate_threshold_ut_s * scale,
        )
