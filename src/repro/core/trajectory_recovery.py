"""Smartphone motion-trajectory recovery (paper §IV-B.1).

Reconstructs the phone's 2-D motion in the mouth-centred plane from the
capture's raw streams, along the paper's recipe:

1. **Radial track** — phase-based ranging of the >16 kHz pilot echo gives
   the phone-source distance *change* with millimetre accuracy
   (:func:`repro.dsp.phase.displacement_from_pilot`).
2. **Bearing track** — the complementary filter fuses gyroscope and
   magnetometer into the phone's direction change Δω
   (:class:`repro.sensors.fusion.OrientationFilter`).
3. **Absolute scale** — the radial track lacks the unknown starting
   distance.  For circular motion about the source, tangential velocity is
   ``r·ω̇``; regressing the dead-reckoned tangential velocity against the
   fused angular rate (zero-velocity updates pin the capture's resting
   endpoints) recovers the sweep radius.
4. **Circle fit** — the paper's least-squares circle fit [17] refines the
   sweep arc from the reconstructed 2-D points; the final distance is
   measured from the last point to the fitted centre.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.filters import moving_average
from repro.dsp.phase import displacement_from_pilot
from repro.errors import CaptureError, ConfigurationError
from repro.physics.geometry import fit_circle_2d
from repro.sensors.fusion import OrientationFilter
from repro.world.scene import SensorCapture

#: Gravity magnitude used for the vertical-axis correction, m/s².
_GRAVITY = 9.80665


@dataclass(frozen=True)
class RecoveredTrajectory:
    """Output of the recovery pipeline (all in the mouth-centred frame)."""

    times: np.ndarray
    radial_change: np.ndarray
    headings: np.ndarray
    positions_2d: np.ndarray
    sweep_slice: slice
    arc_radius: float
    circle_center: tuple[float, float]
    circle_radius: float
    #: RMS distance of the sweep points from the fitted circle (m) — the
    #: fit quality the audit trail records next to the distance verdict.
    circle_residual: float
    end_distance: float

    @property
    def total_direction_change(self) -> float:
        """Δω over the capture, radians."""
        return float(self.headings[-1] - self.headings[0])


class IncrementalCircleFit:
    """Kåsa circle fit maintained as running sums over streamed points.

    The batch :func:`repro.physics.geometry.fit_circle_2d` solves
    ``[x, y, 1]·s = x² + y²`` by least squares over all points at once.
    The same solution is determined by the 3×3 normal equations
    ``AᵀA·s = Aᵀb``, whose entries are plain sums over the points — so a
    streaming consumer can fold points in chunk by chunk in O(1) memory
    and solve on demand.  The normal-equation route is algebraically
    identical but numerically different from the batch SVD solve; on the
    well-conditioned arcs the recovery pipeline fits, the two agree to
    ~1e-9 relative (pinned in ``tests/test_vectorized_kernels.py``).
    """

    def __init__(self) -> None:
        self._ata = np.zeros((3, 3))
        self._atb = np.zeros(3)
        self.n = 0

    def update(self, x: np.ndarray, y: np.ndarray) -> "IncrementalCircleFit":
        """Fold a chunk of points into the running sums."""
        x = np.atleast_1d(np.asarray(x, dtype=float))
        y = np.atleast_1d(np.asarray(y, dtype=float))
        if x.shape != y.shape or x.ndim != 1:
            raise ConfigurationError("x and y must be 1-D arrays of equal length")
        if x.size == 0:
            return self
        a = np.column_stack([x, y, np.ones_like(x)])
        b = x**2 + y**2
        self._ata += a.T @ a
        self._atb += a.T @ b
        self.n += x.size
        return self

    def solve(self) -> tuple[float, float, float]:
        """Current ``(cx, cy, r)`` estimate over every point seen so far."""
        if self.n < 3:
            raise ConfigurationError("circle fitting needs at least three points")
        try:
            sol = np.linalg.solve(self._ata, self._atb)
        except np.linalg.LinAlgError as exc:
            raise ConfigurationError(
                "points are collinear; circle fit is degenerate"
            ) from exc
        cx, cy = sol[0] / 2.0, sol[1] / 2.0
        r_sq = sol[2] + cx**2 + cy**2
        if r_sq <= 0:
            raise ConfigurationError("circle fit produced a non-positive radius")
        return float(cx), float(cy), float(np.sqrt(r_sq))


def _sweep_window(headings: np.ndarray, times: np.ndarray) -> slice:
    """Locate the sweep: the window where the heading is actively turning."""
    rate = np.abs(np.gradient(headings, times))
    threshold = 0.25 * rate.max() if rate.max() > 0 else 0.0
    active = np.nonzero(rate > threshold)[0]
    if active.size < 8:
        raise CaptureError("no sweep detected in the capture")
    return slice(int(active[0]), int(active[-1]) + 1)


def _world_horizontal_acceleration(
    capture: SensorCapture, headings: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(t, ax, ay): horizontal world acceleration from the accelerometer.

    The use-case grip keeps the screen vertical, so gravity sits on body
    ``y`` and the fused heading fixes the horizontal body axes:
    ``bx = (sinθ, −cosθ)``, ``bz = (−cosθ, −sinθ)`` (see
    :class:`repro.world.trajectory.UseCaseTrajectory`).
    """
    acc = capture.accelerometer
    t = acc.times
    f = acc.values.copy()
    f[:, 1] -= _GRAVITY
    theta = np.interp(t, capture.gyroscope.times, headings)
    ax = f[:, 0] * np.sin(theta) + f[:, 2] * (-np.cos(theta))
    ay = f[:, 0] * (-np.cos(theta)) + f[:, 2] * (-np.sin(theta))
    return t, ax, ay


def _sweep_radius(capture: SensorCapture, headings: np.ndarray) -> float:
    """Sweep radius via tangential-velocity/angular-rate regression.

    The use-case motion starts and ends at rest, so zero-velocity updates
    pin the integrated velocity at both capture endpoints.  The approach
    phase has ω̇ ≈ 0 and therefore drops out of the regression naturally;
    mid-sweep samples (largest ω̇) dominate the least-squares solution,
    exactly where the tangential-velocity signal is strongest.
    """
    t, ax, ay = _world_horizontal_acceleration(capture, headings)
    theta = np.interp(t, capture.gyroscope.times, headings)
    dt = np.gradient(t)
    vx = np.cumsum(ax * dt)
    vy = np.cumsum(ay * dt)
    ramp = np.linspace(0.0, 1.0, t.size)
    vx -= vx[0] + (vx[-1] - vx[0]) * ramp
    vy -= vy[0] + (vy[-1] - vy[0]) * ramp
    v_tangential = -vx * np.sin(theta) + vy * np.cos(theta)
    angular_rate = moving_average(np.gradient(theta, t), 15)
    denom = float(np.sum(angular_rate**2))
    if denom <= 1e-12:
        raise CaptureError("no rotation observed; cannot recover scale")
    return abs(float(np.sum(v_tangential * angular_rate) / denom))


def recover_trajectory(
    capture: SensorCapture,
    magnetometer_gain: float = 0.02,
) -> RecoveredTrajectory:
    """Full recovery pipeline: capture → 2-D trajectory + final distance."""
    if capture.pilot_hz <= 0:
        raise CaptureError("capture has no ranging pilot")

    # 1. Radial displacement (positive = approaching), on the gyro grid.
    disp_audio = displacement_from_pilot(
        capture.audio, capture.pilot_hz, capture.audio_sample_rate
    )
    audio_times = np.arange(disp_audio.size) / capture.audio_sample_rate
    gyro_times = capture.gyroscope.times
    radial_change = -np.interp(gyro_times, audio_times, disp_audio)

    # 2. Bearing from sensor fusion.
    fusion = OrientationFilter(magnetometer_gain=magnetometer_gain)
    headings = fusion.estimate_heading(capture.gyroscope, capture.magnetometer)
    headings = headings - headings[0]

    # 3. Sweep window and absolute scale.
    sweep = _sweep_window(headings, gyro_times)
    swept_angle = abs(headings[sweep.stop - 1] - headings[sweep.start])
    if swept_angle < np.deg2rad(5.0):
        raise CaptureError("sweep angle too small for scale recovery")
    arc_radius = _sweep_radius(capture, headings)

    # Radius over time: anchored so the sweep-mean radius equals arc_radius.
    sweep_radial_mean = float(radial_change[sweep].mean())
    radius_t = arc_radius + (radial_change - sweep_radial_mean)
    radius_t = np.maximum(radius_t, 1e-3)

    # 4. 2-D reconstruction and circle-fit refinement on the sweep.
    xs = radius_t * np.cos(headings)
    ys = radius_t * np.sin(headings)
    positions = np.column_stack([xs, ys])
    try:
        cx, cy, circle_radius = fit_circle_2d(xs[sweep], ys[sweep])
        # The fitted centre estimates the sound-source location; clamp a
        # wildly off-origin fit (degenerate arcs) back to the prior.
        if np.hypot(cx, cy) > 2.0 * arc_radius:
            raise ConfigurationError("circle fit diverged from the source prior")
        end_distance = float(np.hypot(xs[-1] - cx, ys[-1] - cy))
    except ConfigurationError:
        cx, cy, circle_radius = 0.0, 0.0, arc_radius
        end_distance = float(radius_t[-1])
    circle_residual = float(
        np.sqrt(
            np.mean(
                (np.hypot(xs[sweep] - cx, ys[sweep] - cy) - circle_radius) ** 2
            )
        )
    )

    return RecoveredTrajectory(
        times=gyro_times,
        radial_change=radial_change,
        headings=headings,
        positions_2d=positions,
        sweep_slice=sweep,
        arc_radius=float(arc_radius),
        circle_center=(float(cx), float(cy)),
        circle_radius=float(circle_radius),
        circle_residual=circle_residual,
        end_distance=end_distance,
    )
