"""Table IV / §VI "Various Classes of Speakers" — all 25 loudspeakers.

Paper's result: every evaluated loudspeaker is detected; all the
magnet-bearing (conventional) designs trip the magnetometer, and the
earphones — too weakly magnetic — are caught by sound-field
verification instead.
"""

from collections import Counter

from conftest import emit

from repro.experiments.table4 import (
    conventional_all_magnetic,
    detection_rate,
    run_table4,
)


def test_table4_all_speaker_classes(benchmark, bench_world):
    rows = benchmark.pedantic(
        run_table4, args=(bench_world,), rounds=1, iterations=1
    )
    by_category = Counter()
    detected_by_category = Counter()
    for r in rows:
        by_category[r.category] += 1
        detected_by_category[r.category] += int(r.detected)
    lines = [
        f"{cat:16s}: {detected_by_category[cat]}/{by_category[cat]} detected"
        for cat in sorted(by_category)
    ]
    lines.append(f"overall detection rate {detection_rate(rows):.0%} (paper: 100%)")
    missed = [r.name for r in rows if not r.detected]
    if missed:
        lines.append(f"MISSED: {missed}")
    emit("Table IV — 25 loudspeakers", lines)
    assert len(rows) == 25
    assert detection_rate(rows) == 1.0
    assert conventional_all_magnetic(rows)
    benchmark.extra_info["detection_rate"] = detection_rate(rows)
