"""Sharded-gateway throughput vs threaded/sequential (DESIGN.md §10).

A concurrent burst through the process-sharded tier at N ∈ {2, 4}
shards, timed against the sequential :class:`VerificationServer` and the
threaded :class:`Gateway` on the same frames.  Every mode's decisions
are digested with :func:`~repro.server.decisions_checksum` and must
agree bit for bit — the throughput claim is only meaningful if the
shards compute the *same function* — and the digests land in
``BENCH_gateway_sharded.json`` so the harness diff catches drift.

The ≥2x-over-threaded bar is asserted only on machines with ≥4 CPUs:
process sharding buys parallelism across cores, and on a 1-core CI
container every mode is serialized onto the same clock, so the bar
would measure the scheduler, not the tier.  The 8-core ≥10x-over-
sequential target is documented (with measured numbers) in
EXPERIMENTS.md.
"""

import os
import time

from conftest import emit
from harness import write_bench

from repro.experiments.world import genuine_capture
from repro.server import (
    Gateway,
    GatewayConfig,
    ShardedGateway,
    VerificationServer,
    decisions_checksum,
    decode_decision,
    encode_request,
)

N_REQUESTS = 24
SHARD_COUNTS = (2, 4)
#: Below this the ≥2x bar measures core contention, not the shard tier.
MIN_CPUS_FOR_SPEEDUP_GATE = 4


def _frames(world):
    users = sorted(world.users)
    frames = []
    for i in range(N_REQUESTS):
        user_id = users[i % len(users)]
        capture = genuine_capture(world, user_id, 0.05)
        frames.append(encode_request(capture, user_id, request_id=f"req-{i}"))
    return frames


def _run_all_modes(world):
    frames = _frames(world)
    decisions = {}
    elapsed = {}

    server = VerificationServer(world.system)
    try:
        t0 = time.perf_counter()
        decisions["sequential"] = [server.handle(f) for f in frames]
        elapsed["sequential"] = time.perf_counter() - t0
    finally:
        server.close()

    with Gateway(
        world.system, GatewayConfig(request_workers=4)
    ) as gateway:
        t0 = time.perf_counter()
        decisions["threaded"] = gateway.handle_many(frames)
        elapsed["threaded"] = time.perf_counter() - t0

    for shards in SHARD_COUNTS:
        mode = f"sharded_{shards}"
        with ShardedGateway(
            world.system, GatewayConfig(shards=shards)
        ) as gateway:
            t0 = time.perf_counter()
            decisions[mode] = gateway.handle_many(frames)
            elapsed[mode] = time.perf_counter() - t0
            assert gateway.shard_generations == [0] * shards

    return decisions, elapsed


def test_gateway_sharded_throughput(benchmark, bench_world):
    decisions, elapsed = benchmark.pedantic(
        _run_all_modes, args=(bench_world,), rounds=1, iterations=1
    )
    rps = {mode: N_REQUESTS / s for mode, s in elapsed.items()}
    checksums = {
        mode: decisions_checksum([decode_decision(f) for f in frames])
        for mode, frames in decisions.items()
    }
    cores = os.cpu_count() or 1

    emit(
        f"Sharded gateway throughput ({N_REQUESTS}-request burst, "
        f"{cores} CPUs)",
        [
            *(
                f"{mode:12s}: {rps[mode]:6.1f} req/s "
                f"({rps[mode] / rps['threaded']:.2f}x threaded, "
                f"{rps[mode] / rps['sequential']:.2f}x sequential)"
                for mode in sorted(rps)
            ),
            f"decision checksum: {checksums['sequential'][:16]}... "
            f"(all {len(checksums)} modes identical)",
        ],
    )

    # Correctness first: every mode decided the same frames identically.
    reference = checksums["sequential"]
    for mode, checksum in checksums.items():
        assert checksum == reference, (mode, checksum, reference)

    best_sharded = max(rps[f"sharded_{n}"] for n in SHARD_COUNTS)
    if cores >= MIN_CPUS_FOR_SPEEDUP_GATE:
        # The CI bar: shards beat the GIL-bound thread pool ≥2x.
        assert best_sharded >= 2.0 * rps["threaded"], (rps, cores)
    else:
        # Starved of cores, sharding can't win — but it must not
        # collapse either (frame handoff overhead stays bounded).
        assert best_sharded >= 0.4 * rps["threaded"], (rps, cores)

    benchmark.extra_info["throughput_rps"] = rps
    benchmark.extra_info["cpu_count"] = cores
    write_bench(
        "gateway_sharded",
        throughput_rps=rps,
        decision_checksums=checksums,
        extra={
            "cpu_count": cores,
            "n_requests": N_REQUESTS,
            "speedup_vs_threaded": {
                f"sharded_{n}": rps[f"sharded_{n}"] / rps["threaded"]
                for n in SHARD_COUNTS
            },
            "speedup_vs_sequential": {
                f"sharded_{n}": rps[f"sharded_{n}"] / rps["sequential"]
                for n in SHARD_COUNTS
            },
        },
    )
