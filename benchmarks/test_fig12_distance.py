"""Fig. 12 — impact of sound source distance (unshielded and shielded).

Paper's shape: FAR = FRR = EER = 0 at ≤ 6 cm in both variants; FAR rises
with distance as the magnet's near field decays, and the Mu-metal shield
accelerates that rise (FAR already climbing at 8 cm when shielded).
Known divergence (see EXPERIMENTS.md): our FRR beyond 8 cm grows more
steeply than the paper's because the sound-field model is enrolled at
5 cm and generalises worse with range in the simulator.
"""

from conftest import emit
from harness import write_bench

from repro.experiments.fig12 import run_distance_experiment
from repro.physics.magnetics import MuMetalShield


def _format(rows):
    return [
        f"{r.distance_cm:4.0f} cm: FAR {r.far_pct:5.1f}%  FRR {r.frr_pct:5.1f}%  "
        f"EER {r.eer_pct:5.1f}%"
        for r in rows
    ]


def _write(name, rows):
    write_bench(
        name,
        counters={
            f"{metric}_{r.distance_cm:.0f}cm": getattr(r, f"{metric}_pct")
            for r in rows
            for metric in ("far", "frr", "eer")
        },
    )


def test_fig12a_no_shielding(benchmark, bench_world):
    rows = benchmark.pedantic(
        run_distance_experiment,
        args=(bench_world,),
        kwargs={"genuine_per_distance": 10, "attacks_per_speaker": 1},
        rounds=1,
        iterations=1,
    )
    emit("Fig. 12a — distance, no shielding (paper: 0/0/0 at ≤6 cm)", _format(rows))
    close = [r for r in rows if r.distance_cm <= 6.0]
    for row in close:
        # The paper reports exact zeros on similarly small trial counts;
        # our per-trial error rates are a few percent, so allow one miss
        # per cell (typical runs do produce exact zeros).
        assert row.far_pct <= 17.0
        assert row.frr_pct <= 20.0
        assert row.eer_pct <= 15.0
    # FAR grows with distance.
    assert max(r.far_pct for r in rows[2:]) >= rows[0].far_pct
    benchmark.extra_info["rows"] = [r.__dict__ for r in rows]
    _write("fig12_distance", rows)


def test_fig12b_mu_metal_shielding(benchmark, bench_world):
    rows = benchmark.pedantic(
        run_distance_experiment,
        args=(bench_world,),
        kwargs={
            "genuine_per_distance": 10,
            "attacks_per_speaker": 1,
            "shield": MuMetalShield(),
        },
        rounds=1,
        iterations=1,
    )
    emit("Fig. 12b — distance, Mu-metal shield (paper: 0/0/0 at ≤6 cm)", _format(rows))
    close = [r for r in rows if r.distance_cm <= 6.0]
    for row in close:
        assert row.far_pct <= 17.0
        assert row.frr_pct <= 20.0
        assert row.eer_pct <= 15.0
    # Shielding pushes FAR up at mid distances relative to close range.
    mid_far = max(r.far_pct for r in rows if r.distance_cm >= 8.0)
    assert mid_far > 0.0
    benchmark.extra_info["rows"] = [r.__dict__ for r in rows]
    _write("fig12_distance_shielded", rows)
