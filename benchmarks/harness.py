"""Perf-regression harness: benches write ``BENCH_<name>.json``, CI diffs.

Every benchmark that measures something CI should watch routes its numbers
through :func:`write_bench`, which drops a small schema-versioned JSON
document into the results directory (``benchmarks/results/`` by default,
``BENCH_RESULTS_DIR`` overrides).  A committed snapshot of the same
documents lives in ``benchmarks/baselines/``; ``python benchmarks/harness.py
diff`` compares the two and prints per-metric deltas so a perf regression
shows up in the CI log next to the run that introduced it.

The diff is advisory by default for *timing*: benchmark machines vary
too much for a hard latency gate.  Pass ``--fail-threshold`` to turn
large latency regressions into a non-zero exit for environments stable
enough to gate.  **Decision checksums are never advisory**: benches that
serve real frames record a digest of their decisions per serving mode
(``decision_checksums``), and a checksum that differs from the committed
baseline is decision drift — a correctness bug wearing a perf costume —
so ``diff`` exits non-zero on any mismatch regardless of thresholds.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional

import numpy as np

#: Bump when the document layout changes incompatibly.
SCHEMA_VERSION = 1

_BENCH_DIR = Path(__file__).resolve().parent


def results_dir() -> Path:
    """Where fresh ``BENCH_*.json`` documents are written."""
    override = os.environ.get("BENCH_RESULTS_DIR")
    path = Path(override) if override else _BENCH_DIR / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def baselines_dir() -> Path:
    """The committed baseline snapshots."""
    return _BENCH_DIR / "baselines"


def latency_summary(samples_s: Iterable[float]) -> Dict[str, float]:
    """Median/p95/mean milliseconds over a list of per-item latencies."""
    arr = np.asarray(list(samples_s), dtype=float)
    if arr.size == 0:
        return {"n": 0, "median_ms": 0.0, "p95_ms": 0.0, "mean_ms": 0.0}
    return {
        "n": int(arr.size),
        "median_ms": float(np.median(arr) * 1e3),
        "p95_ms": float(np.percentile(arr, 95.0) * 1e3),
        "mean_ms": float(arr.mean() * 1e3),
    }


def write_bench(
    name: str,
    *,
    latencies: Optional[Dict[str, Iterable[float]]] = None,
    latency_summaries: Optional[Dict[str, Dict[str, float]]] = None,
    throughput_rps: Optional[Dict[str, float]] = None,
    stage_skip_rates: Optional[Dict[str, float]] = None,
    counters: Optional[Dict[str, float]] = None,
    decision_checksums: Optional[Dict[str, str]] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` into the results directory.

    ``latencies`` maps a label (e.g. ``"strict"``, ``"cascade_rejected"``)
    to raw per-item latency samples in seconds; each label is stored as a
    median/p95/mean summary.  ``latency_summaries`` takes pre-summarised
    entries (already in milliseconds) verbatim — for callers that only
    have histogram percentiles.  ``decision_checksums`` maps a serving
    mode (``"sequential"``, ``"sharded_4"``, ...) to the
    :func:`repro.server.decisions_checksum` digest of the decisions that
    mode produced, so the diff can flag decision drift.  Returns the
    written path.
    """
    doc: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "name": name,
    }
    if latencies or latency_summaries:
        latency: Dict[str, object] = {}
        for label, samples in (latencies or {}).items():
            latency[label] = latency_summary(samples)
        for label, summary in (latency_summaries or {}).items():
            latency[label] = {k: float(v) for k, v in summary.items()}
        doc["latency"] = latency
    if throughput_rps:
        doc["throughput_rps"] = {k: float(v) for k, v in throughput_rps.items()}
    if stage_skip_rates:
        doc["stage_skip_rates"] = {
            k: float(v) for k, v in stage_skip_rates.items()
        }
    if counters:
        doc["counters"] = {k: float(v) for k, v in counters.items()}
    if decision_checksums:
        doc["decision_checksums"] = {
            k: str(v) for k, v in decision_checksums.items()
        }
    if extra:
        doc["extra"] = extra
    path = results_dir() / f"BENCH_{name}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(path: Path) -> Dict[str, object]:
    return json.loads(Path(path).read_text())


def _flatten(doc: Dict[str, object]) -> Dict[str, float]:
    """Flatten the numeric leaves of a bench document to dotted keys."""
    flat: Dict[str, float] = {}

    def walk(prefix: str, node: object) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                walk(f"{prefix}.{key}" if prefix else str(key), value)
        elif isinstance(node, (int, float)) and not isinstance(node, bool):
            flat[prefix] = float(node)

    for section in ("latency", "throughput_rps", "stage_skip_rates", "counters"):
        if section in doc:
            walk(section, doc[section])
    return flat


def diff_benches(
    results: Optional[Path] = None, baselines: Optional[Path] = None
) -> List[str]:
    """Human-readable per-metric deltas, results vs committed baselines."""
    results = Path(results) if results else results_dir()
    baselines = Path(baselines) if baselines else baselines_dir()
    lines: List[str] = []
    baseline_files = sorted(baselines.glob("BENCH_*.json"))
    if not baseline_files:
        return [f"no baselines in {baselines}"]
    for base_path in baseline_files:
        new_path = results / base_path.name
        if not new_path.exists():
            lines.append(f"{base_path.name}: no fresh result (skipped)")
            continue
        base = _flatten(load_bench(base_path))
        new = _flatten(load_bench(new_path))
        lines.append(f"{base_path.name}:")
        for key in sorted(set(base) | set(new)):
            if key.endswith(".n"):
                continue
            b, n = base.get(key), new.get(key)
            if b is None or n is None:
                lines.append(f"  {key:48s} {'added' if b is None else 'removed'}")
            elif b == 0.0:
                lines.append(f"  {key:48s} {b:10.3f} -> {n:10.3f}")
            else:
                ratio = n / b
                flag = " <-- regression?" if _is_latency(key) and ratio > 1.5 else ""
                lines.append(
                    f"  {key:48s} {b:10.3f} -> {n:10.3f}  ({ratio:5.2f}x){flag}"
                )
    return lines


def _is_latency(key: str) -> bool:
    return key.startswith("latency.") and key.endswith(("_ms",))


def speedup_rows(
    results: Optional[Path] = None, baselines: Optional[Path] = None
) -> List[str]:
    """One grep-able ``BENCH-SPEEDUP`` row per bench with fresh results.

    Each row aggregates the bench's ``latency.*.median_ms`` metrics into a
    geometric-mean baseline/new speedup (>1 means the fresh run is
    faster), plus the best and worst individual metric, e.g.::

        BENCH-SPEEDUP pipeline geomean 3.19x over 3 medians (best cascade_genuine 3.61x, worst strict_rejected 3.24x)

    ``grep '^BENCH-SPEEDUP'`` on a CI log recovers the whole per-bench
    summary without parsing the metric-by-metric diff above it.
    """
    results = Path(results) if results else results_dir()
    baselines = Path(baselines) if baselines else baselines_dir()
    rows: List[str] = []
    for base_path in sorted(baselines.glob("BENCH_*.json")):
        new_path = results / base_path.name
        if not new_path.exists():
            continue
        base = _flatten(load_bench(base_path))
        new = _flatten(load_bench(new_path))
        name = base_path.stem[len("BENCH_") :]
        speedups: Dict[str, float] = {}
        for key, b in base.items():
            if (
                key.startswith("latency.")
                and key.endswith(".median_ms")
                and b > 0
                and new.get(key, 0) > 0
            ):
                label = key[len("latency.") : -len(".median_ms")]
                speedups[label] = b / new[key]
        if not speedups:
            rows.append(f"BENCH-SPEEDUP {name} no comparable latency medians")
            continue
        ratios = np.array(list(speedups.values()))
        geomean = float(np.exp(np.mean(np.log(ratios))))
        best = max(speedups, key=speedups.get)
        worst = min(speedups, key=speedups.get)
        rows.append(
            f"BENCH-SPEEDUP {name} geomean {geomean:.2f}x over "
            f"{len(speedups)} medians (best {best} {speedups[best]:.2f}x, "
            f"worst {worst} {speedups[worst]:.2f}x)"
        )
    return rows


def decision_drift(
    results: Optional[Path] = None, baselines: Optional[Path] = None
) -> List[str]:
    """Decision-checksum mismatches, fresh results vs committed baselines.

    Only modes present in **both** documents are compared (a new mode in
    a fresh result is an addition, not drift; a baseline mode with no
    fresh counterpart means that bench leg didn't run).  Any returned
    line is a hard failure for :func:`main`'s ``diff`` command: the same
    frames decided differently than the committed snapshot.
    """
    results = Path(results) if results else results_dir()
    baselines = Path(baselines) if baselines else baselines_dir()
    drift: List[str] = []
    for base_path in sorted(baselines.glob("BENCH_*.json")):
        new_path = results / base_path.name
        if not new_path.exists():
            continue
        base = load_bench(base_path).get("decision_checksums") or {}
        new = load_bench(new_path).get("decision_checksums") or {}
        for mode in sorted(set(base) & set(new)):
            if base[mode] != new[mode]:
                drift.append(
                    f"{base_path.name}: decision checksum drift in mode "
                    f"{mode!r}: baseline {base[mode][:16]}... != "
                    f"fresh {new[mode][:16]}..."
                )
    return drift


def worst_latency_ratio(
    results: Optional[Path] = None, baselines: Optional[Path] = None
) -> float:
    """Largest new/baseline ratio over latency metrics (1.0 if none)."""
    results = Path(results) if results else results_dir()
    baselines = Path(baselines) if baselines else baselines_dir()
    worst = 1.0
    for base_path in sorted(baselines.glob("BENCH_*.json")):
        new_path = results / base_path.name
        if not new_path.exists():
            continue
        base = _flatten(load_bench(base_path))
        new = _flatten(load_bench(new_path))
        for key, b in base.items():
            if _is_latency(key) and b > 0 and key in new:
                worst = max(worst, new[key] / b)
    return worst


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    diff_p = sub.add_parser("diff", help="compare fresh results to baselines")
    diff_p.add_argument("--results", type=Path, default=None)
    diff_p.add_argument("--baselines", type=Path, default=None)
    diff_p.add_argument(
        "--fail-threshold",
        type=float,
        default=None,
        help="exit non-zero when any latency metric regresses past this ratio",
    )
    args = parser.parse_args(argv)
    if args.command == "diff":
        for line in diff_benches(args.results, args.baselines):
            print(line)
        for line in speedup_rows(args.results, args.baselines):
            print(line)
        drift = decision_drift(args.results, args.baselines)
        for line in drift:
            print(f"FAIL: {line}")
        if drift:
            return 1
        if args.fail_threshold is not None:
            worst = worst_latency_ratio(args.results, args.baselines)
            if worst > args.fail_threshold:
                print(
                    f"FAIL: worst latency ratio {worst:.2f}x exceeds "
                    f"threshold {args.fail_threshold:.2f}x"
                )
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
