"""Tracing overhead on the verification pipeline (ISSUE 4 acceptance).

Runs the ISSUE-3 scenario set (genuine attempts plus the Table IV replay
sweep, sound-tube included) through ``DefenseSystem.verify_cascade``
twice — once untraced (``NULL_TRACER``) and once with a live ``Tracer``
attached — and requires the workload-weighted latency ratio to stay
under 1.05 (<5% overhead) plus an absolute sub-half-millisecond budget
on the early-exit fast path.  Numbers land in ``BENCH_obs.json`` for
the CI perf diff.

The traced run keeps span recording on but no JSONL exporter in the
timed loop; export happens off the hot path via ``drain_completed``.
"""

import time

import numpy as np

from conftest import emit
from harness import write_bench
from test_pipeline_cascade import REPEATS, _scenarios

from repro.obs import NULL_TRACER, Tracer


def _time_verify(system, capture, claimed):
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        system.verify_cascade(capture, claimed)
        best = min(best, time.perf_counter() - t0)
    return best


def test_tracing_overhead_under_five_percent(bench_world):
    system = bench_world.system
    rows = _scenarios(bench_world)
    tracer = Tracer(max_completed=4096)

    untraced_s, traced_s = {}, {}
    try:
        for label, capture, claimed, _ in rows:
            # Interleave per scenario so cache/thermal drift hits both
            # arms equally instead of biasing whichever runs second.
            system.set_tracer(NULL_TRACER)
            untraced_s[label] = _time_verify(system, capture, claimed)
            system.set_tracer(tracer)
            traced_s[label] = _time_verify(system, capture, claimed)
    finally:
        # bench_world is session-scoped; leave it untraced for the rest.
        system.set_tracer(NULL_TRACER)

    ratios = {label: traced_s[label] / untraced_s[label] for label in untraced_s}
    # Relative overhead is only meaningful on scenarios long enough to
    # measure: the magnetic fast path rejects in ~0.2 ms, where even a
    # handful of 5 us spans reads as 20%+.  The workload-weighted ratio
    # is the acceptance metric; the fast path gets an absolute budget.
    overhead_ratio = sum(traced_s.values()) / sum(untraced_s.values())
    fast_deltas_s = [
        traced_s[label] - untraced_s[label]
        for label in untraced_s
        if untraced_s[label] < 0.010
    ]
    fast_overhead_s = float(np.median(fast_deltas_s)) if fast_deltas_s else 0.0

    traces = tracer.drain_completed()
    assert traces, "traced runs should have produced completed traces"
    span_counts = [len(spans) for spans in traces]

    emit(
        "Tracing overhead (verify_cascade)",
        [
            f"workload overhead ratio: {overhead_ratio:.3f}   "
            f"fast-path absolute overhead: {fast_overhead_s * 1e6:.0f} us",
            *(
                f"{label:16s}: untraced {untraced_s[label] * 1e3:7.1f} ms   "
                f"traced {traced_s[label] * 1e3:7.1f} ms   "
                f"({ratios[label]:.2f}x)"
                for label, _, _, _ in rows
            ),
            f"traces recorded: {len(traces)} "
            f"(spans/trace: {min(span_counts)}-{max(span_counts)})",
        ],
    )

    write_bench(
        "obs",
        latencies={
            "untraced": list(untraced_s.values()),
            "traced": list(traced_s.values()),
        },
        counters={"traces_recorded": len(traces)},
        extra={
            "overhead_ratio": overhead_ratio,
            "fast_path_overhead_us": fast_overhead_s * 1e6,
            "per_scenario_ratio": ratios,
        },
    )

    # ISSUE 4 acceptance: tracing-on costs < 5% latency on the workload,
    # and at most 0.5 ms absolute on the sub-10ms early-exit path.
    assert overhead_ratio < 1.05
    assert fast_overhead_s < 0.0005
